//! Plan execution: column-at-a-time operators with full materialization,
//! parallelized morsel-at-a-time.
//!
//! Every operator consumes whole tables and produces a whole table — the
//! execution model of MonetDB, the paper's host system. Full
//! materialization is what makes *intermediate result recycling* (the
//! paper's lazy-loading cache, §3.3) a natural fit: any intermediate is a
//! complete table that can be cached and reused.
//!
//! With [`ExecContext::parallelism`] > 1 the load-bearing operators go
//! morsel-driven: inputs split into fixed-size row ranges
//! ([`ExecContext::morsel_rows`] each), workers claim morsels from the
//! shared pool ([`lazyetl_store::parallel`]), and a serial merge step
//! reassembles the partial results **in morsel order**. The decomposition
//! depends only on the input row count and the morsel size — never on the
//! thread count — so a configuration is deterministic at any parallelism,
//! and the merge rules are chosen so parallel output ≡ serial output
//! row-for-row (`tests/parallel_exec.rs` and `tests/proptest_parallel.rs`
//! pin this):
//!
//! - **Filter/Project** chains are elementwise, so filtering/projecting
//!   each morsel and concatenating equals the whole-table pass exactly.
//! - **Aggregation** keeps per-morsel accumulators and merges them in
//!   morsel order; groups enter the output in first-appearance order
//!   across morsels, which is the serial scan's first-appearance order.
//!   Integer SUM accumulates in `i128` so overflow is detected at finish
//!   time from the true total — the same answer for any decomposition.
//! - **Join** partitions both sides by deterministic key hash,
//!   builds/probes per partition, and stable-sorts the matched index
//!   pairs back into the serial probe order.
//! - Sort, Limit and Distinct stay serial — they are merge-dominated.
//!
//! An erroring or panicking morsel surfaces the **first** error in morsel
//! (= row) order and discards the rest, never a partial table.

use crate::error::{QueryError, Result};
use crate::expr::{
    eval_expr_opts, eval_predicate_mask_opts, infer_type, AggFunc, EvalOptions, Expr,
};
use crate::metrics::ExecMetrics;
use crate::plan::LogicalPlan;
use lazyetl_store::parallel::{try_parallel_map, WorkerPanic};
use lazyetl_store::{Catalog, Column, DataType, Field, GroupKey, Schema, Table, Value};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Default rows per morsel: large enough to amortize dispatch, small
/// enough that a 100k-row extraction still fans out across a few cores.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Serves external tables when the executor reaches an [`LogicalPlan::ExternalScan`]
/// that no runtime rewrite replaced.
///
/// The lazy warehouse implements this with a *full* extraction — the
/// paper's §3.1 worst case ("the required subset … is the entire
/// repository") — because the lazy rewriter normally intercepts the scan
/// first and injects only the needed subset.
pub trait ExternalTableProvider: Sync {
    /// Materialize the entire external table.
    fn full_scan(&self, name: &str) -> Result<Arc<Table>>;
}

/// Execution context: the catalog, an optional external-table provider,
/// and the execution-mode knobs (vectorization, zone-map pruning,
/// counters).
pub struct ExecContext<'a> {
    /// Catalog with resident tables.
    pub catalog: &'a Catalog,
    /// Provider for external scans (lazy ETL), if any.
    pub external: Option<&'a dyn ExternalTableProvider>,
    /// Cumulative counters to update while executing (shared across
    /// queries by the warehouse). `None` executes uncounted.
    pub metrics: Option<&'a ExecMetrics>,
    /// Run expression batches through the typed kernels (with scalar
    /// fallback) and pack integer join keys. `false` pins the
    /// row-at-a-time reference paths — the E15 ablation baseline.
    pub vectorized: bool,
    /// Short-circuit a filter directly above a table scan when the
    /// table's zone map proves the predicate empty.
    pub zone_map_pruning: bool,
    /// Worker threads available to one query's pipelines. `1` (the
    /// default) pins the serial reference path; higher values enable the
    /// morsel-driven operators.
    pub parallelism: usize,
    /// Rows per morsel for the parallel operators. The morsel
    /// decomposition depends only on this and the input row count —
    /// never on `parallelism` — so results are deterministic at any
    /// thread count.
    pub morsel_rows: usize,
}

impl<'a> ExecContext<'a> {
    /// Context over a catalog with no external tables; vectorized
    /// execution and zone-map pruning are on, counters off.
    pub fn new(catalog: &'a Catalog) -> ExecContext<'a> {
        ExecContext {
            catalog,
            external: None,
            metrics: None,
            vectorized: true,
            zone_map_pruning: true,
            parallelism: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }

    /// Attach cumulative executor counters.
    pub fn with_metrics(mut self, metrics: &'a ExecMetrics) -> ExecContext<'a> {
        self.metrics = Some(metrics);
        self
    }

    /// Set the worker-thread budget for this query's pipelines.
    pub fn with_parallelism(mut self, threads: usize) -> ExecContext<'a> {
        self.parallelism = threads.max(1);
        self
    }

    /// Override the morsel size (rows per parallel work unit).
    pub fn with_morsel_rows(mut self, rows: usize) -> ExecContext<'a> {
        self.morsel_rows = rows.max(1);
        self
    }

    /// The expression-evaluation options implied by this context.
    fn eval_opts(&self) -> EvalOptions<'a> {
        EvalOptions {
            vectorized: self.vectorized,
            metrics: self.metrics,
        }
    }

    /// Count rows produced by a leaf scan.
    fn count_scan(&self, rows: usize) {
        if let Some(m) = self.metrics {
            m.add_rows_scanned(rows as u64);
        }
    }

    /// Count one operator going parallel with `n` dispatched morsels.
    fn count_parallel(&self, n: usize) {
        if let Some(m) = self.metrics {
            m.add_parallel_pipeline();
            m.add_morsels_dispatched(n as u64);
        }
    }

    /// Account the serial merge tail of a parallel operator.
    fn count_merge(&self, started: Instant) {
        if let Some(m) = self.metrics {
            m.add_merge_ns(started.elapsed().as_nanos() as u64);
        }
    }
}

/// Fixed-size row ranges `(offset, len)` covering `rows`; the last morsel
/// holds the remainder. A function of `(rows, morsel_rows)` only.
fn morsel_ranges(rows: usize, morsel_rows: usize) -> Vec<(usize, usize)> {
    let step = morsel_rows.max(1);
    (0..rows)
        .step_by(step)
        .map(|off| (off, step.min(rows - off)))
        .collect()
}

/// Collapse per-morsel outcomes to the **first** failure in morsel order
/// — the same error the serial left-to-right pass would raise first — or
/// all results. A caught worker panic surfaces as a `QueryError` so one
/// poisoned morsel fails one query, never the pool or the process.
fn join_morsels<T>(results: Vec<std::result::Result<Result<T>, WorkerPanic>>) -> Result<Vec<T>> {
    results
        .into_iter()
        .map(|r| match r {
            Ok(r) => r,
            Err(p) => Err(QueryError::Execution(p.to_string())),
        })
        .collect()
}

/// Execute a logical plan to a materialized table.
pub fn execute(plan: &LogicalPlan, ctx: &ExecContext<'_>) -> Result<Arc<Table>> {
    match plan {
        LogicalPlan::TableScan { table, .. } => {
            let t = ctx
                .catalog
                .table_arc(table)
                .ok_or_else(|| QueryError::Execution(format!("table {table:?} disappeared")))?;
            ctx.count_scan(t.num_rows());
            Ok(t)
        }
        LogicalPlan::ExternalScan { name, .. } => match ctx.external {
            Some(p) => {
                let t = p.full_scan(name)?;
                ctx.count_scan(t.num_rows());
                Ok(t)
            }
            None => Err(QueryError::Execution(format!(
                "external table {name:?} reached the executor without a provider \
                 (lazy rewriter not engaged)"
            ))),
        },
        LogicalPlan::InlineData { table, .. } => {
            ctx.count_scan(table.num_rows());
            Ok(table.clone())
        }
        LogicalPlan::OneRow => {
            let schema = Schema::new(vec![Field::new("__onerow", DataType::Bool)])
                .map_err(QueryError::Store)?;
            let mut t = Table::empty(schema);
            t.append_row(vec![Value::Bool(true)])
                .map_err(QueryError::Store)?;
            Ok(Arc::new(t))
        }
        LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } => execute_pipeline(plan, ctx),
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => execute_aggregate(input, group, aggregates, ctx),
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => execute_join(left, right, on, right_label, ctx),
        LogicalPlan::Sort { input, keys } => {
            let table = execute(input, ctx)?;
            let indices = sort_indices(&table, keys, &ctx.eval_opts())?;
            Ok(Arc::new(table.take(&indices).map_err(QueryError::Store)?))
        }
        LogicalPlan::Limit { input, n } => {
            let table = execute(input, ctx)?;
            let keep = (*n as usize).min(table.num_rows());
            let indices: Vec<usize> = (0..keep).collect();
            Ok(Arc::new(table.take(&indices).map_err(QueryError::Store)?))
        }
        LogicalPlan::Distinct { input } => {
            let table = execute(input, ctx)?;
            let mut seen: HashSet<Vec<GroupKey>> = HashSet::new();
            let mut keep = Vec::new();
            for row in 0..table.num_rows() {
                let key: Vec<GroupKey> = table
                    .columns
                    .iter()
                    .map(|c| c.get(row).map(|v| v.group_key()))
                    .collect::<lazyetl_store::Result<_>>()
                    .map_err(QueryError::Store)?;
                if seen.insert(key) {
                    keep.push(row);
                }
            }
            Ok(Arc::new(table.take(&keep).map_err(QueryError::Store)?))
        }
    }
}

// ---------------------------------------------------------------------------
// Filter/Project pipelines
// ---------------------------------------------------------------------------

/// One elementwise operator in a Filter/Project chain.
enum PipeOp<'p> {
    Filter(&'p Expr),
    Project(&'p [(Expr, String)]),
}

/// Apply a chain of elementwise ops (innermost first) to one table — a
/// whole input or a single morsel of it. Because every op maps row `i` of
/// its input from row `i` alone, applying the chain per morsel and
/// concatenating in morsel order is exactly the whole-table pass.
fn apply_pipe_ops(
    mut table: Arc<Table>,
    ops: &[PipeOp<'_>],
    ctx: &ExecContext<'_>,
) -> Result<Arc<Table>> {
    for op in ops {
        table = match op {
            PipeOp::Filter(predicate) => {
                let mask = eval_predicate_mask_opts(predicate, &table, &ctx.eval_opts())?;
                Arc::new(table.filter(&mask).map_err(QueryError::Store)?)
            }
            PipeOp::Project(exprs) => {
                let mut fields = Vec::with_capacity(exprs.len());
                let mut columns = Vec::with_capacity(exprs.len());
                for (e, name) in *exprs {
                    let col = eval_expr_opts(e, &table, &ctx.eval_opts())?;
                    fields.push(Field::nullable(name, col.data_type()));
                    columns.push(col);
                }
                let schema = Schema::new(fields).map_err(QueryError::Store)?;
                Arc::new(Table::new(schema, columns).map_err(QueryError::Store)?)
            }
        };
    }
    Ok(table)
}

/// Execute a maximal Filter/Project chain as one pipeline: evaluate the
/// chain's source once, then run the whole op chain over each morsel so
/// intermediate results stay morsel-sized and never materialize whole
/// between chained operators.
fn execute_pipeline(plan: &LogicalPlan, ctx: &ExecContext<'_>) -> Result<Arc<Table>> {
    // Collect the chain outermost-first; `source` is the first non-chain
    // node below it.
    let mut ops: Vec<PipeOp<'_>> = Vec::new();
    let mut source = plan;
    loop {
        match source {
            LogicalPlan::Filter { input, predicate } => {
                ops.push(PipeOp::Filter(predicate));
                source = input;
            }
            LogicalPlan::Project { input, exprs } => {
                ops.push(PipeOp::Project(exprs));
                source = input;
            }
            _ => break,
        }
    }

    // Zone-map pruning: a filter directly above a resident scan — the
    // innermost op of the chain — whose predicate provably excludes the
    // table's [min, max] range short-circuits to an empty scan result;
    // the rows are never touched. `predicate_excludes` is conservative,
    // so results never change, only the work done. The shape check comes
    // first: predicates with no decidable conjunct can never prune, so
    // their tables never pay the zone-map statistics pass.
    let mut pruned_scan: Option<Arc<Table>> = None;
    if let Some(PipeOp::Filter(predicate)) = ops.last() {
        if ctx.zone_map_pruning && crate::prune::has_prunable_conjunct(predicate) {
            if let LogicalPlan::TableScan { table, schema } = source {
                if let Some(stats) = ctx.catalog.zone_map(table) {
                    if crate::prune::predicate_excludes(predicate, &stats) {
                        let pruned: usize = stats.first().map_or(0, |s| s.count);
                        if let Some(m) = ctx.metrics {
                            m.add_rows_pruned(pruned as u64);
                        }
                        ops.pop(); // the pruned filter is already answered
                        pruned_scan = Some(Arc::new(Table::empty(schema.clone())));
                    }
                }
            }
        }
    }
    let table = match pruned_scan {
        Some(t) => t,
        None => execute(source, ctx)?,
    };
    ops.reverse(); // apply innermost first

    let rows = table.num_rows();
    if ctx.parallelism <= 1 || rows <= ctx.morsel_rows {
        return apply_pipe_ops(table, &ops, ctx);
    }
    let ranges = morsel_ranges(rows, ctx.morsel_rows);
    ctx.count_parallel(ranges.len());
    let results = try_parallel_map(&ranges, ctx.parallelism, |&(off, len)| -> Result<Table> {
        let morsel = table.slice(off, len).map_err(QueryError::Store)?;
        let out = apply_pipe_ops(Arc::new(morsel), &ops, ctx)?;
        Ok(Arc::try_unwrap(out).unwrap_or_else(|a| (*a).clone()))
    });
    let parts = join_morsels(results)?;
    let merge_started = Instant::now();
    let mut iter = parts.into_iter();
    let mut out = iter.next().expect("rows > morsel_rows implies >= 1 morsel");
    for p in iter {
        out.append_table(&p).map_err(QueryError::Store)?;
    }
    ctx.count_merge(merge_started);
    Ok(Arc::new(out))
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Accumulator {
    Count {
        n: i64,
    },
    /// Integer SUM accumulates in `i128` and range-checks once at
    /// [`Accumulator::finish`]: overflow is decided by the **true total**,
    /// so serial, morselized and merged runs all agree on whether a sum
    /// overflows (a running `i64` would make it depend on evaluation
    /// order — an intermediate may overflow even when the total fits).
    SumInt {
        sum: i128,
        any: bool,
    },
    SumFloat {
        sum: f64,
        any: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    Min {
        best: Option<Value>,
    },
    Max {
        best: Option<Value>,
    },
}

impl Accumulator {
    fn new(func: AggFunc, arg_type: Option<DataType>) -> Accumulator {
        match func {
            AggFunc::Count => Accumulator::Count { n: 0 },
            AggFunc::Sum => match arg_type {
                Some(DataType::Float64) => Accumulator::SumFloat {
                    sum: 0.0,
                    any: false,
                },
                _ => Accumulator::SumInt { sum: 0, any: false },
            },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Accumulator::Min { best: None },
            AggFunc::Max => Accumulator::Max { best: None },
        }
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            Accumulator::Count { n } => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Accumulator::SumInt { sum, any } => {
                if let Some(x) = v.as_i64() {
                    *sum += x as i128;
                    *any = true;
                }
            }
            Accumulator::SumFloat { sum, any } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *any = true;
                }
            }
            Accumulator::Avg { sum, n } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *n += 1;
                }
            }
            Accumulator::Min { best } => {
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Less),
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
            Accumulator::Max { best } => {
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Greater),
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Typed update for a non-NULL integer-family value (`dt` distinguishes
    /// `Int32`/`Int64`/`Timestamp` so MIN/MAX reproduce the input type).
    /// Semantics match [`Accumulator::update`] with the boxed `Value`:
    /// integers feed SUM/AVG both ways; no allocation anywhere.
    #[inline]
    fn update_i64(&mut self, x: i64, dt: DataType) -> Result<()> {
        let make = |x: i64| match dt {
            DataType::Int32 => Value::Int32(x as i32),
            DataType::Timestamp => Value::Timestamp(x),
            _ => Value::Int64(x),
        };
        match self {
            Accumulator::Count { n } => *n += 1,
            Accumulator::SumInt { sum, any } => {
                *sum += x as i128;
                *any = true;
            }
            Accumulator::SumFloat { sum, any } => {
                *sum += x as f64;
                *any = true;
            }
            Accumulator::Avg { sum, n } => {
                *sum += x as f64;
                *n += 1;
            }
            Accumulator::Min { best } => {
                if best.as_ref().and_then(|b| b.as_i64()).is_none_or(|b| x < b) {
                    *best = Some(make(x));
                }
            }
            Accumulator::Max { best } => {
                if best.as_ref().and_then(|b| b.as_i64()).is_none_or(|b| x > b) {
                    *best = Some(make(x));
                }
            }
        }
        Ok(())
    }

    /// Typed update for a non-NULL float. SUM over an integer-typed
    /// accumulator skips floats, exactly like the boxed path
    /// (`Value::as_i64` answers `None` for `Float64`).
    #[inline]
    fn update_f64(&mut self, x: f64) {
        match self {
            Accumulator::Count { n } => *n += 1,
            Accumulator::SumInt { .. } => {}
            Accumulator::SumFloat { sum, any } => {
                *sum += x;
                *any = true;
            }
            Accumulator::Avg { sum, n } => {
                *sum += x;
                *n += 1;
            }
            Accumulator::Min { best } => {
                let replace = match best.as_ref().and_then(|b| b.as_f64()) {
                    None => true,
                    Some(b) => x.total_cmp(&b).is_lt(),
                };
                if replace {
                    *best = Some(Value::Float64(x));
                }
            }
            Accumulator::Max { best } => {
                let replace = match best.as_ref().and_then(|b| b.as_f64()) {
                    None => true,
                    Some(b) => x.total_cmp(&b).is_gt(),
                };
                if replace {
                    *best = Some(Value::Float64(x));
                }
            }
        }
    }

    /// Typed update for a non-NULL string: MIN/MAX compare the **borrowed**
    /// `&str` and clone only when the champion actually changes — the boxed
    /// path had to clone every row's string just to look at it.
    #[inline]
    fn update_str(&mut self, s: &str) {
        match self {
            Accumulator::Count { n } => *n += 1,
            // Strings feed neither SUM nor AVG (as_i64/as_f64 are None).
            Accumulator::SumInt { .. } | Accumulator::SumFloat { .. } | Accumulator::Avg { .. } => {
            }
            Accumulator::Min { best } => {
                if best.as_ref().and_then(|b| b.as_str()).is_none_or(|b| s < b) {
                    *best = Some(Value::Utf8(s.to_string()));
                }
            }
            Accumulator::Max { best } => {
                if best.as_ref().and_then(|b| b.as_str()).is_none_or(|b| s > b) {
                    *best = Some(Value::Utf8(s.to_string()));
                }
            }
        }
    }

    /// Fold one morsel's partial state (`other`, same variant) into
    /// `self`, in morsel order. `vectorized` selects the same float
    /// comparison the per-morsel sweep used (total order), so the merged
    /// MIN/MAX is bit-identical to the serial sweep; integer and string
    /// comparisons agree between the typed and boxed paths already.
    fn merge(&mut self, other: &Accumulator, vectorized: bool) -> Result<()> {
        match (self, other) {
            (Accumulator::Count { n }, Accumulator::Count { n: m }) => *n += m,
            (Accumulator::SumInt { sum, any }, Accumulator::SumInt { sum: s, any: a }) => {
                *sum += s;
                *any |= a;
            }
            (Accumulator::SumFloat { sum, any }, Accumulator::SumFloat { sum: s, any: a }) => {
                *sum += s;
                *any |= a;
            }
            (Accumulator::Avg { sum, n }, Accumulator::Avg { sum: s, n: m }) => {
                *sum += s;
                *n += m;
            }
            (me @ Accumulator::Min { .. }, Accumulator::Min { best: Some(v) })
            | (me @ Accumulator::Max { .. }, Accumulator::Max { best: Some(v) }) => match v {
                Value::Float64(x) if vectorized => me.update_f64(*x),
                _ => me.update(v)?,
            },
            (Accumulator::Min { .. }, Accumulator::Min { best: None })
            | (Accumulator::Max { .. }, Accumulator::Max { best: None }) => {}
            _ => {
                return Err(QueryError::Execution(
                    "accumulator variant mismatch in parallel merge".into(),
                ))
            }
        }
        Ok(())
    }

    fn finish(&self) -> Result<Value> {
        Ok(match self {
            Accumulator::Count { n } => Value::Int64(*n),
            Accumulator::SumInt { sum, any } => {
                if *any {
                    let total = i64::try_from(*sum)
                        .map_err(|_| QueryError::Execution("SUM overflow".into()))?;
                    Value::Int64(total)
                } else {
                    Value::Null
                }
            }
            Accumulator::SumFloat { sum, any } => {
                if *any {
                    Value::Float64(*sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::Avg { sum, n } => {
                if *n > 0 {
                    Value::Float64(*sum / *n as f64)
                } else {
                    Value::Null
                }
            }
            Accumulator::Min { best } | Accumulator::Max { best } => {
                best.clone().unwrap_or(Value::Null)
            }
        })
    }
}

struct GroupState {
    group_values: Vec<Value>,
    accs: Vec<Accumulator>,
    /// Per-aggregate seen-set for DISTINCT aggregates.
    distinct_seen: Vec<Option<HashSet<GroupKey>>>,
}

/// One aggregate call, decomposed.
struct AggSpec {
    func: AggFunc,
    arg: Option<Expr>,
    distinct: bool,
    arg_type: Option<DataType>,
}

fn new_group_state(specs: &[AggSpec], gvals: Vec<Value>) -> GroupState {
    GroupState {
        group_values: gvals,
        accs: specs
            .iter()
            .map(|s| Accumulator::new(s.func, s.arg_type))
            .collect(),
        distinct_seen: specs
            .iter()
            .map(|s| {
                if s.distinct {
                    Some(HashSet::new())
                } else {
                    None
                }
            })
            .collect(),
    }
}

fn execute_aggregate(
    input: &LogicalPlan,
    group: &[(Expr, String)],
    aggregates: &[(Expr, String)],
    ctx: &ExecContext<'_>,
) -> Result<Arc<Table>> {
    let table = execute(input, ctx)?;
    let in_schema = &table.schema;

    // Decompose aggregate expressions.
    let specs: Vec<AggSpec> = aggregates
        .iter()
        .map(|(e, _)| match e {
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                let arg_type = match arg {
                    Some(a) => Some(infer_type(a, in_schema)?),
                    None => None,
                };
                Ok(AggSpec {
                    func: *func,
                    arg: arg.as_deref().cloned(),
                    distinct: *distinct,
                    arg_type,
                })
            }
            other => Err(QueryError::Execution(format!(
                "non-aggregate expression {other} in aggregate node"
            ))),
        })
        .collect::<Result<_>>()?;

    // Column-at-a-time: evaluate group keys and aggregate arguments as
    // whole columns once, then fold rows over the materialized columns.
    let group_cols: Vec<Column> = group
        .iter()
        .map(|(ge, _)| eval_expr_opts(ge, &table, &ctx.eval_opts()))
        .collect::<Result<_>>()?;
    let arg_cols: Vec<Option<Column>> = specs
        .iter()
        .map(|s| {
            s.arg
                .as_ref()
                .map(|a| eval_expr_opts(a, &table, &ctx.eval_opts()))
                .transpose()
        })
        .collect::<Result<_>>()?;

    let n_rows = table.num_rows();
    let states: Vec<GroupState> = if ctx.parallelism > 1 && n_rows > ctx.morsel_rows {
        aggregate_morselized(&group_cols, &arg_cols, &specs, n_rows, ctx)?
    } else {
        aggregate_serial(group, &group_cols, &arg_cols, &specs, n_rows, ctx)?
    };

    // Build output table: one single-pass typed constructor per column
    // instead of a per-row `append_row` (which re-checks types cell by
    // cell).
    let mut fields = Vec::with_capacity(group.len() + aggregates.len());
    for (e, name) in group {
        fields.push(Field::nullable(name, infer_type(e, in_schema)?));
    }
    for (e, name) in aggregates {
        fields.push(Field::nullable(name, infer_type(e, in_schema)?));
    }
    let schema = Schema::new(fields).map_err(QueryError::Store)?;
    let n_cols = group.len() + aggregates.len();
    let mut col_vals: Vec<Vec<Value>> = (0..n_cols)
        .map(|_| Vec::with_capacity(states.len()))
        .collect();
    for state in &states {
        for (j, v) in state.group_values.iter().enumerate() {
            col_vals[j].push(v.clone());
        }
        for (j, a) in state.accs.iter().enumerate() {
            col_vals[group.len() + j].push(a.finish()?);
        }
    }
    let columns: Vec<Column> = schema
        .fields
        .iter()
        .zip(&col_vals)
        .map(|(f, vals)| Column::from_values(f.data_type, vals))
        .collect::<lazyetl_store::Result<_>>()
        .map_err(QueryError::Store)?;
    Ok(Arc::new(
        Table::new(schema, columns).map_err(QueryError::Store)?,
    ))
}

/// The serial reference aggregation: one left-to-right pass over the
/// whole input. Specialized keying paths avoid per-row Value boxing for
/// the common single-column cases.
fn aggregate_serial(
    group: &[(Expr, String)],
    group_cols: &[Column],
    arg_cols: &[Option<Column>],
    specs: &[AggSpec],
    n_rows: usize,
    ctx: &ExecContext<'_>,
) -> Result<Vec<GroupState>> {
    let mut states: Vec<GroupState> = Vec::new();
    let mut group_of_row: Vec<u32> = Vec::with_capacity(n_rows);
    let new_state = |gvals: Vec<Value>| new_group_state(specs, gvals);

    enum Keying<'a> {
        Global,
        Utf8(&'a [String], &'a Column),
        Int(Vec<i64>, &'a Column),
        Generic,
    }
    let keying = if group.is_empty() {
        Keying::Global
    } else if group.len() == 1 {
        use lazyetl_store::ColumnData as CD;
        match group_cols[0].data() {
            CD::Utf8(v) => Keying::Utf8(v, &group_cols[0]),
            CD::Int64(v) | CD::Timestamp(v) => Keying::Int(v.clone(), &group_cols[0]),
            CD::Int32(v) => Keying::Int(v.iter().map(|&x| x as i64).collect(), &group_cols[0]),
            _ => Keying::Generic,
        }
    } else {
        Keying::Generic
    };
    match keying {
        Keying::Global => {
            states.push(new_state(Vec::new()));
            group_of_row.resize(n_rows, 0);
        }
        Keying::Utf8(strings, col) => {
            let mut map: HashMap<&str, u32> = HashMap::new();
            let mut null_group: Option<u32> = None;
            #[allow(clippy::needless_range_loop)] // strings and col indexed in lockstep
            for row in 0..n_rows {
                let gid = if col.is_null(row) {
                    *null_group.get_or_insert_with(|| {
                        states.push(new_state(vec![Value::Null]));
                        (states.len() - 1) as u32
                    })
                } else {
                    match map.entry(strings[row].as_str()) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            states.push(new_state(vec![Value::Utf8(strings[row].clone())]));
                            *e.insert((states.len() - 1) as u32)
                        }
                    }
                };
                group_of_row.push(gid);
            }
        }
        Keying::Int(ints, col) => {
            let dt = col.data_type();
            let mut map: HashMap<i64, u32> = HashMap::new();
            let mut null_group: Option<u32> = None;
            #[allow(clippy::needless_range_loop)] // ints and col indexed in lockstep
            for row in 0..n_rows {
                let gid = if col.is_null(row) {
                    *null_group.get_or_insert_with(|| {
                        states.push(new_state(vec![Value::Null]));
                        (states.len() - 1) as u32
                    })
                } else {
                    match map.entry(ints[row]) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            let v = match dt {
                                DataType::Timestamp => Value::Timestamp(ints[row]),
                                DataType::Int32 => Value::Int32(ints[row] as i32),
                                _ => Value::Int64(ints[row]),
                            };
                            states.push(new_state(vec![v]));
                            *e.insert((states.len() - 1) as u32)
                        }
                    }
                };
                group_of_row.push(gid);
            }
        }
        Keying::Generic => {
            let mut map: HashMap<Vec<GroupKey>, u32> = HashMap::new();
            for row in 0..n_rows {
                let mut key = Vec::with_capacity(group.len());
                let mut gvals = Vec::with_capacity(group.len());
                for col in group_cols {
                    let v = col.get(row).map_err(QueryError::Store)?;
                    key.push(v.group_key());
                    gvals.push(v);
                }
                let gid = match map.entry(key) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        states.push(new_state(gvals));
                        *e.insert((states.len() - 1) as u32)
                    }
                };
                group_of_row.push(gid);
            }
        }
    }

    // Accumulate, one aggregate (= one argument column) at a time. With
    // vectorized execution on, a typed column sweeps through the matching
    // `update_*` method — the accumulator reads raw slice values and never
    // boxes a `Value` per row (the old path cloned every `Utf8` cell just
    // to compare it for MIN/MAX). DISTINCT aggregates and kernel-less
    // types keep the boxed reference loop.
    for (i, arg_col) in arg_cols.iter().enumerate() {
        match arg_col {
            None => {
                // COUNT(*): every row counts one.
                for row in 0..n_rows {
                    let state = &mut states[group_of_row[row] as usize];
                    let v = Value::Int64(1);
                    if let Some(seen) = &mut state.distinct_seen[i] {
                        if !seen.insert(v.group_key()) {
                            continue;
                        }
                    }
                    state.accs[i].update(&v)?;
                }
            }
            Some(col) => {
                use lazyetl_store::ColumnData as CD;
                let typed = !specs[i].distinct && ctx.vectorized;
                match col.data() {
                    CD::Int64(data) | CD::Timestamp(data) if typed => {
                        let dt = col.data_type();
                        for (row, &x) in data.iter().enumerate() {
                            if col.is_null(row) {
                                continue;
                            }
                            states[group_of_row[row] as usize].accs[i].update_i64(x, dt)?;
                        }
                    }
                    CD::Int32(data) if typed => {
                        for (row, &x) in data.iter().enumerate() {
                            if col.is_null(row) {
                                continue;
                            }
                            states[group_of_row[row] as usize].accs[i]
                                .update_i64(x as i64, DataType::Int32)?;
                        }
                    }
                    CD::Float64(data) if typed => {
                        for (row, &x) in data.iter().enumerate() {
                            if col.is_null(row) {
                                continue;
                            }
                            states[group_of_row[row] as usize].accs[i].update_f64(x);
                        }
                    }
                    CD::Utf8(data) if typed => {
                        for (row, s) in data.iter().enumerate() {
                            if col.is_null(row) {
                                continue;
                            }
                            states[group_of_row[row] as usize].accs[i].update_str(s);
                        }
                    }
                    _ => {
                        // Boxed reference loop: DISTINCT bookkeeping, Bool
                        // columns, and the non-vectorized ablation.
                        for row in 0..n_rows {
                            let state = &mut states[group_of_row[row] as usize];
                            let v = col.get(row).map_err(QueryError::Store)?;
                            if let Some(seen) = &mut state.distinct_seen[i] {
                                if v.is_null() || !seen.insert(v.group_key()) {
                                    continue;
                                }
                            }
                            state.accs[i].update(&v)?;
                        }
                    }
                }
            }
        }
    }

    // Global aggregate over empty input still yields one row (created
    // above by Keying::Global even when n_rows == 0).
    Ok(states)
}

/// Per-morsel partial aggregation state: local groups in first-appearance
/// order, each with its group key, group values, partial accumulators,
/// and — for DISTINCT aggregates — the values first seen in this morsel,
/// in encounter order.
struct MorselAgg {
    keys: Vec<Vec<GroupKey>>,
    gvals: Vec<Vec<Value>>,
    accs: Vec<Vec<Accumulator>>,
    distinct_firsts: Vec<Vec<Vec<Value>>>,
}

/// Morsel-driven aggregation: accumulate each fixed-size row range into
/// thread-local states on the worker pool, then merge the partials **in
/// morsel order** on the calling thread.
///
/// Equivalence with [`aggregate_serial`]:
/// - groups are created in first-appearance order per morsel and merged
///   in morsel order, so global group order equals the serial scan's
///   first-appearance order;
/// - COUNT/MIN/MAX/SUM-over-int merges are associative over ordered
///   partials ([`Accumulator::merge`]); float SUM/AVG merge partial sums
///   in morsel order, so the decomposition (fixed by `morsel_rows`, not
///   by the thread count) fully determines rounding;
/// - DISTINCT aggregates replay each morsel's first-seen values through
///   a global seen-set in morsel order — exactly the serial update order.
fn aggregate_morselized(
    group_cols: &[Column],
    arg_cols: &[Option<Column>],
    specs: &[AggSpec],
    n_rows: usize,
    ctx: &ExecContext<'_>,
) -> Result<Vec<GroupState>> {
    let ranges = morsel_ranges(n_rows, ctx.morsel_rows);
    ctx.count_parallel(ranges.len());
    let vectorized = ctx.vectorized;
    let results = try_parallel_map(&ranges, ctx.parallelism, |&(off, len)| {
        accumulate_morsel(off, len, group_cols, arg_cols, specs, vectorized)
    });
    let morsels = join_morsels(results)?;

    let merge_started = Instant::now();
    let mut states: Vec<GroupState> = Vec::new();
    let mut gid_of: HashMap<Vec<GroupKey>, u32> = HashMap::new();
    for m in &morsels {
        for (li, key) in m.keys.iter().enumerate() {
            let gid = match gid_of.entry(key.clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    states.push(new_group_state(specs, m.gvals[li].clone()));
                    *e.insert((states.len() - 1) as u32)
                }
            } as usize;
            let state = &mut states[gid];
            for (i, spec) in specs.iter().enumerate() {
                if spec.distinct {
                    let seen = state.distinct_seen[i].as_mut().expect("distinct seen-set");
                    for v in &m.distinct_firsts[li][i] {
                        if seen.insert(v.group_key()) {
                            state.accs[i].update(v)?;
                        }
                    }
                } else {
                    state.accs[i].merge(&m.accs[li][i], vectorized)?;
                }
            }
        }
    }
    ctx.count_merge(merge_started);
    Ok(states)
}

/// Accumulate rows `[off, off + len)` into fresh local group states.
/// Group values and first-appearance order match the serial keying paths
/// (which only specialize the representation, not the semantics), and the
/// typed accumulation sweeps mirror [`aggregate_serial`]'s dispatch so a
/// morsel's partial state is exactly what the serial pass would have
/// accumulated over the same rows.
fn accumulate_morsel(
    off: usize,
    len: usize,
    group_cols: &[Column],
    arg_cols: &[Option<Column>],
    specs: &[AggSpec],
    vectorized: bool,
) -> Result<MorselAgg> {
    let end = off + len;
    let mut m = MorselAgg {
        keys: Vec::new(),
        gvals: Vec::new(),
        accs: Vec::new(),
        distinct_firsts: Vec::new(),
    };
    // Local seen-sets keep `distinct_firsts` deduplicated within the
    // morsel; cross-morsel dedup happens at merge time.
    let mut local_seen: Vec<Vec<HashSet<GroupKey>>> = Vec::new();
    let mut gid_of: HashMap<Vec<GroupKey>, u32> = HashMap::new();
    let mut group_of_row: Vec<u32> = Vec::with_capacity(len);
    for row in off..end {
        let mut key = Vec::with_capacity(group_cols.len());
        let mut gvals = Vec::with_capacity(group_cols.len());
        for col in group_cols {
            let v = col.get(row).map_err(QueryError::Store)?;
            key.push(v.group_key());
            gvals.push(v);
        }
        let gid = match gid_of.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                m.keys.push(e.key().clone());
                m.gvals.push(gvals);
                m.accs.push(
                    specs
                        .iter()
                        .map(|s| Accumulator::new(s.func, s.arg_type))
                        .collect(),
                );
                m.distinct_firsts.push(vec![Vec::new(); specs.len()]);
                local_seen.push(vec![HashSet::new(); specs.len()]);
                *e.insert((m.keys.len() - 1) as u32)
            }
        };
        group_of_row.push(gid);
    }

    for (i, arg_col) in arg_cols.iter().enumerate() {
        match arg_col {
            None => {
                // COUNT(*): every row counts one.
                for &gid in &group_of_row {
                    let g = gid as usize;
                    let v = Value::Int64(1);
                    if specs[i].distinct {
                        if local_seen[g][i].insert(v.group_key()) {
                            m.distinct_firsts[g][i].push(v);
                        }
                        continue;
                    }
                    m.accs[g][i].update(&v)?;
                }
            }
            Some(col) => {
                use lazyetl_store::ColumnData as CD;
                let typed = !specs[i].distinct && vectorized;
                match col.data() {
                    CD::Int64(data) | CD::Timestamp(data) if typed => {
                        let dt = col.data_type();
                        for row in off..end {
                            if col.is_null(row) {
                                continue;
                            }
                            let g = group_of_row[row - off] as usize;
                            m.accs[g][i].update_i64(data[row], dt)?;
                        }
                    }
                    CD::Int32(data) if typed => {
                        for row in off..end {
                            if col.is_null(row) {
                                continue;
                            }
                            let g = group_of_row[row - off] as usize;
                            m.accs[g][i].update_i64(data[row] as i64, DataType::Int32)?;
                        }
                    }
                    CD::Float64(data) if typed => {
                        for row in off..end {
                            if col.is_null(row) {
                                continue;
                            }
                            let g = group_of_row[row - off] as usize;
                            m.accs[g][i].update_f64(data[row]);
                        }
                    }
                    CD::Utf8(data) if typed => {
                        for row in off..end {
                            if col.is_null(row) {
                                continue;
                            }
                            let g = group_of_row[row - off] as usize;
                            m.accs[g][i].update_str(&data[row]);
                        }
                    }
                    _ => {
                        // Boxed reference loop: DISTINCT bookkeeping, Bool
                        // columns, and the non-vectorized ablation.
                        for row in off..end {
                            let g = group_of_row[row - off] as usize;
                            let v = col.get(row).map_err(QueryError::Store)?;
                            if specs[i].distinct {
                                if v.is_null() {
                                    continue;
                                }
                                if local_seen[g][i].insert(v.group_key()) {
                                    m.distinct_firsts[g][i].push(v);
                                }
                                continue;
                            }
                            m.accs[g][i].update(&v)?;
                        }
                    }
                }
            }
        }
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

fn execute_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    on: &[(Expr, Expr)],
    right_label: &str,
    ctx: &ExecContext<'_>,
) -> Result<Arc<Table>> {
    let lt = execute(left, ctx)?;
    let rt = execute(right, ctx)?;
    // Column-at-a-time: materialize the key columns of both sides once.
    let right_keys: Vec<Column> = on
        .iter()
        .map(|(_, re)| eval_expr_opts(re, &rt, &ctx.eval_opts()))
        .collect::<Result<_>>()?;
    let left_keys: Vec<Column> = on
        .iter()
        .map(|(le, _)| eval_expr_opts(le, &lt, &ctx.eval_opts()))
        .collect::<Result<_>>()?;

    // Build on the smaller input, probe the larger; emitted index pairs
    // are always (left row, right row) so the output schema is unaffected.
    let build_is_left = lt.num_rows() < rt.num_rows();
    let (bt, bkeys, pt, pkeys) = if build_is_left {
        (&lt, &left_keys, &rt, &right_keys)
    } else {
        (&rt, &right_keys, &lt, &left_keys)
    };
    let packed = if ctx.vectorized {
        pack_int_keys(bkeys, pkeys)
    } else {
        None
    };
    let (probe_idx, build_idx) = match packed {
        // All keys integer-typed (the file_id/seq_no joins of the
        // warehouse schema): hash on packed native integers.
        Some((bk, pk)) => hash_join_pairs(&bk, &pk, ctx)?,
        // Generic path: normalized GroupKey vectors.
        None => {
            let bk = group_key_rows(bkeys, bt.num_rows())?;
            let pk = group_key_rows(pkeys, pt.num_rows())?;
            hash_join_pairs(&bk, &pk, ctx)?
        }
    };
    let (left_idx, right_idx) = if build_is_left {
        (build_idx, probe_idx)
    } else {
        (probe_idx, build_idx)
    };
    let lout = lt.take(&left_idx).map_err(QueryError::Store)?;
    let rout = rt.take(&right_idx).map_err(QueryError::Store)?;
    let schema = lout
        .schema
        .join(&rout.schema, right_label)
        .map_err(QueryError::Store)?;
    let mut columns = lout.columns;
    columns.extend(rout.columns);
    Ok(Arc::new(
        Table::new(schema, columns).map_err(QueryError::Store)?,
    ))
}

/// Per-row normalized join keys for one side; `None` marks a row with a
/// NULL key component (which never joins).
fn group_key_rows(cols: &[Column], rows: usize) -> Result<Vec<Option<Vec<GroupKey>>>> {
    (0..rows)
        .map(|row| {
            let mut key = Vec::with_capacity(cols.len());
            for col in cols {
                let v = col.get(row).map_err(QueryError::Store)?;
                if v.is_null() {
                    return Ok(None);
                }
                key.push(v.group_key());
            }
            Ok(Some(key))
        })
        .collect()
}

/// Hash-join two sides' per-row keys into matched `(probe row, build
/// row)` index vectors, in **probe order** (and build-row order within a
/// probe row) — the canonical serial emission order.
///
/// With parallelism, both sides partition by a deterministic key hash;
/// each worker builds and probes one partition independently (a key
/// lands in exactly one partition, so no matches are lost or
/// duplicated), and the merged pairs are sorted back into the serial
/// emission order — the output is identical to the serial loop for any
/// partition count.
fn hash_join_pairs<K: Hash + Eq + Sync>(
    bk: &[Option<K>],
    pk: &[Option<K>],
    ctx: &ExecContext<'_>,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if ctx.parallelism <= 1 || pk.len().max(bk.len()) <= ctx.morsel_rows {
        // Serial reference path.
        let mut build: HashMap<&K, Vec<usize>> = HashMap::with_capacity(bk.len());
        for (row, key) in bk.iter().enumerate() {
            if let Some(k) = key {
                build.entry(k).or_default().push(row);
            }
        }
        let (mut probe_idx, mut build_idx) = (Vec::new(), Vec::new());
        for (row, key) in pk.iter().enumerate() {
            if let Some(k) = key {
                if let Some(matches) = build.get(k) {
                    for &r in matches {
                        probe_idx.push(row);
                        build_idx.push(r);
                    }
                }
            }
        }
        return Ok((probe_idx, build_idx));
    }

    // `DefaultHasher::new()` hashes with fixed keys, so the partition of
    // a key is stable across threads, runs and machines.
    let parts = ctx.parallelism;
    let part_of = |k: &K| {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        (h.finish() % parts as u64) as usize
    };
    let mut bparts: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (row, key) in bk.iter().enumerate() {
        if let Some(k) = key {
            bparts[part_of(k)].push(row);
        }
    }
    let mut pparts: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (row, key) in pk.iter().enumerate() {
        if let Some(k) = key {
            pparts[part_of(k)].push(row);
        }
    }
    ctx.count_parallel(parts);
    let ids: Vec<usize> = (0..parts).collect();
    let results = try_parallel_map(&ids, ctx.parallelism, |&j| {
        let mut build: HashMap<&K, Vec<usize>> = HashMap::with_capacity(bparts[j].len());
        for &row in &bparts[j] {
            let k = bk[row].as_ref().expect("partitioned rows have keys");
            build.entry(k).or_default().push(row);
        }
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for &row in &pparts[j] {
            let k = pk[row].as_ref().expect("partitioned rows have keys");
            if let Some(matches) = build.get(k) {
                for &r in matches {
                    pairs.push((row, r));
                }
            }
        }
        pairs
    });
    let merge_started = Instant::now();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for r in results {
        match r {
            Ok(p) => pairs.extend(p),
            Err(p) => return Err(QueryError::Execution(p.to_string())),
        }
    }
    // Per partition, pairs are already (probe ascending, build ascending)
    // and a probe row's matches live in exactly one partition, so this
    // sort restores precisely the serial emission order.
    pairs.sort_unstable();
    let (probe_idx, build_idx) = pairs.into_iter().unzip();
    ctx.count_merge(merge_started);
    Ok((probe_idx, build_idx))
}

/// One packed `u128` per row; `None` marks a row with a NULL key.
type PackedKeys = Vec<Option<u128>>;

/// Pack the integer-typed join keys of **both** sides into one `u128` per
/// row (`None` = a row with a NULL key, which never joins).
///
/// One or two keys pack as fixed 64-bit lanes. Three or more keys use a
/// shared range encoding: per key, the min/max across *both* sides fixes
/// an offset and a bit width (`ceil(log2(range + 1))`); the per-row
/// deltas then concatenate into the `u128`. Because build and probe rows
/// encode with the same parameters, the packing is a bijection over the
/// observed key space — equal tuples collide exactly, distinct tuples
/// never do. Returns `None` (→ generic `GroupKey` hashing) when any key
/// column is non-integer or the widths exceed 128 bits.
/// Borrowed-or-widened i64 views of one side's key columns.
type KeySlices<'a> = [std::borrow::Cow<'a, [i64]>];

fn pack_int_keys(build: &[Column], probe: &[Column]) -> Option<(PackedKeys, PackedKeys)> {
    use std::borrow::Cow;
    if build.is_empty() {
        return None;
    }
    let as_i64 = lazyetl_store::kernels::as_i64_slice;
    let bvals: Vec<Cow<'_, [i64]>> = build.iter().map(as_i64).collect::<Option<_>>()?;
    let pvals: Vec<Cow<'_, [i64]>> = probe.iter().map(as_i64).collect::<Option<_>>()?;
    let k = build.len();

    let rows = |cols: &[Column],
                vals: &KeySlices<'_>,
                pack: &dyn Fn(&KeySlices<'_>, usize) -> u128|
     -> Vec<Option<u128>> {
        let n = vals.first().map_or(0, |v| v.len());
        (0..n)
            .map(|row| {
                if cols.iter().any(|c| c.is_null(row)) {
                    None
                } else {
                    Some(pack(vals, row))
                }
            })
            .collect()
    };

    if k <= 2 {
        // Fixed lanes: each i64 keeps its full 64 bits.
        let pack = |vals: &KeySlices<'_>, row: usize| -> u128 {
            let hi = vals[0][row] as u64 as u128;
            let lo = vals.get(1).map_or(0, |v| v[row] as u64 as u128);
            hi << 64 | lo
        };
        return Some((rows(build, &bvals, &pack), rows(probe, &pvals, &pack)));
    }

    // ≥3 keys: range-encode. Min/max per key across both sides; a key's
    // lane is exactly wide enough for (max - min). NULL rows are skipped
    // in the fold — they never pack (and never join), and their padded
    // zero payloads would otherwise drag lanes wide enough to spuriously
    // overflow the 128-bit budget.
    let mut offsets = Vec::with_capacity(k);
    let mut widths = Vec::with_capacity(k);
    let mut total = 0u32;
    for i in 0..k {
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        let mut fold = |col: &Column, vals: &[i64]| {
            for (row, &v) in vals.iter().enumerate() {
                if col.is_null(row) {
                    continue;
                }
                lo = lo.min(v);
                hi = hi.max(v);
            }
        };
        fold(&build[i], &bvals[i]);
        fold(&probe[i], &pvals[i]);
        if lo > hi {
            // No non-NULL values on either side: nothing will join.
            (lo, hi) = (0, 0);
        }
        let range = (hi as i128 - lo as i128) as u128;
        let width = 128 - range.leading_zeros(); // bits to hold `range`
        offsets.push(lo);
        widths.push(width);
        total += width;
    }
    if total > 128 {
        return None; // key space too wide for one u128: generic path
    }
    let pack = move |vals: &KeySlices<'_>, row: usize| -> u128 {
        let mut acc = 0u128;
        for i in 0..k {
            let delta = (vals[i][row] as i128 - offsets[i] as i128) as u128;
            acc = (acc << widths[i]) | delta;
        }
        acc
    };
    Some((rows(build, &bvals, &pack), rows(probe, &pvals, &pack)))
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

fn sort_indices(
    table: &Table,
    keys: &[(Expr, bool)],
    opts: &EvalOptions<'_>,
) -> Result<Vec<usize>> {
    let mut key_cols: Vec<Column> = Vec::with_capacity(keys.len());
    for (e, _) in keys {
        key_cols.push(eval_expr_opts(e, table, opts)?);
    }
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    let mut fail: Option<QueryError> = None;
    indices.sort_by(|&a, &b| {
        for ((_, desc), col) in keys.iter().zip(&key_cols) {
            let va = col.get(a).unwrap_or(Value::Null);
            let vb = col.get(b).unwrap_or(Value::Null);
            // NULLs sort last regardless of direction.
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => match va.sql_cmp(&vb) {
                    Some(o) => {
                        if *desc {
                            o.reverse()
                        } else {
                            o
                        }
                    }
                    None => {
                        if fail.is_none() {
                            fail = Some(QueryError::Execution(format!(
                                "cannot order {va} against {vb}"
                            )));
                        }
                        std::cmp::Ordering::Equal
                    }
                },
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    match fail {
        Some(e) => Err(e),
        None => Ok(indices),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::planner::{plan_sql, TableSource};

    fn demo_catalog() -> Catalog {
        let mut c = Catalog::new();
        let files_schema = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("uri", DataType::Utf8),
            Field::new("station", DataType::Utf8),
            Field::new("network", DataType::Utf8),
            Field::new("channel", DataType::Utf8),
        ])
        .unwrap();
        let mut files = Table::empty(files_schema);
        let rows = [
            (0i64, "a.mseed", "ISK", "KO", "BHE"),
            (1, "b.mseed", "HGN", "NL", "BHZ"),
            (2, "c.mseed", "WIT", "NL", "BHZ"),
            (3, "d.mseed", "HGN", "NL", "BHE"),
        ];
        for (id, uri, st, net, ch) in rows {
            files
                .append_row(vec![
                    Value::Int64(id),
                    Value::Utf8(uri.into()),
                    Value::Utf8(st.into()),
                    Value::Utf8(net.into()),
                    Value::Utf8(ch.into()),
                ])
                .unwrap();
        }
        let samples_schema = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("sample_time", DataType::Timestamp),
            Field::new("sample_value", DataType::Float64),
        ])
        .unwrap();
        let mut samples = Table::empty(samples_schema);
        for i in 0..40i64 {
            samples
                .append_row(vec![
                    Value::Int64(i % 4),
                    Value::Timestamp(1_000_000 * i),
                    Value::Float64((i % 4) as f64 * 10.0 + (i / 4) as f64),
                ])
                .unwrap();
        }
        c.create_table("files", files).unwrap();
        c.create_table("samples", samples).unwrap();
        c.create_view(
            "fileview",
            "SELECT * FROM files f JOIN samples s ON f.file_id = s.file_id",
        )
        .unwrap();
        c
    }

    fn run(sql: &str, c: &Catalog) -> Arc<Table> {
        let src = TableSource::new(c);
        let plan = plan_sql(sql, &src).unwrap();
        let plan = optimize(&plan).unwrap();
        execute(&plan, &ExecContext::new(c)).unwrap()
    }

    #[test]
    fn scan_filter_project() {
        let c = demo_catalog();
        let t = run(
            "SELECT uri FROM files WHERE network = 'NL' AND channel = 'BHZ'",
            &c,
        );
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("b.mseed".into()));
    }

    #[test]
    fn aggregate_group_by() {
        let c = demo_catalog();
        let t = run(
            "SELECT station, COUNT(*) AS cnt FROM files GROUP BY station ORDER BY cnt DESC, station",
            &c,
        );
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("HGN".into()));
        assert_eq!(t.row(0).unwrap()[1], Value::Int64(2));
    }

    #[test]
    fn global_aggregates_over_empty_input() {
        let c = demo_catalog();
        let t = run(
            "SELECT COUNT(*), SUM(file_id), AVG(file_id), MIN(uri) FROM files WHERE station = 'NOPE'",
            &c,
        );
        assert_eq!(t.num_rows(), 1);
        let row = t.row(0).unwrap();
        assert_eq!(row[0], Value::Int64(0));
        assert!(row[1].is_null());
        assert!(row[2].is_null());
        assert!(row[3].is_null());
    }

    #[test]
    fn join_via_view() {
        let c = demo_catalog();
        let t = run(
            "SELECT f.station, AVG(s.sample_value) FROM fileview WHERE f.network = 'NL' GROUP BY f.station ORDER BY f.station",
            &c,
        );
        assert_eq!(t.num_rows(), 2);
        // station HGN covers file_ids 1 and 3.
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("HGN".into()));
    }

    #[test]
    fn distinct_and_limit() {
        let c = demo_catalog();
        let t = run("SELECT DISTINCT network FROM files ORDER BY network", &c);
        assert_eq!(t.num_rows(), 2);
        let t = run("SELECT uri FROM files ORDER BY uri LIMIT 2", &c);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(1).unwrap()[0], Value::Utf8("b.mseed".into()));
        let t = run("SELECT uri FROM files LIMIT 0", &c);
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn count_distinct() {
        let c = demo_catalog();
        let t = run("SELECT COUNT(DISTINCT station) FROM files", &c);
        assert_eq!(t.row(0).unwrap()[0], Value::Int64(3));
    }

    #[test]
    fn select_without_from() {
        let c = demo_catalog();
        let t = run("SELECT 1 + 1 AS two, 'x' AS tag", &c);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.row(0).unwrap()[0], Value::Int64(2));
        assert_eq!(t.row(0).unwrap()[1], Value::Utf8("x".into()));
    }

    #[test]
    fn order_by_nulls_last() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::nullable("v", DataType::Int32)]).unwrap();
        let mut t = Table::empty(schema);
        for v in [Value::Int32(2), Value::Null, Value::Int32(1)] {
            t.append_row(vec![v]).unwrap();
        }
        c.create_table("t", t).unwrap();
        let asc = run("SELECT v FROM t ORDER BY v", &c);
        assert_eq!(asc.row(0).unwrap()[0], Value::Int32(1));
        assert!(asc.row(2).unwrap()[0].is_null());
        let desc = run("SELECT v FROM t ORDER BY v DESC", &c);
        assert_eq!(desc.row(0).unwrap()[0], Value::Int32(2));
        assert!(desc.row(2).unwrap()[0].is_null());
    }

    #[test]
    fn external_scan_without_provider_fails() {
        let c = demo_catalog();
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        let src = TableSource::new(&c).with_external("ext", schema);
        let plan = plan_sql("SELECT x FROM ext", &src).unwrap();
        let res = execute(&plan, &ExecContext::new(&c));
        assert!(matches!(res, Err(QueryError::Execution(_))));
    }

    #[test]
    fn join_null_keys_do_not_match() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::nullable("k", DataType::Int32)]).unwrap();
        let mut a = Table::empty(schema.clone());
        a.append_row(vec![Value::Int32(1)]).unwrap();
        a.append_row(vec![Value::Null]).unwrap();
        let mut b = Table::empty(schema);
        b.append_row(vec![Value::Null]).unwrap();
        b.append_row(vec![Value::Int32(1)]).unwrap();
        c.create_table("a", a).unwrap();
        c.create_table("b", b).unwrap();
        let t = run("SELECT * FROM a JOIN b ON a.k = b.k", &c);
        assert_eq!(t.num_rows(), 1, "only the non-null key pair joins");
    }

    #[test]
    fn string_key_join_uses_generic_path() {
        // Utf8 keys cannot take the packed-integer fast path; results must
        // still match expectations.
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("v", DataType::Int64),
        ])
        .unwrap();
        let mut a = Table::empty(schema.clone());
        let mut b = Table::empty(schema);
        for (n, v) in [("x", 1i64), ("y", 2), ("z", 3)] {
            a.append_row(vec![Value::Utf8(n.into()), Value::Int64(v)])
                .unwrap();
        }
        for (n, v) in [("y", 20i64), ("z", 30), ("w", 40)] {
            b.append_row(vec![Value::Utf8(n.into()), Value::Int64(v)])
                .unwrap();
        }
        c.create_table("a", a).unwrap();
        c.create_table("b", b).unwrap();
        let t = run(
            "SELECT a.name, a.v, b.v FROM a JOIN b ON a.name = b.name ORDER BY a.name",
            &c,
        );
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("y".into()));
        assert_eq!(t.row(0).unwrap()[2], Value::Int64(20));
        assert_eq!(t.row(1).unwrap()[0], Value::Utf8("z".into()));
    }

    #[test]
    fn three_key_join_packs_integers() {
        // ≥3 integer keys take the range-encoded u128 packing (the
        // Figure-1 mix must never hit the generic path); results are
        // identical to the generic GroupKey build either way.
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k1", DataType::Int64),
            Field::new("k2", DataType::Int64),
            Field::new("k3", DataType::Int64),
        ])
        .unwrap();
        let mut a = Table::empty(schema.clone());
        let mut b = Table::empty(schema);
        for i in 0..6i64 {
            a.append_row(vec![
                Value::Int64(i % 2),
                Value::Int64(i % 3),
                Value::Int64(i - 1_000_000), // exercise the offset encoding
            ])
            .unwrap();
            b.append_row(vec![
                Value::Int64(i % 2),
                Value::Int64(i % 3),
                Value::Int64(i - 1_000_000),
            ])
            .unwrap();
        }
        c.create_table("a", a).unwrap();
        c.create_table("b", b).unwrap();
        let sql = "SELECT COUNT(*) FROM a JOIN b ON a.k1 = b.k1 AND a.k2 = b.k2 AND a.k3 = b.k3";
        // Exact triple matches only: 6 rows — on both paths.
        let t = run(sql, &c);
        assert_eq!(t.row(0).unwrap()[0], Value::Int64(6));
        let src = TableSource::new(&c);
        let plan = optimize(&plan_sql(sql, &src).unwrap()).unwrap();
        let scalar_ctx = ExecContext {
            vectorized: false,
            ..ExecContext::new(&c)
        };
        let t2 = execute(&plan, &scalar_ctx).unwrap();
        assert_eq!(t2.row(0).unwrap()[0], Value::Int64(6));
    }

    #[test]
    fn pack_int_keys_shapes() {
        let col = |vals: &[i64]| {
            Column::from_values(
                DataType::Int64,
                &vals.iter().map(|&v| Value::Int64(v)).collect::<Vec<_>>(),
            )
            .unwrap()
        };
        // Three keys with extreme-ish ranges still pack (≤128 bits total).
        let b = vec![col(&[1, 2]), col(&[10, 20]), col(&[-5, 5])];
        let p = vec![col(&[2]), col(&[20]), col(&[5])];
        let (bk, pk) = pack_int_keys(&b, &p).unwrap();
        assert_eq!(bk[1], pk[0], "equal tuples collide");
        assert_ne!(bk[0], bk[1], "distinct tuples do not");
        // Three full-range i64 keys exceed 128 bits: generic fallback.
        let wide = vec![
            col(&[i64::MIN, i64::MAX]),
            col(&[i64::MIN, i64::MAX]),
            col(&[i64::MIN, i64::MAX]),
        ];
        assert!(pack_int_keys(&wide, &wide).is_none());
        // NULL keys never pack.
        let withnull =
            Column::from_values(DataType::Int64, &[Value::Int64(1), Value::Null]).unwrap();
        let b = vec![withnull.clone(), col(&[7, 8]), col(&[0, 0])];
        let (bk, _) = pack_int_keys(&b, &b).unwrap();
        assert!(bk[0].is_some());
        assert!(bk[1].is_none());
        // Non-integer key type: no packing.
        let s = Column::from_values(DataType::Utf8, &[Value::Utf8("x".into())]).unwrap();
        assert!(pack_int_keys(&[s.clone(), s.clone(), s], &[]).is_none());
        // NULL rows' zero padding must not widen lanes: three
        // large-magnitude keys still fit the 128-bit budget because the
        // NULL row is skipped when folding min/max.
        let big = 1_200_000_000_000_000i64;
        let nullable_big = |off: i64| {
            Column::from_values(DataType::Int64, &[Value::Int64(big + off), Value::Null]).unwrap()
        };
        let b = vec![nullable_big(0), nullable_big(1), nullable_big(2)];
        let p = vec![nullable_big(0), nullable_big(1), nullable_big(2)];
        let (bk, pk) = pack_int_keys(&b, &p).expect("null padding must not widen lanes");
        assert_eq!(bk[0], pk[0]);
        assert!(bk[1].is_none(), "the NULL row still never packs");
    }

    #[test]
    fn zone_map_pruning_short_circuits_scan() {
        use crate::metrics::ExecMetrics;
        let c = demo_catalog();
        let metrics = ExecMetrics::new();
        let src = TableSource::new(&c);
        // samples.sample_value spans [0, 39]; > 1000 is provably empty.
        let sql = "SELECT sample_value FROM samples WHERE sample_value > 1000.0";
        let plan = optimize(&plan_sql(sql, &src).unwrap()).unwrap();
        let ctx = ExecContext::new(&c).with_metrics(&metrics);
        let t = execute(&plan, &ctx).unwrap();
        assert_eq!(t.num_rows(), 0);
        let snap = metrics.snapshot();
        assert_eq!(snap.rows_pruned, 40, "whole scan skipped");
        assert_eq!(snap.rows_scanned, 0, "pruned scan never produced rows");
        // Pruning off: same rows, but the scan actually runs.
        let metrics2 = ExecMetrics::new();
        let ctx = ExecContext {
            zone_map_pruning: false,
            ..ExecContext::new(&c).with_metrics(&metrics2)
        };
        let t2 = execute(&plan, &ctx).unwrap();
        assert_eq!(t2.num_rows(), 0);
        let snap2 = metrics2.snapshot();
        assert_eq!(snap2.rows_pruned, 0);
        assert_eq!(snap2.rows_scanned, 40);
        // A satisfiable predicate is never pruned.
        let sql = "SELECT sample_value FROM samples WHERE sample_value > 29.0";
        let plan = optimize(&plan_sql(sql, &src).unwrap()).unwrap();
        let t3 = execute(&plan, &ExecContext::new(&c).with_metrics(&metrics)).unwrap();
        assert!(t3.num_rows() > 0);
    }

    #[test]
    fn pruning_never_masks_sibling_errors() {
        // `v > t` (Float64 vs Timestamp) is unorderable and must raise
        // the same execution error whether or not the provably-empty
        // sibling conjunct could have pruned the scan.
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("v", DataType::Float64),
            Field::new("t", DataType::Timestamp),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        t.append_row(vec![Value::Float64(1.0), Value::Timestamp(100)])
            .unwrap();
        c.create_table("s", t).unwrap();
        let src = TableSource::new(&c);
        let sql = "SELECT v FROM s WHERE v > t AND t > '2030-01-01T00:00:00.000'";
        let plan = optimize(&plan_sql(sql, &src).unwrap()).unwrap();
        let pruned = execute(&plan, &ExecContext::new(&c));
        let unpruned = execute(
            &plan,
            &ExecContext {
                zone_map_pruning: false,
                ..ExecContext::new(&c)
            },
        );
        assert!(unpruned.is_err(), "unorderable comparison must error");
        assert!(pruned.is_err(), "pruning must not swallow the error");
    }

    #[test]
    fn vectorized_batches_are_counted() {
        use crate::metrics::ExecMetrics;
        let c = demo_catalog();
        let metrics = ExecMetrics::new();
        let src = TableSource::new(&c);
        let sql = "SELECT uri FROM files WHERE network = 'NL' AND channel = 'BHZ'";
        let plan = optimize(&plan_sql(sql, &src).unwrap()).unwrap();
        let t = execute(&plan, &ExecContext::new(&c).with_metrics(&metrics)).unwrap();
        assert_eq!(t.num_rows(), 2);
        let snap = metrics.snapshot();
        assert!(snap.vectorized_batches > 0, "filter ran on the kernels");
        assert_eq!(snap.rows_scanned, 4, "files table scanned once");
    }

    #[test]
    fn having_filters_groups() {
        let c = demo_catalog();
        let t = run(
            "SELECT station, COUNT(*) AS c FROM files GROUP BY station HAVING COUNT(*) > 1",
            &c,
        );
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("HGN".into()));
    }
}
