//! Plan execution: column-at-a-time operators with full materialization.
//!
//! Every operator consumes whole tables and produces a whole table — the
//! execution model of MonetDB, the paper's host system. Full
//! materialization is what makes *intermediate result recycling* (the
//! paper's lazy-loading cache, §3.3) a natural fit: any intermediate is a
//! complete table that can be cached and reused.

use crate::error::{QueryError, Result};
use crate::expr::{eval_expr, eval_predicate_mask, infer_type, AggFunc, Expr};
use crate::plan::LogicalPlan;
use lazyetl_store::{Catalog, Column, DataType, Field, GroupKey, Schema, Table, Value};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Serves external tables when the executor reaches an [`LogicalPlan::ExternalScan`]
/// that no runtime rewrite replaced.
///
/// The lazy warehouse implements this with a *full* extraction — the
/// paper's §3.1 worst case ("the required subset … is the entire
/// repository") — because the lazy rewriter normally intercepts the scan
/// first and injects only the needed subset.
pub trait ExternalTableProvider {
    /// Materialize the entire external table.
    fn full_scan(&self, name: &str) -> Result<Arc<Table>>;
}

/// Execution context: the catalog plus an optional external-table provider.
pub struct ExecContext<'a> {
    /// Catalog with resident tables.
    pub catalog: &'a Catalog,
    /// Provider for external scans (lazy ETL), if any.
    pub external: Option<&'a dyn ExternalTableProvider>,
}

impl<'a> ExecContext<'a> {
    /// Context over a catalog with no external tables.
    pub fn new(catalog: &'a Catalog) -> ExecContext<'a> {
        ExecContext {
            catalog,
            external: None,
        }
    }
}

/// Execute a logical plan to a materialized table.
pub fn execute(plan: &LogicalPlan, ctx: &ExecContext<'_>) -> Result<Arc<Table>> {
    match plan {
        LogicalPlan::TableScan { table, .. } => ctx
            .catalog
            .table_arc(table)
            .ok_or_else(|| QueryError::Execution(format!("table {table:?} disappeared"))),
        LogicalPlan::ExternalScan { name, .. } => match ctx.external {
            Some(p) => p.full_scan(name),
            None => Err(QueryError::Execution(format!(
                "external table {name:?} reached the executor without a provider \
                 (lazy rewriter not engaged)"
            ))),
        },
        LogicalPlan::InlineData { table, .. } => Ok(table.clone()),
        LogicalPlan::OneRow => {
            let schema = Schema::new(vec![Field::new("__onerow", DataType::Bool)])
                .map_err(QueryError::Store)?;
            let mut t = Table::empty(schema);
            t.append_row(vec![Value::Bool(true)])
                .map_err(QueryError::Store)?;
            Ok(Arc::new(t))
        }
        LogicalPlan::Filter { input, predicate } => {
            let table = execute(input, ctx)?;
            let mask = eval_predicate_mask(predicate, &table)?;
            Ok(Arc::new(table.filter(&mask).map_err(QueryError::Store)?))
        }
        LogicalPlan::Project { input, exprs } => {
            let table = execute(input, ctx)?;
            let mut fields = Vec::with_capacity(exprs.len());
            let mut columns = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                let col = eval_expr(e, &table)?;
                fields.push(Field::nullable(name, col.data_type()));
                columns.push(col);
            }
            let schema = Schema::new(fields).map_err(QueryError::Store)?;
            Ok(Arc::new(
                Table::new(schema, columns).map_err(QueryError::Store)?,
            ))
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => execute_aggregate(input, group, aggregates, ctx),
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => execute_join(left, right, on, right_label, ctx),
        LogicalPlan::Sort { input, keys } => {
            let table = execute(input, ctx)?;
            let indices = sort_indices(&table, keys)?;
            Ok(Arc::new(table.take(&indices).map_err(QueryError::Store)?))
        }
        LogicalPlan::Limit { input, n } => {
            let table = execute(input, ctx)?;
            let keep = (*n as usize).min(table.num_rows());
            let indices: Vec<usize> = (0..keep).collect();
            Ok(Arc::new(table.take(&indices).map_err(QueryError::Store)?))
        }
        LogicalPlan::Distinct { input } => {
            let table = execute(input, ctx)?;
            let mut seen: HashSet<Vec<GroupKey>> = HashSet::new();
            let mut keep = Vec::new();
            for row in 0..table.num_rows() {
                let key: Vec<GroupKey> = table
                    .columns
                    .iter()
                    .map(|c| c.get(row).map(|v| v.group_key()))
                    .collect::<lazyetl_store::Result<_>>()
                    .map_err(QueryError::Store)?;
                if seen.insert(key) {
                    keep.push(row);
                }
            }
            Ok(Arc::new(table.take(&keep).map_err(QueryError::Store)?))
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Accumulator {
    Count { n: i64 },
    SumInt { sum: i64, any: bool },
    SumFloat { sum: f64, any: bool },
    Avg { sum: f64, n: i64 },
    Min { best: Option<Value> },
    Max { best: Option<Value> },
}

impl Accumulator {
    fn new(func: AggFunc, arg_type: Option<DataType>) -> Accumulator {
        match func {
            AggFunc::Count => Accumulator::Count { n: 0 },
            AggFunc::Sum => match arg_type {
                Some(DataType::Float64) => Accumulator::SumFloat {
                    sum: 0.0,
                    any: false,
                },
                _ => Accumulator::SumInt { sum: 0, any: false },
            },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Accumulator::Min { best: None },
            AggFunc::Max => Accumulator::Max { best: None },
        }
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            Accumulator::Count { n } => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Accumulator::SumInt { sum, any } => {
                if let Some(x) = v.as_i64() {
                    *sum = sum
                        .checked_add(x)
                        .ok_or_else(|| QueryError::Execution("SUM overflow".into()))?;
                    *any = true;
                }
            }
            Accumulator::SumFloat { sum, any } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *any = true;
                }
            }
            Accumulator::Avg { sum, n } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *n += 1;
                }
            }
            Accumulator::Min { best } => {
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Less),
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
            Accumulator::Max { best } => {
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Greater),
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            Accumulator::Count { n } => Value::Int64(*n),
            Accumulator::SumInt { sum, any } => {
                if *any {
                    Value::Int64(*sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::SumFloat { sum, any } => {
                if *any {
                    Value::Float64(*sum)
                } else {
                    Value::Null
                }
            }
            Accumulator::Avg { sum, n } => {
                if *n > 0 {
                    Value::Float64(*sum / *n as f64)
                } else {
                    Value::Null
                }
            }
            Accumulator::Min { best } | Accumulator::Max { best } => {
                best.clone().unwrap_or(Value::Null)
            }
        }
    }
}

struct GroupState {
    group_values: Vec<Value>,
    accs: Vec<Accumulator>,
    /// Per-aggregate seen-set for DISTINCT aggregates.
    distinct_seen: Vec<Option<HashSet<GroupKey>>>,
}

fn execute_aggregate(
    input: &LogicalPlan,
    group: &[(Expr, String)],
    aggregates: &[(Expr, String)],
    ctx: &ExecContext<'_>,
) -> Result<Arc<Table>> {
    let table = execute(input, ctx)?;
    let in_schema = &table.schema;

    // Decompose aggregate expressions.
    struct AggSpec {
        func: AggFunc,
        arg: Option<Expr>,
        distinct: bool,
        arg_type: Option<DataType>,
    }
    let specs: Vec<AggSpec> = aggregates
        .iter()
        .map(|(e, _)| match e {
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                let arg_type = match arg {
                    Some(a) => Some(infer_type(a, in_schema)?),
                    None => None,
                };
                Ok(AggSpec {
                    func: *func,
                    arg: arg.as_deref().cloned(),
                    distinct: *distinct,
                    arg_type,
                })
            }
            other => Err(QueryError::Execution(format!(
                "non-aggregate expression {other} in aggregate node"
            ))),
        })
        .collect::<Result<_>>()?;

    // Column-at-a-time: evaluate group keys and aggregate arguments as
    // whole columns once, then fold rows over the materialized columns.
    let group_cols: Vec<Column> = group
        .iter()
        .map(|(ge, _)| eval_expr(ge, &table))
        .collect::<Result<_>>()?;
    let arg_cols: Vec<Option<Column>> = specs
        .iter()
        .map(|s| s.arg.as_ref().map(|a| eval_expr(a, &table)).transpose())
        .collect::<Result<_>>()?;

    // Assign each row to a group id. Specialized keying paths avoid
    // per-row Value boxing for the common single-column cases.
    let n_rows = table.num_rows();
    let mut states: Vec<GroupState> = Vec::new();
    let mut group_of_row: Vec<u32> = Vec::with_capacity(n_rows);
    let new_state = |gvals: Vec<Value>| GroupState {
        group_values: gvals,
        accs: specs
            .iter()
            .map(|s| Accumulator::new(s.func, s.arg_type))
            .collect(),
        distinct_seen: specs
            .iter()
            .map(|s| {
                if s.distinct {
                    Some(HashSet::new())
                } else {
                    None
                }
            })
            .collect(),
    };

    enum Keying<'a> {
        Global,
        Utf8(&'a [String], &'a Column),
        Int(Vec<i64>, &'a Column),
        Generic,
    }
    let keying = if group.is_empty() {
        Keying::Global
    } else if group.len() == 1 {
        use lazyetl_store::ColumnData as CD;
        match group_cols[0].data() {
            CD::Utf8(v) => Keying::Utf8(v, &group_cols[0]),
            CD::Int64(v) | CD::Timestamp(v) => Keying::Int(v.clone(), &group_cols[0]),
            CD::Int32(v) => Keying::Int(v.iter().map(|&x| x as i64).collect(), &group_cols[0]),
            _ => Keying::Generic,
        }
    } else {
        Keying::Generic
    };
    match keying {
        Keying::Global => {
            states.push(new_state(Vec::new()));
            group_of_row.resize(n_rows, 0);
        }
        Keying::Utf8(strings, col) => {
            let mut map: HashMap<&str, u32> = HashMap::new();
            let mut null_group: Option<u32> = None;
            #[allow(clippy::needless_range_loop)] // strings and col indexed in lockstep
            for row in 0..n_rows {
                let gid = if col.is_null(row) {
                    *null_group.get_or_insert_with(|| {
                        states.push(new_state(vec![Value::Null]));
                        (states.len() - 1) as u32
                    })
                } else {
                    match map.entry(strings[row].as_str()) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            states.push(new_state(vec![Value::Utf8(strings[row].clone())]));
                            *e.insert((states.len() - 1) as u32)
                        }
                    }
                };
                group_of_row.push(gid);
            }
        }
        Keying::Int(ints, col) => {
            let dt = col.data_type();
            let mut map: HashMap<i64, u32> = HashMap::new();
            let mut null_group: Option<u32> = None;
            #[allow(clippy::needless_range_loop)] // ints and col indexed in lockstep
            for row in 0..n_rows {
                let gid = if col.is_null(row) {
                    *null_group.get_or_insert_with(|| {
                        states.push(new_state(vec![Value::Null]));
                        (states.len() - 1) as u32
                    })
                } else {
                    match map.entry(ints[row]) {
                        Entry::Occupied(e) => *e.get(),
                        Entry::Vacant(e) => {
                            let v = match dt {
                                DataType::Timestamp => Value::Timestamp(ints[row]),
                                DataType::Int32 => Value::Int32(ints[row] as i32),
                                _ => Value::Int64(ints[row]),
                            };
                            states.push(new_state(vec![v]));
                            *e.insert((states.len() - 1) as u32)
                        }
                    }
                };
                group_of_row.push(gid);
            }
        }
        Keying::Generic => {
            let mut map: HashMap<Vec<GroupKey>, u32> = HashMap::new();
            for row in 0..n_rows {
                let mut key = Vec::with_capacity(group.len());
                let mut gvals = Vec::with_capacity(group.len());
                for col in &group_cols {
                    let v = col.get(row).map_err(QueryError::Store)?;
                    key.push(v.group_key());
                    gvals.push(v);
                }
                let gid = match map.entry(key) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        states.push(new_state(gvals));
                        *e.insert((states.len() - 1) as u32)
                    }
                };
                group_of_row.push(gid);
            }
        }
    }

    // Accumulate.
    for row in 0..n_rows {
        let state = &mut states[group_of_row[row] as usize];
        for (i, arg_col) in arg_cols.iter().enumerate() {
            let v = match arg_col {
                Some(col) => col.get(row).map_err(QueryError::Store)?,
                None => Value::Int64(1), // COUNT(*) counts every row
            };
            if let Some(seen) = &mut state.distinct_seen[i] {
                if v.is_null() || !seen.insert(v.group_key()) {
                    continue;
                }
            }
            state.accs[i].update(&v)?;
        }
    }

    // Global aggregate over empty input still yields one row (created
    // above by Keying::Global even when n_rows == 0).

    // Build output table.
    let mut fields = Vec::with_capacity(group.len() + aggregates.len());
    for (e, name) in group {
        fields.push(Field::nullable(name, infer_type(e, in_schema)?));
    }
    for (e, name) in aggregates {
        fields.push(Field::nullable(name, infer_type(e, in_schema)?));
    }
    let schema = Schema::new(fields).map_err(QueryError::Store)?;
    let mut out = Table::empty(schema);
    for state in &states {
        let mut row = state.group_values.clone();
        row.extend(state.accs.iter().map(|a| a.finish()));
        out.append_row(row).map_err(QueryError::Store)?;
    }
    Ok(Arc::new(out))
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

fn execute_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    on: &[(Expr, Expr)],
    right_label: &str,
    ctx: &ExecContext<'_>,
) -> Result<Arc<Table>> {
    let lt = execute(left, ctx)?;
    let rt = execute(right, ctx)?;
    // Column-at-a-time: materialize the key columns of both sides once.
    let right_keys: Vec<Column> = on
        .iter()
        .map(|(_, re)| eval_expr(re, &rt))
        .collect::<Result<_>>()?;
    let left_keys: Vec<Column> = on
        .iter()
        .map(|(le, _)| eval_expr(le, &lt))
        .collect::<Result<_>>()?;

    // Build on the smaller input, probe the larger; emitted index pairs
    // are always (left row, right row) so the output schema is unaffected.
    let build_is_left = lt.num_rows() < rt.num_rows();
    let (bt, bkeys, pt, pkeys) = if build_is_left {
        (&lt, &left_keys, &rt, &right_keys)
    } else {
        (&rt, &right_keys, &lt, &left_keys)
    };
    let (mut probe_idx, mut build_idx) = (Vec::new(), Vec::new());
    match (
        int_key_rows(bkeys, bt.num_rows()),
        int_key_rows(pkeys, pt.num_rows()),
    ) {
        // All keys integer-typed (the file_id/seq_no joins of the
        // warehouse schema): hash on packed native integers.
        (Some(bk), Some(pk)) => {
            let mut build: HashMap<u128, Vec<usize>> = HashMap::with_capacity(bt.num_rows());
            for (row, key) in bk.iter().enumerate() {
                if let Some(k) = key {
                    build.entry(*k).or_default().push(row);
                }
            }
            for (row, key) in pk.iter().enumerate() {
                if let Some(k) = key {
                    if let Some(matches) = build.get(k) {
                        for &r in matches {
                            probe_idx.push(row);
                            build_idx.push(r);
                        }
                    }
                }
            }
        }
        // Generic path: normalized GroupKey vectors.
        _ => {
            let mut build: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
            'rows: for row in 0..bt.num_rows() {
                let mut key = Vec::with_capacity(on.len());
                for col in bkeys {
                    let v = col.get(row).map_err(QueryError::Store)?;
                    if v.is_null() {
                        continue 'rows; // NULL never joins
                    }
                    key.push(v.group_key());
                }
                build.entry(key).or_default().push(row);
            }
            let mut key = Vec::with_capacity(on.len());
            'probe: for row in 0..pt.num_rows() {
                key.clear();
                for col in pkeys {
                    let v = col.get(row).map_err(QueryError::Store)?;
                    if v.is_null() {
                        continue 'probe;
                    }
                    key.push(v.group_key());
                }
                if let Some(matches) = build.get(&key) {
                    for &r in matches {
                        probe_idx.push(row);
                        build_idx.push(r);
                    }
                }
            }
        }
    }
    let (left_idx, right_idx) = if build_is_left {
        (build_idx, probe_idx)
    } else {
        (probe_idx, build_idx)
    };
    let lout = lt.take(&left_idx).map_err(QueryError::Store)?;
    let rout = rt.take(&right_idx).map_err(QueryError::Store)?;
    let schema = lout
        .schema
        .join(&rout.schema, right_label)
        .map_err(QueryError::Store)?;
    let mut columns = lout.columns;
    columns.extend(rout.columns);
    Ok(Arc::new(
        Table::new(schema, columns).map_err(QueryError::Store)?,
    ))
}

/// Pack up to two integer-typed join key columns into one `u128` per row
/// (`None` = a NULL key, which never joins). Returns `None` when any key
/// column is not integer-typed or more than two keys are present.
fn int_key_rows(keys: &[Column], n_rows: usize) -> Option<Vec<Option<u128>>> {
    use lazyetl_store::ColumnData as CD;
    if keys.is_empty() || keys.len() > 2 {
        return None;
    }
    let as_i64 = |col: &Column| -> Option<Vec<i64>> {
        match col.data() {
            CD::Int64(v) | CD::Timestamp(v) => Some(v.clone()),
            CD::Int32(v) => Some(v.iter().map(|&x| x as i64).collect()),
            _ => None,
        }
    };
    let first = as_i64(&keys[0])?;
    let second = match keys.get(1) {
        Some(col) => Some(as_i64(col)?),
        None => None,
    };
    let mut out = Vec::with_capacity(n_rows);
    for row in 0..n_rows {
        let null = keys.iter().any(|k| k.is_null(row));
        if null {
            out.push(None);
            continue;
        }
        let hi = first[row] as u64 as u128;
        let lo = second.as_ref().map_or(0, |s| s[row] as u64 as u128);
        out.push(Some(hi << 64 | lo));
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

fn sort_indices(table: &Table, keys: &[(Expr, bool)]) -> Result<Vec<usize>> {
    let mut key_cols: Vec<Column> = Vec::with_capacity(keys.len());
    for (e, _) in keys {
        key_cols.push(eval_expr(e, table)?);
    }
    let mut indices: Vec<usize> = (0..table.num_rows()).collect();
    let mut fail: Option<QueryError> = None;
    indices.sort_by(|&a, &b| {
        for ((_, desc), col) in keys.iter().zip(&key_cols) {
            let va = col.get(a).unwrap_or(Value::Null);
            let vb = col.get(b).unwrap_or(Value::Null);
            // NULLs sort last regardless of direction.
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => match va.sql_cmp(&vb) {
                    Some(o) => {
                        if *desc {
                            o.reverse()
                        } else {
                            o
                        }
                    }
                    None => {
                        if fail.is_none() {
                            fail = Some(QueryError::Execution(format!(
                                "cannot order {va} against {vb}"
                            )));
                        }
                        std::cmp::Ordering::Equal
                    }
                },
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    match fail {
        Some(e) => Err(e),
        None => Ok(indices),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::planner::{plan_sql, TableSource};

    fn demo_catalog() -> Catalog {
        let mut c = Catalog::new();
        let files_schema = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("uri", DataType::Utf8),
            Field::new("station", DataType::Utf8),
            Field::new("network", DataType::Utf8),
            Field::new("channel", DataType::Utf8),
        ])
        .unwrap();
        let mut files = Table::empty(files_schema);
        let rows = [
            (0i64, "a.mseed", "ISK", "KO", "BHE"),
            (1, "b.mseed", "HGN", "NL", "BHZ"),
            (2, "c.mseed", "WIT", "NL", "BHZ"),
            (3, "d.mseed", "HGN", "NL", "BHE"),
        ];
        for (id, uri, st, net, ch) in rows {
            files
                .append_row(vec![
                    Value::Int64(id),
                    Value::Utf8(uri.into()),
                    Value::Utf8(st.into()),
                    Value::Utf8(net.into()),
                    Value::Utf8(ch.into()),
                ])
                .unwrap();
        }
        let samples_schema = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("sample_time", DataType::Timestamp),
            Field::new("sample_value", DataType::Float64),
        ])
        .unwrap();
        let mut samples = Table::empty(samples_schema);
        for i in 0..40i64 {
            samples
                .append_row(vec![
                    Value::Int64(i % 4),
                    Value::Timestamp(1_000_000 * i),
                    Value::Float64((i % 4) as f64 * 10.0 + (i / 4) as f64),
                ])
                .unwrap();
        }
        c.create_table("files", files).unwrap();
        c.create_table("samples", samples).unwrap();
        c.create_view(
            "fileview",
            "SELECT * FROM files f JOIN samples s ON f.file_id = s.file_id",
        )
        .unwrap();
        c
    }

    fn run(sql: &str, c: &Catalog) -> Arc<Table> {
        let src = TableSource::new(c);
        let plan = plan_sql(sql, &src).unwrap();
        let plan = optimize(&plan).unwrap();
        execute(&plan, &ExecContext::new(c)).unwrap()
    }

    #[test]
    fn scan_filter_project() {
        let c = demo_catalog();
        let t = run(
            "SELECT uri FROM files WHERE network = 'NL' AND channel = 'BHZ'",
            &c,
        );
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("b.mseed".into()));
    }

    #[test]
    fn aggregate_group_by() {
        let c = demo_catalog();
        let t = run(
            "SELECT station, COUNT(*) AS cnt FROM files GROUP BY station ORDER BY cnt DESC, station",
            &c,
        );
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("HGN".into()));
        assert_eq!(t.row(0).unwrap()[1], Value::Int64(2));
    }

    #[test]
    fn global_aggregates_over_empty_input() {
        let c = demo_catalog();
        let t = run(
            "SELECT COUNT(*), SUM(file_id), AVG(file_id), MIN(uri) FROM files WHERE station = 'NOPE'",
            &c,
        );
        assert_eq!(t.num_rows(), 1);
        let row = t.row(0).unwrap();
        assert_eq!(row[0], Value::Int64(0));
        assert!(row[1].is_null());
        assert!(row[2].is_null());
        assert!(row[3].is_null());
    }

    #[test]
    fn join_via_view() {
        let c = demo_catalog();
        let t = run(
            "SELECT f.station, AVG(s.sample_value) FROM fileview WHERE f.network = 'NL' GROUP BY f.station ORDER BY f.station",
            &c,
        );
        assert_eq!(t.num_rows(), 2);
        // station HGN covers file_ids 1 and 3.
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("HGN".into()));
    }

    #[test]
    fn distinct_and_limit() {
        let c = demo_catalog();
        let t = run("SELECT DISTINCT network FROM files ORDER BY network", &c);
        assert_eq!(t.num_rows(), 2);
        let t = run("SELECT uri FROM files ORDER BY uri LIMIT 2", &c);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(1).unwrap()[0], Value::Utf8("b.mseed".into()));
        let t = run("SELECT uri FROM files LIMIT 0", &c);
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn count_distinct() {
        let c = demo_catalog();
        let t = run("SELECT COUNT(DISTINCT station) FROM files", &c);
        assert_eq!(t.row(0).unwrap()[0], Value::Int64(3));
    }

    #[test]
    fn select_without_from() {
        let c = demo_catalog();
        let t = run("SELECT 1 + 1 AS two, 'x' AS tag", &c);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.row(0).unwrap()[0], Value::Int64(2));
        assert_eq!(t.row(0).unwrap()[1], Value::Utf8("x".into()));
    }

    #[test]
    fn order_by_nulls_last() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::nullable("v", DataType::Int32)]).unwrap();
        let mut t = Table::empty(schema);
        for v in [Value::Int32(2), Value::Null, Value::Int32(1)] {
            t.append_row(vec![v]).unwrap();
        }
        c.create_table("t", t).unwrap();
        let asc = run("SELECT v FROM t ORDER BY v", &c);
        assert_eq!(asc.row(0).unwrap()[0], Value::Int32(1));
        assert!(asc.row(2).unwrap()[0].is_null());
        let desc = run("SELECT v FROM t ORDER BY v DESC", &c);
        assert_eq!(desc.row(0).unwrap()[0], Value::Int32(2));
        assert!(desc.row(2).unwrap()[0].is_null());
    }

    #[test]
    fn external_scan_without_provider_fails() {
        let c = demo_catalog();
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]).unwrap();
        let src = TableSource::new(&c).with_external("ext", schema);
        let plan = plan_sql("SELECT x FROM ext", &src).unwrap();
        let res = execute(&plan, &ExecContext::new(&c));
        assert!(matches!(res, Err(QueryError::Execution(_))));
    }

    #[test]
    fn join_null_keys_do_not_match() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::nullable("k", DataType::Int32)]).unwrap();
        let mut a = Table::empty(schema.clone());
        a.append_row(vec![Value::Int32(1)]).unwrap();
        a.append_row(vec![Value::Null]).unwrap();
        let mut b = Table::empty(schema);
        b.append_row(vec![Value::Null]).unwrap();
        b.append_row(vec![Value::Int32(1)]).unwrap();
        c.create_table("a", a).unwrap();
        c.create_table("b", b).unwrap();
        let t = run("SELECT * FROM a JOIN b ON a.k = b.k", &c);
        assert_eq!(t.num_rows(), 1, "only the non-null key pair joins");
    }

    #[test]
    fn string_key_join_uses_generic_path() {
        // Utf8 keys cannot take the packed-integer fast path; results must
        // still match expectations.
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("v", DataType::Int64),
        ])
        .unwrap();
        let mut a = Table::empty(schema.clone());
        let mut b = Table::empty(schema);
        for (n, v) in [("x", 1i64), ("y", 2), ("z", 3)] {
            a.append_row(vec![Value::Utf8(n.into()), Value::Int64(v)])
                .unwrap();
        }
        for (n, v) in [("y", 20i64), ("z", 30), ("w", 40)] {
            b.append_row(vec![Value::Utf8(n.into()), Value::Int64(v)])
                .unwrap();
        }
        c.create_table("a", a).unwrap();
        c.create_table("b", b).unwrap();
        let t = run(
            "SELECT a.name, a.v, b.v FROM a JOIN b ON a.name = b.name ORDER BY a.name",
            &c,
        );
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("y".into()));
        assert_eq!(t.row(0).unwrap()[2], Value::Int64(20));
        assert_eq!(t.row(1).unwrap()[0], Value::Utf8("z".into()));
    }

    #[test]
    fn three_key_join_falls_back_to_generic() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Field::new("k1", DataType::Int64),
            Field::new("k2", DataType::Int64),
            Field::new("k3", DataType::Int64),
        ])
        .unwrap();
        let mut a = Table::empty(schema.clone());
        let mut b = Table::empty(schema);
        for i in 0..6i64 {
            a.append_row(vec![
                Value::Int64(i % 2),
                Value::Int64(i % 3),
                Value::Int64(i),
            ])
            .unwrap();
            b.append_row(vec![
                Value::Int64(i % 2),
                Value::Int64(i % 3),
                Value::Int64(i),
            ])
            .unwrap();
        }
        c.create_table("a", a).unwrap();
        c.create_table("b", b).unwrap();
        let t = run(
            "SELECT COUNT(*) FROM a JOIN b ON a.k1 = b.k1 AND a.k2 = b.k2 AND a.k3 = b.k3",
            &c,
        );
        // Exact triple matches only: 6 rows.
        assert_eq!(t.row(0).unwrap()[0], Value::Int64(6));
    }

    #[test]
    fn having_filters_groups() {
        let c = demo_catalog();
        let t = run(
            "SELECT station, COUNT(*) AS c FROM files GROUP BY station HAVING COUNT(*) > 1",
            &c,
        );
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.row(0).unwrap()[0], Value::Utf8("HGN".into()));
    }
}
