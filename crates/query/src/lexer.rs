//! SQL lexer: hand-rolled tokenizer for the supported SQL subset.

use crate::error::{QueryError, Result};

/// One lexical token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier or keyword (stored lower-cased; original in payload).
    Ident(String),
    /// `'...'` string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// A punctuation or operator symbol.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Operator and punctuation symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `;`
    Semicolon,
}

/// Tokenize `sql` into a vector ending with [`TokenKind::Eof`].
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let err = |message: String, offset: usize| QueryError::Parse { message, offset };
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err("unterminated string literal".into(), start));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    // Strings are treated as raw bytes of UTF-8 input.
                    let ch_len = utf8_len(bytes[i]);
                    s.push_str(
                        std::str::from_utf8(&bytes[i..i + ch_len])
                            .map_err(|_| err("invalid UTF-8 in string".into(), i))?,
                    );
                    i += ch_len;
                }
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &sql[start..i];
                let kind = if is_float {
                    TokenKind::FloatLit(
                        text.parse()
                            .map_err(|_| err(format!("bad float literal {text:?}"), start))?,
                    )
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::IntLit(v),
                        Err(_) => TokenKind::FloatLit(
                            text.parse()
                                .map_err(|_| err(format!("bad numeric literal {text:?}"), start))?,
                        ),
                    }
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'"' => {
                let start = i;
                let text = if c == b'"' {
                    // delimited identifier
                    i += 1;
                    let id_start = i;
                    while i < bytes.len() && bytes[i] != b'"' {
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return Err(err("unterminated quoted identifier".into(), start));
                    }
                    let t = sql[id_start..i].to_string();
                    i += 1;
                    t
                } else {
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    sql[start..i].to_ascii_lowercase()
                };
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    offset: start,
                });
            }
            _ => {
                let start = i;
                let (sym, len) = match c {
                    b'(' => (Symbol::LParen, 1),
                    b')' => (Symbol::RParen, 1),
                    b',' => (Symbol::Comma, 1),
                    b'.' => (Symbol::Dot, 1),
                    b'*' => (Symbol::Star, 1),
                    b'+' => (Symbol::Plus, 1),
                    b'-' => (Symbol::Minus, 1),
                    b'/' => (Symbol::Slash, 1),
                    b'%' => (Symbol::Percent, 1),
                    b';' => (Symbol::Semicolon, 1),
                    b'=' => (Symbol::Eq, 1),
                    b'!' if bytes.get(i + 1) == Some(&b'=') => (Symbol::NotEq, 2),
                    b'<' => match bytes.get(i + 1) {
                        Some(b'=') => (Symbol::LtEq, 2),
                        Some(b'>') => (Symbol::NotEq, 2),
                        _ => (Symbol::Lt, 1),
                    },
                    b'>' => match bytes.get(i + 1) {
                        Some(b'=') => (Symbol::GtEq, 2),
                        _ => (Symbol::Gt, 1),
                    },
                    other => {
                        return Err(err(
                            format!("unexpected character {:?}", other as char),
                            start,
                        ))
                    }
                };
                tokens.push(Token {
                    kind: TokenKind::Symbol(sym),
                    offset: start,
                });
                i += len;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: sql.len(),
    });
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn figure1_query_tokens() {
        let toks = kinds("SELECT AVG(D.sample_value) FROM mseed.dataview WHERE F.station = 'ISK'");
        assert!(toks.contains(&TokenKind::Ident("select".into())));
        assert!(toks.contains(&TokenKind::Ident("avg".into())));
        assert!(toks.contains(&TokenKind::StringLit("ISK".into())));
        assert!(toks.contains(&TokenKind::Symbol(Symbol::Dot)));
        assert_eq!(toks.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 10.25e-2 9223372036854775807"),
            vec![
                TokenKind::IntLit(1),
                TokenKind::FloatLit(2.5),
                TokenKind::FloatLit(1000.0),
                TokenKind::FloatLit(0.1025),
                TokenKind::IntLit(i64::MAX),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<= >= <> != < > ="),
            vec![
                TokenKind::Symbol(Symbol::LtEq),
                TokenKind::Symbol(Symbol::GtEq),
                TokenKind::Symbol(Symbol::NotEq),
                TokenKind::Symbol(Symbol::NotEq),
                TokenKind::Symbol(Symbol::Lt),
                TokenKind::Symbol(Symbol::Gt),
                TokenKind::Symbol(Symbol::Eq),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes_and_comments() {
        assert_eq!(
            kinds("'it''s' -- trailing comment\n42"),
            vec![
                TokenKind::StringLit("it's".into()),
                TokenKind::IntLit(42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifier_preserves_case() {
        assert_eq!(
            kinds("\"MixedCase\""),
            vec![TokenKind::Ident("MixedCase".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn errors_carry_offset() {
        let e = tokenize("SELECT 'unterminated").unwrap_err();
        match e {
            QueryError::Parse { offset, .. } => assert_eq!(offset, 7),
            other => panic!("unexpected {other:?}"),
        }
        assert!(tokenize("SELECT @").is_err());
    }
}
