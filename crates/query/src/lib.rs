//! Query substrate for the Lazy ETL reproduction.
//!
//! A self-contained relational query engine in the style the paper's host
//! system (MonetDB) exposes to its SQL front end:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — a SQL subset large enough to run
//!   the paper's Figure-1 queries verbatim (SELECT with joins, WHERE,
//!   GROUP BY, HAVING, ORDER BY, LIMIT, DISTINCT, aggregates);
//! * [`expr`] — expression trees, SQL three-valued evaluation semantics;
//! * [`plan`] — logical plans with structural helpers for *plan
//!   introspection and rewriting*, the mechanism §3.1 of the paper builds
//!   lazy extraction on;
//! * [`planner`] — AST→plan translation including **view expansion** (the
//!   lazy-transformation vehicle of §3.2);
//! * [`optimizer`] — timestamp-literal coercion, constant folding and
//!   predicate pushdown (the compile-time plan reorganization that puts
//!   metadata predicates first), plus cost-based join reordering when
//!   statistics are available;
//! * [`cost`] — cardinality/cost estimation over the store's persisted
//!   column statistics (histograms, distinct sketches, per-source
//!   access-cost multipliers);
//! * [`exec`] — column-at-a-time execution with full materialization
//!   (MonetDB's model, which makes intermediate-result recycling natural),
//!   running on the store's typed kernels with a scalar-interpreter
//!   fallback, plus zone-map pruning of scans;
//! * [`prune`] — the interval logic behind zone-map and record-level
//!   pruning (shared with the core rewriter);
//! * [`metrics`] — executor counters (rows scanned/pruned, vectorized
//!   batches) surfaced through warehouse stats.

#![warn(missing_docs)]

pub mod ast;
pub mod cost;
pub mod error;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod maintain;
pub mod metrics;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod prune;
pub mod time;

pub use ast::{SelectItem, SelectStmt, Statement};
pub use cost::{CostModel, TableCost};
pub use error::{QueryError, Result};
pub use exec::{execute, ExecContext, ExternalTableProvider};
pub use expr::{AggFunc, BinaryOp, Expr, UnaryOp};
pub use maintain::{classify, MaintKind, MaintPlan, Maintainability, MergeSpec};
pub use metrics::{ExecCounters, ExecMetrics};
pub use optimizer::{optimize, optimize_with_cost, predicates_above};
pub use parser::{parse, parse_select};
pub use plan::LogicalPlan;
pub use planner::{plan_select, plan_sql, Resolved, TableSource};
pub use prune::{predicate_excludes, TimeInterval};
