//! Logical query plans.
//!
//! Plans are ordinary immutable trees. The lazy rewriter in the core crate
//! inspects and rewrites them (the paper's "plan introspection … and plan
//! modification at run time"), so the type exposes structural helpers
//! ([`LogicalPlan::children`], [`LogicalPlan::transform_up`]) and a stable
//! textual rendering used by `EXPLAIN` and the demo (items 4 and 6 of the
//! demonstration scenario).

use crate::error::{QueryError, Result};
use crate::expr::{infer_type, Expr};
use lazyetl_store::{Field, Schema, Table};
use std::sync::Arc;

/// A node of a logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a catalog-resident table.
    TableScan {
        /// Catalog table name.
        table: String,
        /// Output schema (resolved at plan time).
        schema: Schema,
    },
    /// Scan of an external (not-yet-loaded) table — the hook Lazy ETL
    /// replaces at run time with extracted data.
    ExternalScan {
        /// Logical name (e.g. `mseed.data`).
        name: String,
        /// Output schema.
        schema: Schema,
    },
    /// Data injected by a runtime plan rewrite (cache hits / fresh
    /// extraction results).
    InlineData {
        /// Display label, e.g. `lazy-extract(mseed.data, 3 files)`.
        label: String,
        /// The materialized rows.
        table: Arc<Table>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Column projection / computation.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// (expression, output name) pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by (expression, output name) pairs.
        group: Vec<(Expr, String)>,
        /// Aggregate (expression, output name) pairs; each expression is an
        /// [`Expr::Aggregate`].
        aggregates: Vec<(Expr, String)>,
    },
    /// Inner equi-join.
    Join {
        /// Left input (probe side).
        left: Box<LogicalPlan>,
        /// Right input (build side).
        right: Box<LogicalPlan>,
        /// Equi-join key pairs (left expression, right expression).
        on: Vec<(Expr, Expr)>,
        /// Label used to qualify duplicate right-side column names.
        right_label: String,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// (key expression, descending) pairs.
        keys: Vec<(Expr, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        n: u64,
    },
    /// Duplicate elimination over all columns.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// A single empty row (enables `SELECT 1+1`).
    OneRow,
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> Result<Schema> {
        match self {
            LogicalPlan::TableScan { schema, .. } | LogicalPlan::ExternalScan { schema, .. } => {
                Ok(schema.clone())
            }
            LogicalPlan::InlineData { table, .. } => Ok(table.schema.clone()),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema()?;
                let fields = exprs
                    .iter()
                    .map(|(e, name)| Ok(Field::nullable(name, infer_type(e, &in_schema)?)))
                    .collect::<Result<Vec<_>>>()?;
                Schema::new(fields).map_err(QueryError::Store)
            }
            LogicalPlan::Aggregate {
                input,
                group,
                aggregates,
            } => {
                let in_schema = input.schema()?;
                let mut fields = Vec::with_capacity(group.len() + aggregates.len());
                for (e, name) in group {
                    fields.push(Field::nullable(name, infer_type(e, &in_schema)?));
                }
                for (e, name) in aggregates {
                    fields.push(Field::nullable(name, infer_type(e, &in_schema)?));
                }
                Schema::new(fields).map_err(QueryError::Store)
            }
            LogicalPlan::Join {
                left,
                right,
                right_label,
                ..
            } => {
                let l = left.schema()?;
                let r = right.schema()?;
                l.join(&r, right_label).map_err(QueryError::Store)
            }
            LogicalPlan::OneRow => Ok(Schema::default()),
        }
    }

    /// Immediate child plans.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::TableScan { .. }
            | LogicalPlan::ExternalScan { .. }
            | LogicalPlan::InlineData { .. }
            | LogicalPlan::OneRow => Vec::new(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Rebuild this tree bottom-up, applying `f` to every node.
    pub fn transform_up(&self, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
        let rebuilt = match self {
            LogicalPlan::TableScan { .. }
            | LogicalPlan::ExternalScan { .. }
            | LogicalPlan::InlineData { .. }
            | LogicalPlan::OneRow => self.clone(),
            LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
                input: Box::new(input.transform_up(f)),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                input: Box::new(input.transform_up(f)),
                exprs: exprs.clone(),
            },
            LogicalPlan::Aggregate {
                input,
                group,
                aggregates,
            } => LogicalPlan::Aggregate {
                input: Box::new(input.transform_up(f)),
                group: group.clone(),
                aggregates: aggregates.clone(),
            },
            LogicalPlan::Join {
                left,
                right,
                on,
                right_label,
            } => LogicalPlan::Join {
                left: Box::new(left.transform_up(f)),
                right: Box::new(right.transform_up(f)),
                on: on.clone(),
                right_label: right_label.clone(),
            },
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                input: Box::new(input.transform_up(f)),
                keys: keys.clone(),
            },
            LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
                input: Box::new(input.transform_up(f)),
                n: *n,
            },
            LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
                input: Box::new(input.transform_up(f)),
            },
        };
        f(rebuilt)
    }

    /// True if any node in the tree satisfies the predicate.
    pub fn any_node(&self, pred: &mut impl FnMut(&LogicalPlan) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        self.children().iter().any(|c| c.any_node(pred))
    }

    /// Render the plan as an indented tree.
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_node(&mut out, 0);
        out
    }

    fn fmt_node(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let line = match self {
            LogicalPlan::TableScan { table, .. } => format!("TableScan: {table}"),
            LogicalPlan::ExternalScan { name, .. } => {
                format!("ExternalScan: {name} (actual data, not loaded)")
            }
            LogicalPlan::InlineData { label, table } => {
                format!("InlineData: {label} [{} rows]", table.num_rows())
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter: {predicate}"),
            LogicalPlan::Project { exprs, .. } => {
                let parts: Vec<String> = exprs
                    .iter()
                    .map(|(e, n)| {
                        if e.default_name() == *n {
                            e.to_string()
                        } else {
                            format!("{e} AS {n}")
                        }
                    })
                    .collect();
                format!("Project: {}", parts.join(", "))
            }
            LogicalPlan::Aggregate {
                group, aggregates, ..
            } => {
                let g: Vec<String> = group.iter().map(|(e, _)| e.to_string()).collect();
                let a: Vec<String> = aggregates.iter().map(|(e, _)| e.to_string()).collect();
                format!(
                    "Aggregate: groupBy=[{}], aggregates=[{}]",
                    g.join(", "),
                    a.join(", ")
                )
            }
            LogicalPlan::Join { on, .. } => {
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                format!("Join(inner): {}", conds.join(" AND "))
            }
            LogicalPlan::Sort { keys, .. } => {
                let parts: Vec<String> = keys
                    .iter()
                    .map(|(e, desc)| format!("{e} {}", if *desc { "DESC" } else { "ASC" }))
                    .collect();
                format!("Sort: {}", parts.join(", "))
            }
            LogicalPlan::Limit { n, .. } => format!("Limit: {n}"),
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::OneRow => "OneRow".to_string(),
        };
        out.push_str(&pad);
        out.push_str(&line);
        out.push('\n');
        for c in self.children() {
            c.fmt_node(out, indent + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::DataType;

    fn scan(name: &str, fields: &[(&str, DataType)]) -> LogicalPlan {
        LogicalPlan::TableScan {
            table: name.to_string(),
            schema: Schema::new(fields.iter().map(|(n, t)| Field::new(n, *t)).collect()).unwrap(),
        }
    }

    #[test]
    fn schema_through_project_and_filter() {
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan(
                    "t",
                    &[("a", DataType::Int64), ("b", DataType::Float64)],
                )),
                predicate: Expr::col("a").binary(
                    crate::expr::BinaryOp::Gt,
                    Expr::lit(lazyetl_store::Value::Int64(0)),
                ),
            }),
            exprs: vec![
                (Expr::col("b"), "b".to_string()),
                (
                    Expr::col("a").binary(
                        crate::expr::BinaryOp::Div,
                        Expr::lit(lazyetl_store::Value::Int64(2)),
                    ),
                    "half".to_string(),
                ),
            ],
        };
        let s = plan.schema().unwrap();
        assert_eq!(s.fields[0].data_type, DataType::Float64);
        assert_eq!(s.fields[1].name, "half");
        assert_eq!(s.fields[1].data_type, DataType::Float64);
    }

    #[test]
    fn join_schema_qualifies_duplicates() {
        let plan = LogicalPlan::Join {
            left: Box::new(scan("f", &[("file_id", DataType::Int64)])),
            right: Box::new(scan(
                "r",
                &[("file_id", DataType::Int64), ("seq", DataType::Int64)],
            )),
            on: vec![(Expr::col("file_id"), Expr::col("file_id"))],
            right_label: "r".to_string(),
        };
        let s = plan.schema().unwrap();
        let names: Vec<_> = s.fields.iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, vec!["file_id", "r.file_id", "seq"]);
    }

    #[test]
    fn display_is_indented() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan("t", &[("a", DataType::Int64)])),
                predicate: Expr::col("a").binary(
                    crate::expr::BinaryOp::Eq,
                    Expr::lit(lazyetl_store::Value::Int64(1)),
                ),
            }),
            n: 5,
        };
        let d = plan.display();
        assert!(d.starts_with("Limit: 5\n"));
        assert!(d.contains("\n  Filter:"));
        assert!(d.contains("\n    TableScan: t"));
    }

    #[test]
    fn transform_up_replaces_scans() {
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::ExternalScan {
                name: "d".to_string(),
                schema: Schema::default(),
            }),
            predicate: Expr::lit(lazyetl_store::Value::Bool(true)),
        };
        let rewritten = plan.transform_up(&mut |node| match node {
            LogicalPlan::ExternalScan { .. } => LogicalPlan::OneRow,
            other => other,
        });
        assert!(rewritten.any_node(&mut |n| matches!(n, LogicalPlan::OneRow)));
        assert!(!rewritten.any_node(&mut |n| matches!(n, LogicalPlan::ExternalScan { .. })));
    }
}
