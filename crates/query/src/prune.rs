//! Interval logic for scan pruning.
//!
//! Two consumers share this module:
//!
//! * the **executor** asks [`predicate_excludes`] whether a filter sitting
//!   directly on a table scan provably rejects every row of the table's
//!   zone map (`[min, max]` per column) — if so, the scan short-circuits
//!   to an empty result;
//! * the **core rewriter** uses [`TimeInterval`] to derive the closed
//!   sample-time window implied by a query's data-side predicates, then
//!   intersects it with each candidate record's `[start, end)` coverage
//!   (the paper's record-level pruning, §3.1).
//!
//! Everything here is *conservative*: a `false`/unconstrained answer is
//! always safe; `true`/a tightened bound is only produced when the
//! predicate provably cannot match. Pruning therefore never changes query
//! results, only the work done to produce them.

use crate::expr::{resolve_name, BinaryOp, Expr};
use crate::planner::split_conjunction;
use lazyetl_store::{ColumnStats, Value};
use std::cmp::Ordering;

/// A closed integer interval `[lo, hi]` built by intersecting predicate
/// bounds; `None` on a side means unconstrained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeInterval {
    /// Inclusive lower bound (µs for timestamps).
    pub lo: Option<i64>,
    /// Inclusive upper bound.
    pub hi: Option<i64>,
}

impl TimeInterval {
    /// The unconstrained interval.
    pub fn unconstrained() -> TimeInterval {
        TimeInterval::default()
    }

    /// Intersect with `v` as a lower bound (keeps the larger).
    pub fn tighten_lo(&mut self, v: i64) {
        self.lo = Some(self.lo.map_or(v, |c| c.max(v)));
    }

    /// Intersect with `v` as an upper bound (keeps the smaller).
    pub fn tighten_hi(&mut self, v: i64) {
        self.hi = Some(self.hi.map_or(v, |c| c.min(v)));
    }

    /// True when at least one side is bounded.
    pub fn is_constrained(&self) -> bool {
        self.lo.is_some() || self.hi.is_some()
    }

    /// Tighten from every conjunct of `pred` that compares the column
    /// whose unqualified name is `column` against an integer or timestamp
    /// literal. Handles both operand orders and non-negated `BETWEEN`;
    /// anything else leaves the interval untouched (conservative).
    pub fn tighten_from_predicate(&mut self, pred: &Expr, column: &str) {
        fn is_col(e: &Expr, column: &str) -> bool {
            matches!(e, Expr::Column(name) if name.rsplit('.').next() == Some(column))
        }
        fn int_lit(e: &Expr) -> Option<i64> {
            match e {
                Expr::Literal(Value::Timestamp(us)) => Some(*us),
                Expr::Literal(Value::Int64(us)) => Some(*us),
                Expr::Literal(Value::Int32(us)) => Some(*us as i64),
                _ => None,
            }
        }
        let mut conjuncts = Vec::new();
        split_conjunction(pred, &mut conjuncts);
        for c in conjuncts {
            match &c {
                Expr::Binary { left, op, right } => {
                    let (lit, flipped) = if is_col(left, column) {
                        (int_lit(right), false)
                    } else if is_col(right, column) {
                        (int_lit(left), true)
                    } else {
                        continue;
                    };
                    let Some(v) = lit else { continue };
                    // `flipped` means literal OP column: directions swap.
                    match (op, flipped) {
                        (BinaryOp::Gt | BinaryOp::GtEq, false)
                        | (BinaryOp::Lt | BinaryOp::LtEq, true) => self.tighten_lo(v),
                        (BinaryOp::Lt | BinaryOp::LtEq, false)
                        | (BinaryOp::Gt | BinaryOp::GtEq, true) => self.tighten_hi(v),
                        (BinaryOp::Eq, _) => {
                            self.tighten_lo(v);
                            self.tighten_hi(v);
                        }
                        _ => {}
                    }
                }
                Expr::Between {
                    expr,
                    low,
                    high,
                    negated: false,
                } if is_col(expr, column) => {
                    if let Some(v) = int_lit(low) {
                        self.tighten_lo(v);
                    }
                    if let Some(v) = int_lit(high) {
                        self.tighten_hi(v);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Statistics entry matching a (possibly qualified) column reference,
/// using the same resolution rules as schema lookup.
fn stat_of<'a>(stats: &'a [ColumnStats], name: &str) -> Option<&'a ColumnStats> {
    resolve_name(stats.iter().map(|s| s.name.as_str()), name).map(|i| &stats[i])
}

fn cmp(a: &Value, b: &Value) -> Option<Ordering> {
    a.sql_cmp(b)
}

/// Does `pred` have at least one conjunct of a shape zone-map exclusion
/// can decide (column-vs-literal comparison, literal `BETWEEN`/`IN`, or
/// a constant)? The executor checks this **before** asking the catalog
/// for a zone map, so tables never pay a statistics pass for predicates
/// that could not prune anyway.
pub fn has_prunable_conjunct(pred: &Expr) -> bool {
    fn prunable(c: &Expr) -> bool {
        match c {
            Expr::Literal(_) => true,
            Expr::Binary {
                left,
                op: BinaryOp::Or,
                right,
            } => prunable(left) && prunable(right),
            Expr::Binary { left, op, right } if op.is_comparison() => matches!(
                (&**left, &**right),
                (Expr::Column(_), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(_))
            ),
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                matches!(&**expr, Expr::Column(_))
                    && matches!(&**low, Expr::Literal(_))
                    && matches!(&**high, Expr::Literal(_))
            }
            Expr::InList {
                expr,
                list,
                negated: false,
            } => {
                matches!(&**expr, Expr::Column(_))
                    && list.iter().all(|e| matches!(e, Expr::Literal(_)))
            }
            _ => false,
        }
    }
    let mut conjuncts = Vec::new();
    split_conjunction(pred, &mut conjuncts);
    conjuncts.iter().any(prunable)
}

/// Does `pred` provably reject every row of a table with these column
/// statistics — **and** is skipping its evaluation observationally safe?
///
/// Two conditions must hold:
///
/// 1. some conjunct is individually unsatisfiable over the zone map
///    (only shapes decidable from `[min, max]` are inspected:
///    column-vs-literal comparisons, non-negated literal `BETWEEN` and
///    `IN`; any comparison `sql_cmp` cannot order answers `false`);
/// 2. **every** conjunct is of a shape whose evaluation cannot raise a
///    runtime error — otherwise pruning would turn an `Err` (e.g. an
///    unorderable comparison in a *sibling* conjunct) into a silent
///    empty result.
///
/// The one exception: an empty table excludes trivially — filtering zero
/// rows evaluates nothing, so skipping is always identical.
pub fn predicate_excludes(pred: &Expr, stats: &[ColumnStats]) -> bool {
    if stats.first().is_some_and(|s| s.count == 0) {
        return true;
    }
    let mut conjuncts = Vec::new();
    split_conjunction(pred, &mut conjuncts);
    conjuncts.iter().any(|c| conjunct_excludes(c, stats))
        && conjuncts.iter().all(|c| conjunct_infallible(c, stats))
}

/// Can evaluating this conjunct possibly raise a runtime error, for any
/// row of a table described by `stats`? Conservative: `false` unless the
/// shape is provably error-free. Comparisons are infallible when the
/// literal orders against the column's value type (witnessed by `min`)
/// or the column holds no non-NULL values at all; `IN` over literals and
/// `IS NULL` on a column never error by construction.
fn conjunct_infallible(c: &Expr, stats: &[ColumnStats]) -> bool {
    match c {
        Expr::Literal(_) => true,
        // A bare boolean column: errors only if the reference is
        // unresolvable, so require a matching statistics entry.
        Expr::Column(n) => stat_of(stats, n).is_some(),
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => conjunct_infallible(left, stats) && conjunct_infallible(right, stats),
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let (name, lit) = match (&**left, &**right) {
                (Expr::Column(n), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(n)) => (n, v),
                _ => return false,
            };
            if lit.is_null() {
                return true; // NULL comparisons answer NULL, never Err
            }
            let Some(s) = stat_of(stats, name) else {
                return false;
            };
            if s.nulls == s.count {
                return true; // every row is NULL → every row answers NULL
            }
            // A literal that orders against min orders against every
            // value of the column's type (sql_cmp is type-driven).
            s.min.as_ref().is_some_and(|m| cmp(lit, m).is_some())
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            let Expr::Column(name) = &**expr else {
                return false;
            };
            let (Expr::Literal(lo), Expr::Literal(hi)) = (&**low, &**high) else {
                return false;
            };
            let Some(s) = stat_of(stats, name) else {
                return false;
            };
            if s.nulls == s.count {
                return true;
            }
            let orders =
                |v: &Value| v.is_null() || s.min.as_ref().is_some_and(|m| cmp(v, m).is_some());
            orders(lo) && orders(hi)
        }
        // sql_eq never errors: an unorderable pair just answers NULL.
        Expr::InList { expr, list, .. } => match &**expr {
            Expr::Column(n) => {
                stat_of(stats, n).is_some() && list.iter().all(|e| matches!(e, Expr::Literal(_)))
            }
            _ => false,
        },
        Expr::IsNull { expr, .. } => {
            matches!(&**expr, Expr::Column(n) if stat_of(stats, n).is_some())
        }
        _ => false,
    }
}

fn conjunct_excludes(c: &Expr, stats: &[ColumnStats]) -> bool {
    match c {
        // A constant conjunct that is not definitely TRUE filters out
        // every row (NULL and FALSE both fail `WHERE`).
        Expr::Literal(v) => v.as_bool() != Some(true),
        // Both OR arms unsatisfiable ⇒ the disjunction is too.
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => conjunct_excludes(left, stats) && conjunct_excludes(right, stats),
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let (name, lit, flipped) = match (&**left, &**right) {
                (Expr::Column(n), Expr::Literal(v)) => (n, v, false),
                (Expr::Literal(v), Expr::Column(n)) => (n, v, true),
                _ => return false,
            };
            if lit.is_null() {
                return true; // `col OP NULL` is never TRUE
            }
            let Some(s) = stat_of(stats, name) else {
                return false;
            };
            if s.count == 0 || s.nulls == s.count {
                return true; // no non-NULL value can satisfy a comparison
            }
            // NaN-tainted range: either the column holds NaNs (excluded
            // from min/max, yet ordering as ±∞-beyond under `total_cmp`,
            // so they can satisfy any inequality) or a bound itself is
            // NaN (pre-fix stats). Exclusion over such a range could
            // prune live rows — never fire.
            if !s.range_trusted() {
                return false;
            }
            let (Some(min), Some(max)) = (&s.min, &s.max) else {
                return false;
            };
            // Orient as `col OP lit`.
            let op = if flipped { flip(*op) } else { *op };
            match op {
                BinaryOp::Eq => {
                    cmp(lit, min) == Some(Ordering::Less)
                        || cmp(lit, max) == Some(Ordering::Greater)
                }
                BinaryOp::NotEq => {
                    cmp(min, max) == Some(Ordering::Equal) && cmp(lit, min) == Some(Ordering::Equal)
                }
                BinaryOp::Lt => matches!(cmp(min, lit), Some(Ordering::Greater | Ordering::Equal)),
                BinaryOp::LtEq => cmp(min, lit) == Some(Ordering::Greater),
                BinaryOp::Gt => matches!(cmp(max, lit), Some(Ordering::Less | Ordering::Equal)),
                BinaryOp::GtEq => cmp(max, lit) == Some(Ordering::Less),
                _ => false,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let Expr::Column(name) = &**expr else {
                return false;
            };
            let (Expr::Literal(lo), Expr::Literal(hi)) = (&**low, &**high) else {
                return false;
            };
            if lo.is_null() || hi.is_null() {
                return true; // `BETWEEN NULL AND …` is never TRUE
            }
            let Some(s) = stat_of(stats, name) else {
                return false;
            };
            if s.count == 0 || s.nulls == s.count {
                return true;
            }
            if !s.range_trusted() {
                return false; // NaN-tainted range (see comparison arm)
            }
            let (Some(min), Some(max)) = (&s.min, &s.max) else {
                return false;
            };
            cmp(lo, max) == Some(Ordering::Greater) || cmp(hi, min) == Some(Ordering::Less)
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let Expr::Column(name) = &**expr else {
                return false;
            };
            let Some(s) = stat_of(stats, name) else {
                return false;
            };
            if s.count == 0 || s.nulls == s.count {
                return true;
            }
            if !s.range_trusted() {
                return false; // NaN-tainted range (see comparison arm)
            }
            let (Some(min), Some(max)) = (&s.min, &s.max) else {
                return false;
            };
            // Excluded when every candidate is a literal outside
            // [min, max] (NULL candidates never match anything).
            list.iter().all(|e| match e {
                Expr::Literal(v) if v.is_null() => true,
                Expr::Literal(v) => {
                    cmp(v, min) == Some(Ordering::Less) || cmp(v, max) == Some(Ordering::Greater)
                }
                _ => false,
            })
        }
        _ => false,
    }
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(min: Value, max: Value, count: usize, nulls: usize) -> Vec<ColumnStats> {
        vec![ColumnStats {
            count,
            nulls,
            min: Some(min),
            max: Some(max),
            ..ColumnStats::empty("t")
        }]
    }

    fn pred(op: BinaryOp, v: i64) -> Expr {
        Expr::col("t").binary(op, Expr::lit(Value::Int64(v)))
    }

    #[test]
    fn range_exclusion_rules() {
        let s = stats(Value::Int64(10), Value::Int64(20), 5, 0);
        assert!(predicate_excludes(&pred(BinaryOp::Gt, 20), &s));
        assert!(!predicate_excludes(&pred(BinaryOp::Gt, 19), &s));
        assert!(predicate_excludes(&pred(BinaryOp::GtEq, 21), &s));
        assert!(!predicate_excludes(&pred(BinaryOp::GtEq, 20), &s));
        assert!(predicate_excludes(&pred(BinaryOp::Lt, 10), &s));
        assert!(!predicate_excludes(&pred(BinaryOp::Lt, 11), &s));
        assert!(predicate_excludes(&pred(BinaryOp::LtEq, 9), &s));
        assert!(predicate_excludes(&pred(BinaryOp::Eq, 9), &s));
        assert!(predicate_excludes(&pred(BinaryOp::Eq, 21), &s));
        assert!(!predicate_excludes(&pred(BinaryOp::Eq, 15), &s));
        assert!(!predicate_excludes(&pred(BinaryOp::NotEq, 15), &s));
        let point = stats(Value::Int64(7), Value::Int64(7), 3, 0);
        assert!(predicate_excludes(&pred(BinaryOp::NotEq, 7), &point));
    }

    #[test]
    fn flipped_operand_order() {
        let s = stats(Value::Int64(10), Value::Int64(20), 5, 0);
        // 5 > t  ⇔  t < 5: excluded (min is 10).
        let p = Expr::lit(Value::Int64(5)).binary(BinaryOp::Gt, Expr::col("t"));
        assert!(predicate_excludes(&p, &s));
        let p = Expr::lit(Value::Int64(15)).binary(BinaryOp::Gt, Expr::col("t"));
        assert!(!predicate_excludes(&p, &s));
    }

    #[test]
    fn conjunction_or_and_special_values() {
        let s = stats(Value::Int64(10), Value::Int64(20), 5, 0);
        // Satisfiable AND unsatisfiable ⇒ excluded.
        let p = pred(BinaryOp::Eq, 15).and(pred(BinaryOp::Gt, 30));
        assert!(predicate_excludes(&p, &s));
        // OR needs both arms dead.
        let p = pred(BinaryOp::Gt, 30).binary(BinaryOp::Or, pred(BinaryOp::Lt, 5));
        assert!(predicate_excludes(&p, &s));
        let p = pred(BinaryOp::Gt, 30).binary(BinaryOp::Or, pred(BinaryOp::Eq, 15));
        assert!(!predicate_excludes(&p, &s));
        // NULL literal comparison is never true.
        let p = Expr::col("t").binary(BinaryOp::Eq, Expr::lit(Value::Null));
        assert!(predicate_excludes(&p, &s));
        // All-NULL column: comparisons can't match.
        let all_null = vec![ColumnStats {
            count: 4,
            nulls: 4,
            ..ColumnStats::empty("t")
        }];
        assert!(predicate_excludes(&pred(BinaryOp::Eq, 1), &all_null));
        // Unknown column: conservative keep.
        let p = Expr::col("other").binary(BinaryOp::Gt, Expr::lit(Value::Int64(99)));
        assert!(!predicate_excludes(&p, &s));
    }

    #[test]
    fn between_and_in_list() {
        let s = stats(Value::Int64(10), Value::Int64(20), 5, 0);
        let between = |lo: i64, hi: i64| Expr::Between {
            expr: Box::new(Expr::col("t")),
            low: Box::new(Expr::lit(Value::Int64(lo))),
            high: Box::new(Expr::lit(Value::Int64(hi))),
            negated: false,
        };
        assert!(predicate_excludes(&between(21, 30), &s));
        assert!(predicate_excludes(&between(1, 9), &s));
        assert!(!predicate_excludes(&between(15, 30), &s));
        let in_list = |vals: Vec<i64>| Expr::InList {
            expr: Box::new(Expr::col("t")),
            list: vals
                .into_iter()
                .map(|v| Expr::lit(Value::Int64(v)))
                .collect(),
            negated: false,
        };
        assert!(predicate_excludes(&in_list(vec![1, 2, 30]), &s));
        assert!(!predicate_excludes(&in_list(vec![1, 15]), &s));
    }

    #[test]
    fn fallible_sibling_conjunct_blocks_pruning() {
        // `t > 30` is provably empty, but the sibling `t > other` is a
        // column-vs-column comparison whose evaluation could raise
        // "cannot compare" — skipping it would turn that error into a
        // silent empty result, so the predicate must not exclude.
        let s = stats(Value::Int64(10), Value::Int64(20), 5, 0);
        let dead = pred(BinaryOp::Gt, 30);
        assert!(predicate_excludes(&dead, &s), "alone it prunes");
        let fallible = Expr::col("t").binary(BinaryOp::Gt, Expr::col("other"));
        assert!(
            !predicate_excludes(&dead.clone().and(fallible), &s),
            "a fallible sibling blocks pruning"
        );
        // An infallible sibling (orderable col-vs-lit) does not.
        let safe = Expr::col("t").binary(BinaryOp::Lt, Expr::lit(Value::Int64(15)));
        assert!(predicate_excludes(&dead.and(safe), &s));
        // Empty tables exclude trivially: zero rows evaluate nothing.
        let empty = stats(Value::Int64(0), Value::Int64(0), 0, 0);
        let anything = Expr::col("t").binary(BinaryOp::Gt, Expr::col("other"));
        assert!(predicate_excludes(&anything, &empty));
    }

    #[test]
    fn prunable_shape_gate() {
        // Shapes the zone map can decide…
        assert!(has_prunable_conjunct(&pred(BinaryOp::Gt, 1)));
        assert!(has_prunable_conjunct(
            &Expr::col("x")
                .binary(BinaryOp::Add, Expr::col("y"))
                .and(pred(BinaryOp::Eq, 2))
        ));
        // …and ones it cannot: no zone-map (= no stats pass) for these.
        assert!(!has_prunable_conjunct(
            &Expr::col("t").binary(BinaryOp::Gt, Expr::col("u"))
        ));
        assert!(!has_prunable_conjunct(&Expr::IsNull {
            expr: Box::new(Expr::col("t")),
            negated: false,
        }));
    }

    #[test]
    fn nan_tainted_range_never_excludes() {
        // A column holding NaN alongside [10, 20]: under `total_cmp` a
        // +NaN row satisfies `t > lit` for any literal and a -NaN row
        // satisfies `t < lit`, so range exclusion must not fire at all.
        let mut tainted = stats(Value::Float64(10.0), Value::Float64(20.0), 5, 0);
        tainted[0].nans = 1;
        for op in [
            BinaryOp::Gt,
            BinaryOp::GtEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Eq,
            BinaryOp::NotEq,
        ] {
            let p = Expr::col("t").binary(op, Expr::lit(Value::Float64(999.0)));
            assert!(
                !predicate_excludes(&p, &tainted),
                "op {op:?} must not prune"
            );
        }
        let between = Expr::Between {
            expr: Box::new(Expr::col("t")),
            low: Box::new(Expr::lit(Value::Float64(100.0))),
            high: Box::new(Expr::lit(Value::Float64(200.0))),
            negated: false,
        };
        assert!(!predicate_excludes(&between, &tainted));
        let in_list = Expr::InList {
            expr: Box::new(Expr::col("t")),
            list: vec![Expr::lit(Value::Float64(999.0))],
            negated: false,
        };
        assert!(!predicate_excludes(&in_list, &tainted));
        // Stats from a pre-fix snapshot where NaN leaked into a bound:
        // equally untrusted.
        let mut leaked = stats(Value::Float64(10.0), Value::Float64(f64::NAN), 5, 0);
        leaked[0].nans = 0;
        let p = Expr::col("t").binary(BinaryOp::Lt, Expr::lit(Value::Float64(-5.0)));
        assert!(!predicate_excludes(&p, &leaked));
        // NaN-free float stats still prune normally.
        let clean = stats(Value::Float64(10.0), Value::Float64(20.0), 5, 0);
        let p = Expr::col("t").binary(BinaryOp::Gt, Expr::lit(Value::Float64(999.0)));
        assert!(predicate_excludes(&p, &clean));
    }

    #[test]
    fn utf8_and_qualified_names() {
        let s = vec![ColumnStats {
            count: 4,
            nulls: 0,
            min: Some(Value::Utf8("HGN".into())),
            max: Some(Value::Utf8("WIT".into())),
            ..ColumnStats::empty("station")
        }];
        let p = Expr::col("f.station").binary(BinaryOp::Eq, Expr::lit(Value::Utf8("ZZZ".into())));
        assert!(predicate_excludes(&p, &s));
        let p = Expr::col("station").binary(BinaryOp::Eq, Expr::lit(Value::Utf8("ISK".into())));
        assert!(!predicate_excludes(&p, &s));
    }

    #[test]
    fn interval_tightens_like_the_rewriter() {
        let mut iv = TimeInterval::unconstrained();
        assert!(!iv.is_constrained());
        let p = Expr::col("d.sample_time")
            .binary(BinaryOp::Gt, Expr::lit(Value::Timestamp(50)))
            .and(Expr::col("sample_time").binary(BinaryOp::Lt, Expr::lit(Value::Timestamp(80))));
        iv.tighten_from_predicate(&p, "sample_time");
        assert_eq!((iv.lo, iv.hi), (Some(50), Some(80)));
        // Reversed operand order flips directions; bounds only tighten.
        let p2 = Expr::lit(Value::Timestamp(70)).binary(BinaryOp::Gt, Expr::col("sample_time"));
        iv.tighten_from_predicate(&p2, "sample_time");
        assert_eq!((iv.lo, iv.hi), (Some(50), Some(70)));
        // Unrelated columns don't contribute.
        let p3 = Expr::col("other").binary(BinaryOp::Gt, Expr::lit(Value::Timestamp(99)));
        iv.tighten_from_predicate(&p3, "sample_time");
        assert_eq!((iv.lo, iv.hi), (Some(50), Some(70)));
        // BETWEEN tightens both sides; Eq pins the point.
        let mut iv2 = TimeInterval::unconstrained();
        iv2.tighten_from_predicate(
            &Expr::Between {
                expr: Box::new(Expr::col("sample_time")),
                low: Box::new(Expr::lit(Value::Timestamp(10))),
                high: Box::new(Expr::lit(Value::Timestamp(90))),
                negated: false,
            },
            "sample_time",
        );
        assert_eq!((iv2.lo, iv2.hi), (Some(10), Some(90)));
        iv2.tighten_from_predicate(
            &Expr::col("sample_time").binary(BinaryOp::Eq, Expr::lit(Value::Timestamp(42))),
            "sample_time",
        );
        assert_eq!((iv2.lo, iv2.hi), (Some(42), Some(42)));
    }
}
