//! The morsel-driven executor's proof obligation: for every query shape
//! the engine supports, parallel execution must be **observably
//! indistinguishable** from the serial reference path — same rows in the
//! same order, same NULLs, same errors — across thread counts 1/2/4/8
//! and adversarial morsel sizes (1 row per morsel, a prime that never
//! divides the input evenly, and the 4096-row default).
//!
//! The comparison is deliberately blunt: render both results with
//! `Table::to_ascii` and require byte equality. Anything that survives
//! that — value widths, NULL placement, row order, group order — is
//! pinned. Float columns use dyadic values (multiples of 0.25) so sums
//! are exact in f64 and associativity cannot blur the comparison; the
//! executor's merge rules are supposed to make order irrelevant anyway,
//! and `proptest_parallel.rs` hammers the same claim with arbitrary
//! tables.

use lazyetl_query::error::QueryError;
use lazyetl_query::exec::{execute, ExecContext};
use lazyetl_query::metrics::ExecMetrics;
use lazyetl_query::optimizer::optimize;
use lazyetl_query::planner::{plan_sql, TableSource};
use lazyetl_store::{Catalog, DataType, Field, Schema, Table, Value};
use std::sync::Arc;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const MORSELS: [usize; 3] = [1, 7, 4096];

/// A seismic-flavoured catalog (the paper's domain) big enough that the
/// default morsel size still splits it, with NULLs in every column that
/// can hold them and enough key skew to make joins and groups interesting.
fn catalog(rows: usize) -> Catalog {
    let stations = ["ISK", "ANTO", "KONO", "BFO"];
    let channels = ["BHE", "BHN", "BHZ"];
    let files_schema = Schema::new(vec![
        Field::new("file_id", DataType::Int64),
        Field::nullable("station", DataType::Utf8),
        Field::nullable("channel", DataType::Utf8),
        Field::nullable("qual", DataType::Int32),
        Field::nullable("size", DataType::Int64),
        Field::nullable("drift", DataType::Float64),
        Field::nullable("seen", DataType::Timestamp),
        Field::nullable("ok", DataType::Bool),
    ])
    .unwrap();
    let mut files = Table::empty(files_schema);
    for i in 0..rows as i64 {
        files
            .append_row(vec![
                Value::Int64(i),
                if i % 11 == 3 {
                    Value::Null
                } else {
                    Value::Utf8(stations[(i % 4) as usize].to_string())
                },
                if i % 13 == 5 {
                    Value::Null
                } else {
                    Value::Utf8(channels[(i % 3) as usize].to_string())
                },
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int32((i % 5) as i32)
                },
                if i % 17 == 9 {
                    Value::Null
                } else {
                    Value::Int64(512 + (i * 37) % 4096)
                },
                // Dyadic: exact in f64, so any summation order agrees.
                if i % 19 == 7 {
                    Value::Null
                } else {
                    Value::Float64(((i % 400) - 200) as f64 * 0.25)
                },
                if i % 23 == 11 {
                    Value::Null
                } else {
                    Value::Timestamp(1_300_000_000_000 + i * 250)
                },
                if i % 29 == 13 {
                    Value::Null
                } else {
                    Value::Bool(i % 2 == 0)
                },
            ])
            .unwrap();
    }
    let stations_schema = Schema::new(vec![
        Field::nullable("name", DataType::Utf8),
        Field::new("network", DataType::Utf8),
        Field::new("elevation", DataType::Int64),
    ])
    .unwrap();
    let mut st = Table::empty(stations_schema);
    for (i, s) in stations.iter().enumerate() {
        st.append_row(vec![
            Value::Utf8(s.to_string()),
            Value::Utf8(if i % 2 == 0 { "GE" } else { "TR" }.to_string()),
            Value::Int64(100 + 37 * i as i64),
        ])
        .unwrap();
    }
    st.append_row(vec![
        Value::Null,
        Value::Utf8("XX".to_string()),
        Value::Int64(0),
    ])
    .unwrap();
    let mut c = Catalog::new();
    c.create_table("files", files).unwrap();
    c.create_table("stations", st).unwrap();
    c
}

/// The query mix: every operator the executor parallelizes plus the
/// serial tails (sort/limit/distinct/having) that consume their output.
fn query_mix() -> Vec<&'static str> {
    vec![
        // Fused filter/project pipelines, incl. NULL-producing arithmetic.
        "SELECT file_id, size FROM files WHERE size > 2000",
        "SELECT file_id, qual + 1 AS q1, drift * 2.0 AS d2 FROM files WHERE qual >= 2",
        "SELECT file_id FROM files WHERE station = 'ISK' AND channel <> 'BHZ' AND ok = TRUE",
        "SELECT file_id, size / (qual - qual) AS div0 FROM files WHERE file_id < 50",
        "SELECT station, size FROM files WHERE size BETWEEN 1000 AND 3000 AND station IN ('ISK', 'KONO')",
        "SELECT file_id FROM files WHERE drift IS NULL",
        // A predicate the zone map can prove empty (pruning + morsels).
        "SELECT file_id FROM files WHERE size > 100000",
        // Aggregation: global and grouped, every function, typed + boxed.
        "SELECT COUNT(*), COUNT(size), SUM(size), AVG(drift), MIN(station), MAX(seen) FROM files",
        "SELECT station, COUNT(*) AS n, SUM(size) AS bytes FROM files GROUP BY station ORDER BY station",
        "SELECT qual, MIN(drift), MAX(drift), AVG(size) FROM files GROUP BY qual ORDER BY qual",
        "SELECT station, channel, COUNT(*) FROM files GROUP BY station, channel ORDER BY station, channel",
        "SELECT qual, COUNT(DISTINCT station), COUNT(DISTINCT channel) FROM files GROUP BY qual ORDER BY qual",
        "SELECT channel, MIN(station) AS lo, MAX(station) AS hi FROM files GROUP BY channel ORDER BY channel",
        "SELECT station, COUNT(*) AS n FROM files WHERE ok = TRUE GROUP BY station HAVING COUNT(*) >= 5 ORDER BY n DESC, station",
        // Joins: string key (generic GroupKey path) with NULL keys on
        // both sides, feeding grouped aggregation.
        "SELECT s.network, COUNT(*) AS files FROM files f JOIN stations s ON f.station = s.name GROUP BY s.network ORDER BY s.network",
        "SELECT f.file_id, s.elevation FROM files f JOIN stations s ON f.station = s.name WHERE f.qual = 4 ORDER BY f.file_id LIMIT 20",
        // Self-join on an integer key (packed path).
        "SELECT a.file_id FROM files a JOIN files b ON a.size = b.size WHERE a.file_id < b.file_id ORDER BY a.file_id LIMIT 25",
        // Serial tails over parallel producers.
        "SELECT DISTINCT channel FROM files ORDER BY channel",
        "SELECT station, size FROM files ORDER BY size DESC, file_id LIMIT 10",
    ]
}

fn run(
    catalog: &Catalog,
    sql: &str,
    parallelism: usize,
    morsel_rows: usize,
    metrics: Option<&ExecMetrics>,
) -> Result<Arc<Table>, QueryError> {
    let src = TableSource::new(catalog);
    let plan = optimize(&plan_sql(sql, &src)?)?;
    let mut ctx = ExecContext::new(catalog)
        .with_parallelism(parallelism)
        .with_morsel_rows(morsel_rows);
    if let Some(m) = metrics {
        ctx = ctx.with_metrics(m);
    }
    execute(&plan, &ctx)
}

/// Byte-exact render of an entire result.
fn ascii(t: &Table) -> String {
    t.to_ascii(usize::MAX)
}

#[test]
fn parallel_equals_serial_across_threads_and_morsel_sizes() {
    let catalog = catalog(10_000);
    for sql in query_mix() {
        let serial = run(&catalog, sql, 1, 4096, None)
            .unwrap_or_else(|e| panic!("serial reference failed for {sql}: {e}"));
        let expected = ascii(&serial);
        for &threads in &THREADS {
            for &morsel in &MORSELS {
                let got = run(&catalog, sql, threads, morsel, None).unwrap_or_else(|e| {
                    panic!("threads={threads} morsel={morsel} failed for {sql}: {e}")
                });
                assert_eq!(
                    ascii(&got),
                    expected,
                    "{sql} diverged at threads={threads} morsel={morsel}"
                );
            }
        }
    }
}

#[test]
fn empty_and_tiny_tables_are_safe_at_any_decomposition() {
    let catalog = catalog(3);
    for sql in query_mix() {
        let expected = ascii(&run(&catalog, sql, 1, 4096, None).unwrap());
        for &threads in &THREADS {
            for &morsel in &MORSELS {
                let got = run(&catalog, sql, threads, morsel, None).unwrap();
                assert_eq!(
                    ascii(&got),
                    expected,
                    "{sql} diverged on tiny table at threads={threads} morsel={morsel}"
                );
            }
        }
    }
}

/// An erroring morsel must surface the same `QueryError` as the serial
/// pass — never a partial table, never a pool poisoning.
#[test]
fn errors_propagate_identically() {
    let catalog = catalog(500);
    // Timestamp-vs-float comparison is unorderable: every row errors, so
    // the first morsel's failure must match the serial error exactly.
    let cases = [
        "SELECT file_id FROM files WHERE seen > 1.5",
        "SELECT seen > 1.5 AS bad FROM files",
    ];
    for sql in cases {
        let serial = run(&catalog, sql, 1, 4096, None).unwrap_err();
        for &threads in &THREADS {
            for &morsel in &MORSELS {
                let got = run(&catalog, sql, threads, morsel, None).unwrap_err();
                assert_eq!(
                    got.to_string(),
                    serial.to_string(),
                    "{sql} error diverged at threads={threads} morsel={morsel}"
                );
            }
        }
    }
}

/// Integer SUM overflow is decided by the true i128 total, so a sum that
/// overflows i64 errors identically no matter how morsels split the rows
/// — and a sum that transiently exceeds i64 but settles back in range
/// succeeds identically.
#[test]
fn sum_overflow_is_association_free() {
    let schema = Schema::new(vec![
        Field::new("g", DataType::Int64),
        Field::new("x", DataType::Int64),
    ])
    .unwrap();
    let mut t = Table::empty(schema);
    // Group 0 genuinely overflows; group 1 overshoots then cancels.
    for vals in [
        (0, i64::MAX),
        (0, i64::MAX),
        (1, i64::MAX),
        (1, 1),
        (1, -10),
    ] {
        t.append_row(vec![Value::Int64(vals.0), Value::Int64(vals.1)])
            .unwrap();
    }
    let mut catalog = Catalog::new();
    catalog.create_table("t", t).unwrap();

    let overflowing = "SELECT SUM(x) FROM t WHERE g = 0";
    let serial_err = run(&catalog, overflowing, 1, 4096, None).unwrap_err();
    let settling = "SELECT SUM(x) FROM t WHERE g = 1";
    let serial_ok = ascii(&run(&catalog, settling, 1, 4096, None).unwrap());
    for &threads in &THREADS {
        for &morsel in &MORSELS {
            let err = run(&catalog, overflowing, threads, morsel, None).unwrap_err();
            assert_eq!(err.to_string(), serial_err.to_string());
            assert!(matches!(err, QueryError::Execution(_)), "{err:?}");
            let ok = run(&catalog, settling, threads, morsel, None).unwrap();
            assert_eq!(ascii(&ok), serial_ok);
        }
    }
}

/// The new counters fire exactly when a pipeline actually goes parallel.
#[test]
fn parallel_counters_track_dispatch() {
    let catalog = catalog(10_000);
    let sql = "SELECT station, COUNT(*), SUM(size) FROM files WHERE size > 600 GROUP BY station";

    let serial = ExecMetrics::new();
    run(&catalog, sql, 1, 4096, Some(&serial)).unwrap();
    let s = serial.snapshot();
    assert_eq!(s.morsels_dispatched, 0, "serial run dispatched morsels");
    assert_eq!(s.parallel_pipelines, 0);
    assert_eq!(s.merge_ns, 0);

    let parallel = ExecMetrics::new();
    run(&catalog, sql, 4, 256, Some(&parallel)).unwrap();
    let p = parallel.snapshot();
    // Filter pipeline + grouped aggregation both fan out.
    assert!(p.parallel_pipelines >= 2, "{p:?}");
    assert!(p.morsels_dispatched >= p.parallel_pipelines, "{p:?}");

    // Morsel accounting scales with the decomposition, not the threads.
    let fine = ExecMetrics::new();
    run(&catalog, sql, 4, 64, Some(&fine)).unwrap();
    assert!(
        fine.snapshot().morsels_dispatched > p.morsels_dispatched,
        "smaller morsels must dispatch more work units"
    );
}

/// `with_parallelism`/`with_morsel_rows` clamp degenerate values instead
/// of dividing by zero or spawning zero workers.
#[test]
fn degenerate_knobs_clamp() {
    let catalog = catalog(100);
    let sql = "SELECT COUNT(*) FROM files";
    let expected = ascii(&run(&catalog, sql, 1, 4096, None).unwrap());
    let got = run(&catalog, sql, 0, 0, None).unwrap();
    assert_eq!(ascii(&got), expected);
}
