//! Property tests for the SQL layer: the parser never panics, the
//! vectorized evaluator agrees with the row interpreter, LIKE matches a
//! reference implementation, and optimized plans answer like unoptimized
//! ones.

use lazyetl_query::exec::{execute, ExecContext};
use lazyetl_query::expr::{eval_expr, eval_row, like_match, BinaryOp, Expr};
use lazyetl_query::optimizer::optimize;
use lazyetl_query::parse;
use lazyetl_query::planner::{plan_sql, TableSource};
use lazyetl_store::{Catalog, DataType, Field, Schema, Table, Value};
use proptest::prelude::*;

fn small_table(rows: &[(i64, f64, &str, bool)]) -> Table {
    let schema = Schema::new(vec![
        Field::nullable("id", DataType::Int64),
        Field::nullable("v", DataType::Float64),
        Field::nullable("name", DataType::Utf8),
        Field::nullable("flag", DataType::Bool),
    ])
    .unwrap();
    let mut t = Table::empty(schema);
    for (i, (id, v, name, flag)) in rows.iter().enumerate() {
        t.append_row(vec![
            if i % 7 == 3 {
                Value::Null
            } else {
                Value::Int64(*id)
            },
            if i % 5 == 4 {
                Value::Null
            } else {
                Value::Float64(*v)
            },
            Value::Utf8(name.to_string()),
            Value::Bool(*flag),
        ])
        .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser returns Ok or Err but never panics, on arbitrary input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,80}") {
        let _ = parse(&input);
    }

    /// ... including inputs that look like SQL.
    #[test]
    fn parser_never_panics_sqlish(
        keyword in prop::sample::select(vec!["SELECT", "FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "AND", "BETWEEN"]),
        ident in "[a-z_.]{1,10}",
        num in any::<i64>(),
    ) {
        let _ = parse(&format!("{keyword} {ident} {num}"));
        let _ = parse(&format!("SELECT {ident} FROM t WHERE {ident} = {num} {keyword}"));
    }

    /// Vectorized expression evaluation agrees with the row interpreter.
    #[test]
    fn vectorized_matches_interpreter(
        rows in prop::collection::vec((any::<i64>(), -1e9f64..1e9, "[a-c]{1,3}", any::<bool>()), 1..40),
        threshold in any::<i64>(),
    ) {
        let refs: Vec<(i64, f64, &str, bool)> =
            rows.iter().map(|(a, b, c, d)| (*a, *b, c.as_str(), *d)).collect();
        let t = small_table(&refs);
        let exprs = vec![
            Expr::col("id").binary(BinaryOp::Gt, Expr::lit(Value::Int64(threshold))),
            Expr::col("v").binary(BinaryOp::LtEq, Expr::lit(Value::Float64(0.0))),
            Expr::col("name").binary(BinaryOp::Eq, Expr::lit(Value::Utf8("ab".into()))),
            Expr::col("id")
                .binary(BinaryOp::Gt, Expr::lit(Value::Int64(threshold)))
                .and(Expr::col("v").binary(BinaryOp::Lt, Expr::lit(Value::Float64(1e8)))),
        ];
        for e in &exprs {
            let col = eval_expr(e, &t).unwrap();
            for row in 0..t.num_rows() {
                let direct = eval_row(e, &t, row).unwrap();
                let from_col = col.get(row).unwrap();
                prop_assert_eq!(direct, from_col, "expr {} row {}", e, row);
            }
        }
    }

    /// LIKE agrees with a simple reference matcher.
    #[test]
    fn like_matches_reference(text in "[ab_%]{0,8}", pattern in "[ab_%]{0,6}") {
        fn reference(t: &str, p: &str) -> bool {
            // O(2^n) reference: recursive descent without memo.
            let tc: Vec<char> = t.chars().collect();
            let pc: Vec<char> = p.chars().collect();
            fn go(t: &[char], p: &[char]) -> bool {
                match p.split_first() {
                    None => t.is_empty(),
                    Some(('%', rest)) => {
                        (0..=t.len()).any(|k| go(&t[k..], rest))
                    }
                    Some(('_', rest)) => !t.is_empty() && go(&t[1..], rest),
                    Some((c, rest)) => t.first() == Some(c) && go(&t[1..], rest),
                }
            }
            go(&tc, &pc)
        }
        prop_assert_eq!(like_match(&text, &pattern), reference(&text, &pattern));
    }

    /// Optimized plans return the same rows as unoptimized plans.
    #[test]
    fn optimizer_preserves_semantics(
        rows in prop::collection::vec((0i64..20, -100f64..100.0, "[ab]{1,2}", any::<bool>()), 0..30),
        lo in 0i64..10,
    ) {
        let refs: Vec<(i64, f64, &str, bool)> =
            rows.iter().map(|(a, b, c, d)| (*a, *b, c.as_str(), *d)).collect();
        let mut catalog = Catalog::new();
        catalog.create_table("t", small_table(&refs)).unwrap();
        catalog
            .create_view("doubled", "SELECT id, v * 2 AS v2, name FROM t")
            .unwrap();
        let queries = vec![
            format!("SELECT id, v FROM t WHERE id >= {lo} ORDER BY id, v"),
            format!("SELECT name, COUNT(*) AS c, SUM(v) FROM t WHERE id > {lo} GROUP BY name ORDER BY name"),
            format!("SELECT v2 FROM doubled WHERE id = {lo} ORDER BY v2"),
            "SELECT DISTINCT name FROM t ORDER BY name".to_string(),
            format!("SELECT id + 1, abs(v) FROM t WHERE id BETWEEN {lo} AND {} ORDER BY id LIMIT 7", lo + 5),
        ];
        let src = TableSource::new(&catalog);
        let ctx = ExecContext::new(&catalog);
        for sql in &queries {
            let plan = plan_sql(sql, &src).unwrap();
            let raw = execute(&plan, &ctx).unwrap();
            let optimized = optimize(&plan).unwrap();
            let opt = execute(&optimized, &ctx).unwrap();
            prop_assert_eq!(raw.num_rows(), opt.num_rows(), "{}", sql);
            for i in 0..raw.num_rows() {
                prop_assert_eq!(raw.row(i).unwrap(), opt.row(i).unwrap(), "{} row {}", sql, i);
            }
        }
    }
}
