//! Property-based oracle for morsel-driven execution: on **arbitrary**
//! NULL-mixed tables, every supported query shape must render
//! byte-identically (via `Table::to_ascii`) under serial and parallel
//! execution, for thread counts {1, 2, 4, 8} crossed with morsel sizes
//! {1, 7, 4096} — one row per morsel, a prime that never divides the
//! input evenly, and the default. Queries that error must produce the
//! **same** error on every decomposition.
//!
//! Floats are generated dyadic (sixteenths) so sums are exactly
//! representable and any summation order yields the same bits; what the
//! oracle then pins is everything else — row order, group order, NULL
//! handling, join match order, DISTINCT de-dup order, and error choice.

use lazyetl_query::exec::{execute, ExecContext};
use lazyetl_query::optimizer::optimize;
use lazyetl_query::planner::{plan_sql, TableSource};
use lazyetl_store::{Catalog, DataType, Field, Schema, Table, Value};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const MORSELS: [usize; 3] = [1, 7, 4096];

/// One generated row: every column independently nullable, floats dyadic.
type Row = (
    Option<i64>,    // id   BIGINT
    Option<i32>,    // q    INTEGER
    Option<f64>,    // v    DOUBLE (dyadic)
    Option<String>, // name VARCHAR
    Option<i64>,    // t    TIMESTAMP
    Option<bool>,   // flag BOOLEAN
);

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        prop::option::of(-1000i64..1000),
        prop::option::of(-50i32..50),
        prop::option::of((-16_000i32..16_000).prop_map(|x| f64::from(x) / 16.0)),
        prop::option::of("[a-d]{0,3}"),
        prop::option::of(0i64..5_000_000),
        prop::option::of(any::<bool>()),
    )
}

fn table_of(rows: &[Row]) -> Table {
    let schema = Schema::new(vec![
        Field::nullable("id", DataType::Int64),
        Field::nullable("q", DataType::Int32),
        Field::nullable("v", DataType::Float64),
        Field::nullable("name", DataType::Utf8),
        Field::nullable("t", DataType::Timestamp),
        Field::nullable("flag", DataType::Bool),
    ])
    .unwrap();
    let mut t = Table::empty(schema);
    for (id, q, v, name, ts, flag) in rows {
        t.append_row(vec![
            id.map_or(Value::Null, Value::Int64),
            q.map_or(Value::Null, Value::Int32),
            v.map_or(Value::Null, Value::Float64),
            name.clone().map_or(Value::Null, Value::Utf8),
            ts.map_or(Value::Null, Value::Timestamp),
            flag.map_or(Value::Null, Value::Bool),
        ])
        .unwrap();
    }
    t
}

/// The Figure-1-flavoured query mix, parameterized by generated bounds so
/// selectivities vary from empty to everything per case.
fn query_mix(bound: i64, fbound: f64, s: &str) -> Vec<String> {
    vec![
        // Fused filter/project pipelines.
        format!("SELECT id, v FROM t WHERE id > {bound}"),
        format!("SELECT id + q AS sq, v * 2.0 AS dv FROM t WHERE v < {fbound}"),
        format!("SELECT name FROM t WHERE name = '{s}' OR id <= {bound}"),
        format!("SELECT id, id / (q - q) AS div0 FROM t WHERE q IS NOT NULL"),
        // Aggregation: global, grouped on a NULLable key, multi-key,
        // DISTINCT, every function.
        "SELECT COUNT(*), COUNT(v), SUM(id), SUM(v), AVG(v), MIN(name), MAX(t) FROM t".into(),
        "SELECT name, COUNT(*) AS n, SUM(v) AS sv, MIN(id), MAX(id) FROM t GROUP BY name".into(),
        format!(
            "SELECT q, COUNT(DISTINCT name) AS dn, AVG(v) AS av FROM t \
             WHERE id > {bound} GROUP BY q"
        ),
        "SELECT flag, q, COUNT(*) FROM t GROUP BY flag, q".into(),
        format!(
            "SELECT name, COUNT(*) AS n FROM t GROUP BY name \
             HAVING COUNT(*) >= 2 ORDER BY n DESC, name LIMIT 5"
        ),
        // Joins: single generic key and packed integer key, self-joins so
        // one generated table exercises both sides.
        "SELECT a.id, b.id FROM t a JOIN t b ON a.name = b.name".into(),
        format!("SELECT a.id, b.q FROM t a JOIN t b ON a.q = b.q WHERE a.id > {bound}"),
        // Serial tails over parallel producers.
        "SELECT DISTINCT name, flag FROM t".into(),
        "SELECT id, v FROM t ORDER BY v DESC, id LIMIT 7".into(),
    ]
}

fn run(
    catalog: &Catalog,
    sql: &str,
    parallelism: usize,
    morsel_rows: usize,
) -> Result<String, String> {
    let src = TableSource::new(catalog);
    let plan =
        optimize(&plan_sql(sql, &src).map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    let ctx = ExecContext::new(catalog)
        .with_parallelism(parallelism)
        .with_morsel_rows(morsel_rows);
    execute(&plan, &ctx)
        .map(|t| t.to_ascii(usize::MAX))
        .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel ≡ serial, byte for byte, errors included, on arbitrary
    /// tables across the full thread × morsel grid.
    #[test]
    fn parallel_execution_matches_serial_oracle(
        rows in prop::collection::vec(row_strategy(), 0..80),
        bound in -1000i64..1000,
        fbound in -1000.0f64..1000.0,
        s in "[a-d]{0,2}",
    ) {
        let mut catalog = Catalog::new();
        catalog.create_table("t", table_of(&rows)).unwrap();
        for sql in query_mix(bound, fbound, &s) {
            let serial = run(&catalog, &sql, 1, 4096);
            for &threads in &THREADS {
                for &morsel in &MORSELS {
                    let got = run(&catalog, &sql, threads, morsel);
                    prop_assert_eq!(
                        &got,
                        &serial,
                        "{} diverged at threads={} morsel={}",
                        sql,
                        threads,
                        morsel
                    );
                }
            }
        }
    }

    /// Unorderable comparisons keep erroring identically when the failing
    /// rows land in different morsels.
    #[test]
    fn error_rows_fail_identically_anywhere_in_the_table(
        rows in prop::collection::vec(row_strategy(), 1..60),
    ) {
        let mut catalog = Catalog::new();
        catalog.create_table("t", table_of(&rows)).unwrap();
        // Timestamp-vs-float is unorderable whenever `t` is non-NULL; with
        // all-NULL `t` columns both paths must instead agree on success.
        let sql = "SELECT id FROM t WHERE t > 0.5";
        let serial = run(&catalog, sql, 1, 4096);
        for &threads in &THREADS {
            for &morsel in &MORSELS {
                let got = run(&catalog, sql, threads, morsel);
                prop_assert_eq!(&got, &serial, "threads={} morsel={}", threads, morsel);
            }
        }
    }
}
