//! Property tests for vectorized execution: the typed kernels are
//! checked against the row-at-a-time interpreter as the semantic oracle,
//! on arbitrary typed/NULL-mixed tables.
//!
//! Four properties:
//!
//! * every kernel-covered expression shape evaluates identically on both
//!   paths (values, NULLs, and errors);
//! * predicate masks agree bit for bit;
//! * the ≥3-integer-key join packing answers exactly like the generic
//!   `GroupKey` hash join;
//! * zone-map pruning never changes a query's result, only whether the
//!   scan runs.

use lazyetl_query::exec::{execute, ExecContext};
use lazyetl_query::expr::{
    eval_expr_opts, eval_expr_scalar, eval_predicate_mask_opts, eval_predicate_mask_scalar,
    BinaryOp, EvalOptions, Expr, UnaryOp,
};
use lazyetl_query::optimizer::optimize;
use lazyetl_query::planner::{plan_sql, TableSource};
use lazyetl_store::{Catalog, DataType, Field, Schema, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// One generated row: every column independently nullable.
type Row = (
    Option<i64>,    // id   BIGINT
    Option<i32>,    // q    INTEGER
    Option<f64>,    // v    DOUBLE
    Option<String>, // name VARCHAR
    Option<i64>,    // t    TIMESTAMP
    Option<bool>,   // flag BOOLEAN
);

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        prop::option::of(-1000i64..1000),
        prop::option::of(-50i32..50),
        prop::option::of(-1e6f64..1e6),
        prop::option::of("[a-d]{0,3}"),
        prop::option::of(0i64..5_000_000),
        prop::option::of(any::<bool>()),
    )
}

fn table_of(rows: &[Row]) -> Table {
    let schema = Schema::new(vec![
        Field::nullable("id", DataType::Int64),
        Field::nullable("q", DataType::Int32),
        Field::nullable("v", DataType::Float64),
        Field::nullable("name", DataType::Utf8),
        Field::nullable("t", DataType::Timestamp),
        Field::nullable("flag", DataType::Bool),
    ])
    .unwrap();
    let mut t = Table::empty(schema);
    for (id, q, v, name, ts, flag) in rows {
        t.append_row(vec![
            id.map_or(Value::Null, Value::Int64),
            q.map_or(Value::Null, Value::Int32),
            v.map_or(Value::Null, Value::Float64),
            name.clone().map_or(Value::Null, Value::Utf8),
            ts.map_or(Value::Null, Value::Timestamp),
            flag.map_or(Value::Null, Value::Bool),
        ])
        .unwrap();
    }
    t
}

/// The kernel-covered expression zoo, parameterized by generated
/// literals so min/max relationships vary per case.
fn expr_zoo(a: i64, b: i32, f: f64, s: &str) -> Vec<Expr> {
    let lit_i = Expr::lit(Value::Int64(a));
    let lit_q = Expr::lit(Value::Int32(b));
    let lit_f = Expr::lit(Value::Float64(f));
    let lit_s = Expr::lit(Value::Utf8(s.to_string()));
    vec![
        // Column-vs-literal comparisons, every column type, both orders.
        Expr::col("id").binary(BinaryOp::Gt, lit_i.clone()),
        lit_i.clone().binary(BinaryOp::GtEq, Expr::col("id")),
        Expr::col("q").binary(BinaryOp::LtEq, lit_q.clone()),
        Expr::col("q").binary(BinaryOp::NotEq, lit_i.clone()),
        Expr::col("v").binary(BinaryOp::Lt, lit_f.clone()),
        Expr::col("v").binary(BinaryOp::Eq, lit_i.clone()),
        Expr::col("name").binary(BinaryOp::Gt, lit_s.clone()),
        Expr::col("t").binary(BinaryOp::Lt, Expr::lit(Value::Timestamp(a.abs() * 1000))),
        // Pairings sql_cmp cannot order: both paths must error alike.
        Expr::col("t").binary(BinaryOp::Gt, lit_f.clone()),
        Expr::col("t").binary(BinaryOp::Gt, lit_q.clone()),
        Expr::col("flag").binary(BinaryOp::Eq, Expr::lit(Value::Bool(a % 2 == 0))),
        // Column-vs-column comparison and arithmetic (mixed widths).
        Expr::col("id").binary(BinaryOp::Lt, Expr::col("q")),
        Expr::col("v").binary(BinaryOp::GtEq, Expr::col("id")),
        Expr::col("id").binary(BinaryOp::Add, Expr::col("q")),
        Expr::col("v").binary(BinaryOp::Sub, Expr::col("q")),
        // Column-vs-literal arithmetic incl. the NULL-producing cases.
        Expr::col("id").binary(BinaryOp::Mul, lit_q.clone()),
        Expr::col("v").binary(BinaryOp::Div, lit_f.clone()),
        Expr::col("id").binary(BinaryOp::Div, Expr::lit(Value::Int64(0))),
        Expr::col("q").binary(BinaryOp::Mod, lit_q.clone()),
        lit_i.clone().binary(BinaryOp::Sub, Expr::col("id")),
        // Nested arithmetic feeding a comparison.
        Expr::col("v")
            .binary(BinaryOp::Mul, Expr::lit(Value::Float64(2.0)))
            .binary(BinaryOp::Add, Expr::lit(Value::Float64(1.0)))
            .binary(BinaryOp::Gt, lit_f.clone()),
        // Kleene combinators over nullable comparisons.
        Expr::col("id")
            .binary(BinaryOp::Gt, lit_i.clone())
            .and(Expr::col("v").binary(BinaryOp::Lt, lit_f.clone())),
        Expr::col("id").binary(BinaryOp::Gt, lit_i.clone()).binary(
            BinaryOp::Or,
            Expr::col("name").binary(BinaryOp::Eq, lit_s.clone()),
        ),
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::col("q").binary(BinaryOp::Gt, lit_q.clone())),
        },
        // BETWEEN (both polarities), IN lists, IS NULL.
        Expr::Between {
            expr: Box::new(Expr::col("id")),
            low: Box::new(Expr::lit(Value::Int64(a.min(0)))),
            high: Box::new(Expr::lit(Value::Int64(a.max(0)))),
            negated: false,
        },
        Expr::Between {
            expr: Box::new(Expr::col("v")),
            low: Box::new(Expr::lit(Value::Float64(-f.abs()))),
            high: Box::new(lit_f.clone()),
            negated: true,
        },
        Expr::InList {
            expr: Box::new(Expr::col("name")),
            list: vec![lit_s.clone(), Expr::lit(Value::Utf8("ab".into()))],
            negated: false,
        },
        Expr::InList {
            expr: Box::new(Expr::col("id")),
            list: vec![lit_i.clone(), Expr::lit(Value::Int64(0)), lit_q.clone()],
            negated: true,
        },
        Expr::IsNull {
            expr: Box::new(Expr::col("v")),
            negated: false,
        },
        Expr::IsNull {
            expr: Box::new(Expr::col("name")),
            negated: true,
        },
    ]
}

/// Cell-wise equality of two evaluation outputs (cross-width numeric
/// equality is fine: `Value`'s `PartialEq` goes through `sql_eq`).
fn columns_agree(
    vec_col: &lazyetl_store::Column,
    sca_col: &lazyetl_store::Column,
) -> std::result::Result<(), String> {
    if vec_col.len() != sca_col.len() {
        return Err(format!("lengths {} vs {}", vec_col.len(), sca_col.len()));
    }
    for i in 0..vec_col.len() {
        let a = vec_col.get(i).map_err(|e| e.to_string())?;
        let b = sca_col.get(i).map_err(|e| e.to_string())?;
        if a.is_null() != b.is_null() || (!a.is_null() && a != b) {
            return Err(format!("row {i}: vectorized {a} vs scalar {b}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vectorized evaluation ≡ the scalar interpreter, values and errors.
    #[test]
    fn kernels_match_scalar_oracle(
        rows in prop::collection::vec(row_strategy(), 0..48),
        a in -100i64..100,
        b in -10i32..10,
        f in -100.0f64..100.0,
        s in "[a-d]{0,2}",
    ) {
        let t = table_of(&rows);
        let opts = EvalOptions::default();
        for e in expr_zoo(a, b, f, &s) {
            let vectorized = eval_expr_opts(&e, &t, &opts);
            let scalar = eval_expr_scalar(&e, &t);
            match (vectorized, scalar) {
                (Ok(vc), Ok(sc)) => {
                    if let Err(msg) = columns_agree(&vc, &sc) {
                        prop_assert!(false, "expr {}: {}", e, msg);
                    }
                }
                (Err(_), Err(_)) => {} // both reject identically-shaped input
                (v, s) => prop_assert!(
                    false,
                    "expr {}: one path failed ({:?} vs {:?})",
                    e,
                    v.is_ok(),
                    s.is_ok()
                ),
            }
        }
    }

    /// Predicate masks agree bit for bit (NULL → not selected).
    #[test]
    fn predicate_masks_match(
        rows in prop::collection::vec(row_strategy(), 0..48),
        a in -100i64..100,
        b in -10i32..10,
        f in -100.0f64..100.0,
        s in "[a-d]{0,2}",
    ) {
        let t = table_of(&rows);
        let opts = EvalOptions::default();
        for e in expr_zoo(a, b, f, &s) {
            let vectorized = eval_predicate_mask_opts(&e, &t, &opts);
            let scalar = eval_predicate_mask_scalar(&e, &t);
            match (vectorized, scalar) {
                (Ok(v), Ok(s)) => prop_assert_eq!(v, s, "expr {}", e),
                (Err(_), Err(_)) => {}
                (v, s) => prop_assert!(
                    false,
                    "expr {}: one path failed ({:?} vs {:?})",
                    e,
                    v.is_ok(),
                    s.is_ok()
                ),
            }
        }
    }

    /// The ≥3-integer-key packed hash join ≡ the generic GroupKey join,
    /// including NULL keys (which never match) and negative key ranges
    /// (which exercise the offset encoding).
    #[test]
    fn multi_key_join_packing_matches_generic(
        left in prop::collection::vec(
            (prop::option::of(-3i64..3), 0i64..4, -1_000_000i64..-999_990, 0i64..100),
            0..24,
        ),
        right in prop::collection::vec(
            (prop::option::of(-3i64..3), 0i64..4, -1_000_000i64..-999_990, 100i64..200),
            0..24,
        ),
    ) {
        let schema = Schema::new(vec![
            Field::nullable("k1", DataType::Int64),
            Field::new("k2", DataType::Int64),
            Field::new("k3", DataType::Int64),
            Field::new("payload", DataType::Int64),
        ])
        .unwrap();
        let fill = |rows: &[(Option<i64>, i64, i64, i64)]| {
            let mut t = Table::empty(schema.clone());
            for &(k1, k2, k3, p) in rows {
                t.append_row(vec![
                    k1.map_or(Value::Null, Value::Int64),
                    Value::Int64(k2),
                    Value::Int64(k3),
                    Value::Int64(p),
                ])
                .unwrap();
            }
            t
        };
        let mut catalog = Catalog::new();
        catalog.create_table("a", fill(&left)).unwrap();
        catalog.create_table("b", fill(&right)).unwrap();
        let src = TableSource::new(&catalog);
        let sql = "SELECT a.payload, b.payload FROM a JOIN b \
                   ON a.k1 = b.k1 AND a.k2 = b.k2 AND a.k3 = b.k3";
        let plan = optimize(&plan_sql(sql, &src).unwrap()).unwrap();
        let packed = execute(&plan, &ExecContext::new(&catalog)).unwrap();
        let generic_ctx = ExecContext {
            vectorized: false,
            ..ExecContext::new(&catalog)
        };
        let generic = execute(&plan, &generic_ctx).unwrap();
        prop_assert_eq!(packed.num_rows(), generic.num_rows());
        for i in 0..packed.num_rows() {
            prop_assert_eq!(
                packed.row(i).unwrap(),
                generic.row(i).unwrap(),
                "row {} diverged",
                i
            );
        }
    }

    /// Zone-map pruning ≡ no pruning, on predicates straddling, inside,
    /// and fully outside the generated value ranges.
    #[test]
    fn zone_map_pruning_preserves_results(
        rows in prop::collection::vec(row_strategy(), 0..48),
        bound in -2000i64..2000,
        fbound in -2e6f64..2e6,
        sbound in "[a-e]{0,2}",
    ) {
        let mut catalog = Catalog::new();
        catalog.create_table("t", table_of(&rows)).unwrap();
        let src = TableSource::new(&catalog);
        let queries = [
            format!("SELECT id, v FROM t WHERE id > {bound}"),
            format!("SELECT id, v FROM t WHERE id <= {bound} AND v < {fbound}"),
            format!("SELECT name FROM t WHERE name = '{sbound}'"),
            format!("SELECT id FROM t WHERE id BETWEEN {bound} AND {}", bound + 40),
            format!("SELECT id FROM t WHERE id IN ({bound}, {}, 0)", bound + 1),
            format!("SELECT q FROM t WHERE q <> {bound}"),
        ];
        for sql in &queries {
            let plan = optimize(&plan_sql(sql, &src).unwrap()).unwrap();
            let pruned = execute(&plan, &ExecContext::new(&catalog)).unwrap();
            let unpruned_ctx = ExecContext {
                zone_map_pruning: false,
                ..ExecContext::new(&catalog)
            };
            let unpruned: Arc<Table> = execute(&plan, &unpruned_ctx).unwrap();
            prop_assert_eq!(pruned.num_rows(), unpruned.num_rows(), "{}", sql);
            for i in 0..pruned.num_rows() {
                prop_assert_eq!(
                    pruned.row(i).unwrap(),
                    unpruned.row(i).unwrap(),
                    "{} row {}",
                    sql,
                    i
                );
            }
        }
    }

    /// NaN regression: a float column holding NaN (either sign) must
    /// never be zone-map-pruned into a wrong answer. Under the engine's
    /// `total_cmp` comparison semantics a +NaN row satisfies `v > lit`
    /// for every literal and a -NaN row satisfies `v < lit`, while the
    /// statistics pass excludes NaN from `[min, max]` — without the
    /// taint guard, a narrow finite range would "prove" such filters
    /// empty and silently drop the NaN rows.
    #[test]
    fn zone_map_pruning_is_nan_safe(
        finite in prop::collection::vec(prop::option::of(-100.0f64..100.0), 0..24),
        nan_rows in prop::collection::vec(any::<bool>(), 1..4),
        bound in -1e7f64..1e7,
    ) {
        let schema = Schema::new(vec![Field::nullable("v", DataType::Float64)]).unwrap();
        let mut t = Table::empty(schema);
        for v in &finite {
            t.append_row(vec![v.map_or(Value::Null, Value::Float64)]).unwrap();
        }
        for negative in &nan_rows {
            let nan = if *negative { -f64::NAN } else { f64::NAN };
            t.append_row(vec![Value::Float64(nan)]).unwrap();
        }
        let mut catalog = Catalog::new();
        catalog.create_table("t", t).unwrap();
        let src = TableSource::new(&catalog);
        let queries = [
            format!("SELECT v FROM t WHERE v > {bound}"),
            format!("SELECT v FROM t WHERE v < {bound}"),
            format!("SELECT v FROM t WHERE v >= {bound}"),
            format!("SELECT v FROM t WHERE v <= {bound}"),
            format!("SELECT v FROM t WHERE v = {bound}"),
            format!("SELECT v FROM t WHERE v <> {bound}"),
            format!("SELECT v FROM t WHERE v BETWEEN {bound} AND {}", bound + 1.0),
        ];
        for sql in &queries {
            let plan = optimize(&plan_sql(sql, &src).unwrap()).unwrap();
            let pruned = execute(&plan, &ExecContext::new(&catalog)).unwrap();
            let unpruned_ctx = ExecContext {
                zone_map_pruning: false,
                ..ExecContext::new(&catalog)
            };
            let unpruned: Arc<Table> = execute(&plan, &unpruned_ctx).unwrap();
            prop_assert_eq!(pruned.num_rows(), unpruned.num_rows(), "{}", sql);
            for i in 0..pruned.num_rows() {
                prop_assert_eq!(
                    pruned.row(i).unwrap(),
                    unpruned.row(i).unwrap(),
                    "{} row {}",
                    sql,
                    i
                );
            }
        }
    }
}
