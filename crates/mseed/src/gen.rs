//! Deterministic synthetic seismogram and repository generation.
//!
//! The paper's demo runs against mSEED repositories fetched from ORFEUS.
//! Those are not redistributable, so this module synthesizes repositories
//! with the same *shape*: a directory tree of waveform files (MiniSEED
//! with Steim-compressed records by default; optionally SAC or a mixture,
//! see [`RepoFormat`]), one file per (stream, time window).
//! Signals are a colored-noise floor with injected seismic events
//! (exponentially decaying wavelets), so STA/LTA event hunting — the demo's
//! analysis task — has real structure to find, and Steim compression sees
//! realistic difference distributions (small diffs in quiet stretches,
//! large ones during events).
//!
//! Everything is seeded and reproducible: the same [`GeneratorConfig`]
//! always yields byte-identical repositories.

use crate::btime::Timestamp;
use crate::encoding::{DataEncoding, SamplesRef};
use crate::error::Result;
use crate::inventory::{default_inventory, Station, BROADBAND_CHANNELS};
use crate::record::SourceId;
use crate::write::{write_records, WriteOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

/// An injected synthetic seismic event (ground truth for detector tests).
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedEvent {
    /// Stream the event appears in.
    pub source: SourceId,
    /// Onset time.
    pub onset: Timestamp,
    /// Peak amplitude in counts.
    pub amplitude: f64,
    /// Dominant frequency in Hz.
    pub frequency: f64,
    /// Decay time constant in seconds.
    pub decay: f64,
}

/// Which file format(s) a generated repository uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepoFormat {
    /// Every stream as MiniSEED (the paper's setting).
    #[default]
    MseedOnly,
    /// Every stream as SAC.
    SacOnly,
    /// Every stream as lazyetl CSV (see [`crate::csv`]).
    CsvOnly,
    /// Alternate formats per stream (exercises the format registry).
    Mixed,
}

/// Configuration for synthetic repository generation.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Stations to generate; defaults to [`default_inventory`].
    pub stations: Vec<Station>,
    /// Channels per station.
    pub channels: Vec<String>,
    /// First file start time.
    pub start: Timestamp,
    /// Duration covered by each file, in seconds.
    pub file_duration_secs: u32,
    /// Number of consecutive files per stream.
    pub files_per_stream: u32,
    /// Sample rate in Hz (must satisfy [`crate::write::rate_to_factor`]).
    pub sample_rate: f64,
    /// Record length in bytes.
    pub record_length: usize,
    /// Payload encoding.
    pub encoding: DataEncoding,
    /// RMS amplitude of the background noise in counts.
    pub noise_amplitude: f64,
    /// Expected number of events per file (Poisson-ish). These are
    /// *local* events: each stream draws its own, independently.
    pub events_per_file: f64,
    /// Number of **network-wide** events: earthquakes every station
    /// records, with per-stream onset jitter (±1 s, simulating travel-time
    /// differences) and amplitude scaling. Feeds coincidence-triggering
    /// workloads; `0` (the default) leaves output byte-identical to
    /// configurations predating this knob.
    pub network_events: usize,
    /// RNG seed; equal seeds give byte-identical repositories.
    pub seed: u64,
    /// File format selection.
    pub format: RepoFormat,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            stations: default_inventory(),
            channels: BROADBAND_CHANNELS.iter().map(|s| s.to_string()).collect(),
            start: Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0),
            file_duration_secs: 600,
            files_per_stream: 4,
            sample_rate: 40.0,
            record_length: 4096,
            encoding: DataEncoding::Steim2,
            noise_amplitude: 120.0,
            events_per_file: 0.6,
            network_events: 0,
            seed: 0x5EED_CAFE,
            format: RepoFormat::default(),
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for unit tests (2 stations, short files).
    pub fn tiny(seed: u64) -> GeneratorConfig {
        let inv = default_inventory();
        GeneratorConfig {
            stations: vec![inv[0].clone(), inv[4].clone()], // NL.HGN + KO.ISK
            channels: vec!["BHZ".into(), "BHE".into()],
            file_duration_secs: 30,
            files_per_stream: 2,
            seed,
            ..Default::default()
        }
    }

    /// Samples per generated file.
    pub fn samples_per_file(&self) -> usize {
        (self.file_duration_secs as f64 * self.sample_rate) as usize
    }

    /// Total number of files this configuration will generate.
    pub fn total_files(&self) -> usize {
        self.stations.len() * self.channels.len() * self.files_per_stream as usize
    }
}

/// One generated file plus its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedFile {
    /// Path of the written file.
    pub path: PathBuf,
    /// Stream stored in the file.
    pub source: SourceId,
    /// First sample time.
    pub start: Timestamp,
    /// Exclusive end time.
    pub end: Timestamp,
    /// File size in bytes.
    pub size: u64,
    /// Number of samples written.
    pub num_samples: usize,
}

/// The full output of a generation run.
#[derive(Debug, Clone, Default)]
pub struct GeneratedRepository {
    /// Every file written, in generation order.
    pub files: Vec<GeneratedFile>,
    /// Ground-truth injected events across all streams.
    pub events: Vec<InjectedEvent>,
    /// Total bytes written.
    pub total_bytes: u64,
    /// Total samples written.
    pub total_samples: u64,
}

/// Synthesize one stream segment: AR(1) colored noise plus decaying
/// sinusoid bursts for each event onset within the window.
pub fn synthesize_segment(
    rng: &mut SmallRng,
    n: usize,
    sample_rate: f64,
    noise_amplitude: f64,
    events: &[(usize, f64, f64, f64)], // (onset sample, amplitude, freq, decay)
) -> Vec<i32> {
    let mut out = Vec::with_capacity(n);
    let mut noise = 0.0f64;
    // AR(1) with coefficient 0.92 gives a reddish microseism-like floor.
    let innovation = noise_amplitude * (1.0 - 0.92f64 * 0.92).sqrt();
    for i in 0..n {
        noise = 0.92 * noise + innovation * (rng.gen::<f64>() * 2.0 - 1.0) * 1.732;
        let mut v = noise;
        for &(onset, amp, freq, decay) in events {
            if i >= onset {
                let t = (i - onset) as f64 / sample_rate;
                v += amp * (-t / decay).exp() * (2.0 * std::f64::consts::PI * freq * t).sin();
            }
        }
        out.push(v.round().clamp(i32::MIN as f64, i32::MAX as f64) as i32);
    }
    out
}

/// Relative path (inside the repository root) for a stream's n-th file.
///
/// Layout: `NET/STA/NET.STA.LOC.CHA.YYYY.DDD.HHMM.mseed` — metadata in the
/// file name, which the paper notes makes file-level metadata available
/// without even opening the file.
pub fn file_rel_path(source: &SourceId, start: Timestamp) -> PathBuf {
    file_rel_path_ext(source, start, "mseed")
}

/// Relative path with an explicit file extension (`mseed` or `sac`).
pub fn file_rel_path_ext(source: &SourceId, start: Timestamp, ext: &str) -> PathBuf {
    let (y, m, d, h, mi, s, _) = start.to_civil();
    let doy = crate::btime::BTime::day_of_year_for(y, m, d);
    let loc = if source.location.is_empty() {
        "--"
    } else {
        &source.location
    };
    PathBuf::from(&source.network)
        .join(&source.station)
        .join(format!(
            "{}.{}.{}.{}.{:04}.{:03}.{:02}{:02}{:02}.{ext}",
            source.network, source.station, loc, source.channel, y, doy, h, mi, s
        ))
}

/// Time-domain parameters of one network-wide event, before per-stream
/// jitter is applied.
struct NetworkEventSpec {
    /// Offset of the onset from the repository start, in µs.
    onset_offset_us: i64,
    /// Amplitude as a multiple of the noise floor.
    amp_factor: f64,
    frequency: f64,
    decay: f64,
}

/// Draw the network-wide event specs: onsets spread over the middle 80%
/// of the covered time span so every stream's files contain them.
fn draw_network_events(config: &GeneratorConfig) -> Vec<NetworkEventSpec> {
    if config.network_events == 0 {
        return Vec::new();
    }
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    (config.seed, "network-events").hash(&mut hasher);
    let mut rng = SmallRng::seed_from_u64(hasher.finish());
    let span_us = config.files_per_stream as i64 * config.file_duration_secs as i64 * 1_000_000;
    let lo = span_us / 10;
    let hi = span_us - span_us / 10;
    (0..config.network_events)
        .map(|_| NetworkEventSpec {
            onset_offset_us: rng.gen_range(lo..hi.max(lo + 1)),
            amp_factor: rng.gen_range(12.0..45.0),
            frequency: rng.gen_range(1.0..6.0),
            decay: rng.gen_range(2.0..10.0),
        })
        .collect()
}

/// Generate a repository under `root`. Existing files are overwritten.
pub fn generate_repository(root: &Path, config: &GeneratorConfig) -> Result<GeneratedRepository> {
    let mut out = GeneratedRepository::default();
    let n = config.samples_per_file();
    let file_span_us = (config.file_duration_secs as i64) * 1_000_000;
    let network_events = draw_network_events(config);
    let mut stream_index = 0usize;
    for station in &config.stations {
        for channel in &config.channels {
            let source = station.source(channel);
            let ext = match config.format {
                RepoFormat::MseedOnly => "mseed",
                RepoFormat::SacOnly => "sac",
                RepoFormat::CsvOnly => "csv",
                RepoFormat::Mixed => {
                    if stream_index % 2 == 1 {
                        "sac"
                    } else {
                        "mseed"
                    }
                }
            };
            stream_index += 1;
            // Stream-specific deterministic RNG: stable regardless of
            // station iteration order changes elsewhere.
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            use std::hash::{Hash, Hasher};
            (
                config.seed,
                &source.network,
                &source.station,
                &source.channel,
            )
                .hash(&mut hasher);
            let mut rng = SmallRng::seed_from_u64(hasher.finish());
            for file_idx in 0..config.files_per_stream {
                let start = config.start.add_micros(file_idx as i64 * file_span_us);
                let file_offset_us = file_idx as i64 * file_span_us;
                let mut events = Vec::new();
                // Network-wide events falling inside this file's window,
                // with per-(event, stream) deterministic jitter.
                for (k, spec) in network_events.iter().enumerate() {
                    let mut hasher = std::collections::hash_map::DefaultHasher::new();
                    use std::hash::{Hash, Hasher};
                    (
                        config.seed,
                        "netev",
                        k,
                        &source.network,
                        &source.station,
                        &source.channel,
                    )
                        .hash(&mut hasher);
                    let mut ev_rng = SmallRng::seed_from_u64(hasher.finish());
                    let jitter_us = ev_rng.gen_range(-1_000_000i64..=1_000_000);
                    let onset_us = spec.onset_offset_us + jitter_us;
                    if onset_us < file_offset_us || onset_us >= file_offset_us + file_span_us {
                        continue;
                    }
                    let onset =
                        ((onset_us - file_offset_us) as f64 / 1e6 * config.sample_rate) as usize;
                    if onset >= n {
                        continue;
                    }
                    let amplitude =
                        config.noise_amplitude * spec.amp_factor * ev_rng.gen_range(0.6..1.4);
                    events.push((onset, amplitude, spec.frequency, spec.decay));
                    out.events.push(InjectedEvent {
                        source: source.clone(),
                        onset: start.add_micros((onset as f64 / config.sample_rate * 1e6) as i64),
                        amplitude,
                        frequency: spec.frequency,
                        decay: spec.decay,
                    });
                }
                // Poisson(events_per_file) approximated by repeated Bernoulli.
                let mut budget = config.events_per_file;
                while budget > 0.0 {
                    let p = budget.min(1.0);
                    if rng.gen::<f64>() < p {
                        let onset = rng.gen_range(0..n.max(1));
                        let amplitude = config.noise_amplitude * rng.gen_range(8.0..40.0);
                        let freq = rng.gen_range(1.0..6.0);
                        let decay = rng.gen_range(2.0..10.0);
                        events.push((onset, amplitude, freq, decay));
                        out.events.push(InjectedEvent {
                            source: source.clone(),
                            onset: start
                                .add_micros((onset as f64 / config.sample_rate * 1e6) as i64),
                            amplitude,
                            frequency: freq,
                            decay,
                        });
                    }
                    budget -= 1.0;
                }
                let samples = synthesize_segment(
                    &mut rng,
                    n,
                    config.sample_rate,
                    config.noise_amplitude,
                    &events,
                );
                let rel = file_rel_path_ext(&source, start, ext);
                let path = root.join(rel);
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                let bytes = match ext {
                    "sac" => {
                        let floats: Vec<f32> = samples.iter().map(|&v| v as f32).collect();
                        crate::sac::write_sac_bytes(
                            &source,
                            start,
                            config.sample_rate,
                            &floats,
                            crate::sac::SacByteOrder::Little,
                        )?
                    }
                    "csv" => {
                        crate::csv::write_csv_bytes(&source, start, config.sample_rate, &samples)?
                    }
                    _ => {
                        let opts = WriteOptions {
                            record_length: config.record_length,
                            encoding: config.encoding,
                            ..Default::default()
                        };
                        write_records(
                            &source,
                            start,
                            config.sample_rate,
                            SamplesRef::Ints(&samples),
                            &opts,
                        )?
                    }
                };
                std::fs::write(&path, &bytes)?;
                out.total_bytes += bytes.len() as u64;
                out.total_samples += samples.len() as u64;
                out.files.push(GeneratedFile {
                    path,
                    source: source.clone(),
                    start,
                    end: start.add_micros(file_span_us),
                    size: bytes.len() as u64,
                    num_samples: samples.len(),
                });
            }
        }
    }
    Ok(out)
}

/// Append `extra_secs` of fresh waveform to an existing generated file,
/// emulating a repository update (new data arriving at a station).
///
/// Returns the number of samples appended.
#[allow(clippy::too_many_arguments)]
pub fn append_to_file(
    path: &Path,
    source: &SourceId,
    sample_rate: f64,
    extra_secs: u32,
    noise_amplitude: f64,
    seed: u64,
    record_length: usize,
    encoding: DataEncoding,
) -> Result<usize> {
    let existing = crate::read::scan_metadata_file(path)?;
    let start = existing.max_end().unwrap_or(Timestamp(0));
    let next_seq = existing
        .records
        .iter()
        .map(|r| r.sequence_number)
        .max()
        .unwrap_or(0)
        + 1;
    let n = (extra_secs as f64 * sample_rate) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let samples = synthesize_segment(&mut rng, n, sample_rate, noise_amplitude, &[]);
    let opts = WriteOptions {
        record_length,
        encoding,
        first_sequence: next_seq,
        ..Default::default()
    };
    let bytes = write_records(
        source,
        start,
        sample_rate,
        SamplesRef::Ints(&samples),
        &opts,
    )?;
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    f.write_all(&bytes)?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::{read_file, scan_metadata_file};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lazyetl_gen_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::tiny(7);
        let d1 = tmpdir("det1");
        let d2 = tmpdir("det2");
        let r1 = generate_repository(&d1, &cfg).unwrap();
        let r2 = generate_repository(&d2, &cfg).unwrap();
        assert_eq!(r1.total_bytes, r2.total_bytes);
        assert_eq!(r1.files.len(), r2.files.len());
        for (f1, f2) in r1.files.iter().zip(&r2.files) {
            let b1 = std::fs::read(&f1.path).unwrap();
            let b2 = std::fs::read(&f2.path).unwrap();
            assert_eq!(b1, b2, "{} differs", f1.path.display());
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }

    #[test]
    fn generated_files_parse_and_cover_window() {
        let cfg = GeneratorConfig::tiny(11);
        let dir = tmpdir("parse");
        let rep = generate_repository(&dir, &cfg).unwrap();
        assert_eq!(rep.files.len(), cfg.total_files());
        for gf in &rep.files {
            let recs = read_file(&gf.path).unwrap();
            assert!(!recs.is_empty());
            let total: usize = recs.iter().map(|r| r.header.num_samples as usize).sum();
            assert_eq!(total, gf.num_samples);
            let first = recs[0].start_timestamp().unwrap();
            assert_eq!(first, gf.start);
            for r in &recs {
                assert_eq!(r.header.source, gf.source);
                r.decode_samples().unwrap();
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn events_are_visible_above_noise() {
        let mut rng = SmallRng::seed_from_u64(3);
        let quiet = synthesize_segment(&mut rng, 4000, 40.0, 100.0, &[]);
        let mut rng = SmallRng::seed_from_u64(3);
        let eventful = synthesize_segment(&mut rng, 4000, 40.0, 100.0, &[(2000, 4000.0, 3.0, 5.0)]);
        let peak_quiet = quiet.iter().map(|v| v.abs()).max().unwrap();
        let peak_event = eventful[2000..].iter().map(|v| v.abs()).max().unwrap();
        assert!(
            peak_event > peak_quiet * 3,
            "event peak {peak_event} vs quiet {peak_quiet}"
        );
    }

    #[test]
    fn filename_encodes_metadata() {
        let src = SourceId::new("NL", "HGN", "", "BHZ").unwrap();
        let ts = Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0);
        let p = file_rel_path(&src, ts);
        let s = p.to_string_lossy();
        assert!(s.contains("NL/HGN/"));
        assert!(s.contains("NL.HGN.--.BHZ.2010.012.220000.mseed"));
    }

    #[test]
    fn append_extends_time_range() {
        let cfg = GeneratorConfig::tiny(5);
        let dir = tmpdir("append");
        let rep = generate_repository(&dir, &cfg).unwrap();
        let gf = &rep.files[0];
        let before = scan_metadata_file(&gf.path).unwrap();
        let added = append_to_file(
            &gf.path,
            &gf.source,
            cfg.sample_rate,
            10,
            cfg.noise_amplitude,
            99,
            cfg.record_length,
            cfg.encoding,
        )
        .unwrap();
        assert_eq!(added, 400);
        let after = scan_metadata_file(&gf.path).unwrap();
        assert!(after.records.len() > before.records.len());
        assert!(after.max_end().unwrap() > before.max_end().unwrap());
        assert_eq!(after.total_samples(), before.total_samples() + 400);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn network_events_hit_every_stream() {
        let cfg = GeneratorConfig {
            events_per_file: 0.0, // isolate the network events
            network_events: 2,
            file_duration_secs: 120,
            files_per_stream: 2,
            ..GeneratorConfig::tiny(77)
        };
        let dir = tmpdir("netev");
        let rep = generate_repository(&dir, &cfg).unwrap();
        let streams = cfg.stations.len() * cfg.channels.len();
        assert_eq!(
            rep.events.len(),
            2 * streams,
            "each network event appears once per stream"
        );
        // Onsets of the same event agree across streams within the ±1 s
        // jitter (compare per-stream onsets of event 0 = earliest onset
        // per stream).
        let mut per_stream_first: Vec<i64> = Vec::new();
        for st in &cfg.stations {
            for ch in &cfg.channels {
                let mut onsets: Vec<i64> = rep
                    .events
                    .iter()
                    .filter(|e| e.source.station == st.station && e.source.channel == *ch)
                    .map(|e| e.onset.0)
                    .collect();
                assert_eq!(onsets.len(), 2);
                onsets.sort();
                per_stream_first.push(onsets[0]);
            }
        }
        let min = per_stream_first.iter().min().unwrap();
        let max = per_stream_first.iter().max().unwrap();
        assert!(
            max - min <= 2_100_000,
            "travel-time jitter bounded by ±1 s (+sampling): {per_stream_first:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn network_events_deterministic_per_seed() {
        let cfg = GeneratorConfig {
            network_events: 3,
            ..GeneratorConfig::tiny(123)
        };
        let d1 = tmpdir("netev_d1");
        let d2 = tmpdir("netev_d2");
        let r1 = generate_repository(&d1, &cfg).unwrap();
        let r2 = generate_repository(&d2, &cfg).unwrap();
        assert_eq!(r1.events.len(), r2.events.len());
        for (a, b) in r1.events.iter().zip(&r2.events) {
            assert_eq!(a.onset, b.onset);
            assert_eq!(a.amplitude, b.amplitude);
        }
        // And the file bytes themselves are identical.
        for (fa, fb) in r1.files.iter().zip(&r2.files) {
            assert_eq!(
                std::fs::read(&fa.path).unwrap(),
                std::fs::read(&fb.path).unwrap()
            );
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }

    #[test]
    fn zero_network_events_changes_nothing() {
        let base = GeneratorConfig::tiny(9);
        let with_field = GeneratorConfig {
            network_events: 0,
            ..base.clone()
        };
        let d1 = tmpdir("netev_z1");
        let d2 = tmpdir("netev_z2");
        generate_repository(&d1, &base).unwrap();
        generate_repository(&d2, &with_field).unwrap();
        let walk = |root: &Path| -> Vec<PathBuf> {
            let mut v: Vec<PathBuf> = walkdir(root);
            v.sort();
            v
        };
        fn walkdir(root: &Path) -> Vec<PathBuf> {
            let mut out = Vec::new();
            for e in std::fs::read_dir(root).unwrap().flatten() {
                let p = e.path();
                if p.is_dir() {
                    out.extend(walkdir(&p));
                } else {
                    out.push(p);
                }
            }
            out
        }
        let f1 = walk(&d1);
        let f2 = walk(&d2);
        assert_eq!(f1.len(), f2.len());
        for (a, b) in f1.iter().zip(&f2) {
            assert_eq!(std::fs::read(a).unwrap(), std::fs::read(b).unwrap());
        }
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }
}
