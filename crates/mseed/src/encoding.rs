//! Data-payload encodings and the plain (non-Steim) codecs.
//!
//! SEED stores the payload encoding as a one-byte code in Blockette 1000.
//! This module defines the [`DataEncoding`] enum for the codes this library
//! supports and implements the uncompressed big-endian codecs; the Steim
//! codecs live in [`crate::steim`].

use crate::error::{MseedError, Result};
use crate::steim;

/// Waveform payload encodings supported by this library.
///
/// The numeric values are the SEED encoding-format codes carried in
/// Blockette 1000 field 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataEncoding {
    /// 16-bit big-endian two's-complement integers (code 1).
    Int16 = 1,
    /// 32-bit big-endian two's-complement integers (code 3).
    Int32 = 3,
    /// IEEE-754 single precision, big-endian (code 4).
    Float32 = 4,
    /// IEEE-754 double precision, big-endian (code 5).
    Float64 = 5,
    /// Steim-1 compressed integers (code 10).
    Steim1 = 10,
    /// Steim-2 compressed integers (code 11).
    Steim2 = 11,
}

impl DataEncoding {
    /// Map a SEED encoding-format code to a supported encoding.
    pub fn from_code(code: u8) -> Result<DataEncoding> {
        Ok(match code {
            1 => DataEncoding::Int16,
            3 => DataEncoding::Int32,
            4 => DataEncoding::Float32,
            5 => DataEncoding::Float64,
            10 => DataEncoding::Steim1,
            11 => DataEncoding::Steim2,
            other => {
                return Err(MseedError::InvalidField {
                    field: "blockette 1000 encoding format",
                    detail: format!("unsupported encoding code {other}"),
                })
            }
        })
    }

    /// The SEED encoding-format code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Human-readable codec name.
    pub fn name(self) -> &'static str {
        match self {
            DataEncoding::Int16 => "INT16",
            DataEncoding::Int32 => "INT32",
            DataEncoding::Float32 => "FLOAT32",
            DataEncoding::Float64 => "FLOAT64",
            DataEncoding::Steim1 => "STEIM1",
            DataEncoding::Steim2 => "STEIM2",
        }
    }

    /// True for the Steim family (frame-structured payloads).
    pub fn is_compressed(self) -> bool {
        matches!(self, DataEncoding::Steim1 | DataEncoding::Steim2)
    }
}

/// Decoded waveform samples.
///
/// Integer and floating payloads are kept in their native width; the
/// warehouse's D table stores `sample_value` as `f64`, and [`Samples::to_f64`]
/// performs that widening exactly once at load time (a record-level
/// transformation in ETL terms).
#[derive(Debug, Clone, PartialEq)]
pub enum Samples {
    /// Integer samples (Int16/Int32/Steim payloads decode to this).
    Ints(Vec<i32>),
    /// Floating-point samples (Float32/Float64 payloads).
    Floats(Vec<f64>),
}

impl Samples {
    /// Number of samples.
    pub fn len(&self) -> usize {
        match self {
            Samples::Ints(v) => v.len(),
            Samples::Floats(v) => v.len(),
        }
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Widen to `f64` values (the warehouse representation).
    pub fn to_f64(&self) -> Vec<f64> {
        match self {
            Samples::Ints(v) => v.iter().map(|&x| x as f64).collect(),
            Samples::Floats(v) => v.clone(),
        }
    }

    /// Borrow integer samples, if this is an integer payload.
    pub fn as_ints(&self) -> Option<&[i32]> {
        match self {
            Samples::Ints(v) => Some(v),
            Samples::Floats(_) => None,
        }
    }
}

/// Result of encoding a prefix of a sample slice into a bounded payload.
#[derive(Debug, Clone)]
pub struct EncodedPayload {
    /// Raw payload bytes (whole frames for Steim encodings).
    pub bytes: Vec<u8>,
    /// Samples consumed from the input.
    pub samples_encoded: usize,
}

/// Encode as many samples as fit into `max_bytes` with the given encoding.
///
/// For Steim encodings `max_bytes` is rounded down to whole 64-byte frames.
/// `prev` seeds the differencer for Steim (last sample of previous record).
pub fn encode(
    encoding: DataEncoding,
    samples: &SamplesRef<'_>,
    prev: i32,
    max_bytes: usize,
) -> Result<EncodedPayload> {
    match (encoding, samples) {
        (DataEncoding::Int16, SamplesRef::Ints(v)) => {
            let n = (max_bytes / 2).min(v.len());
            let mut bytes = Vec::with_capacity(n * 2);
            for &s in &v[..n] {
                let narrowed = i16::try_from(s).map_err(|_| MseedError::Unrepresentable {
                    encoding: "INT16",
                    value: s as i64,
                })?;
                bytes.extend_from_slice(&narrowed.to_be_bytes());
            }
            Ok(EncodedPayload {
                bytes,
                samples_encoded: n,
            })
        }
        (DataEncoding::Int32, SamplesRef::Ints(v)) => {
            let n = (max_bytes / 4).min(v.len());
            let mut bytes = Vec::with_capacity(n * 4);
            for &s in &v[..n] {
                bytes.extend_from_slice(&s.to_be_bytes());
            }
            Ok(EncodedPayload {
                bytes,
                samples_encoded: n,
            })
        }
        (DataEncoding::Float32, SamplesRef::Floats(v)) => {
            let n = (max_bytes / 4).min(v.len());
            let mut bytes = Vec::with_capacity(n * 4);
            for &s in &v[..n] {
                bytes.extend_from_slice(&(s as f32).to_be_bytes());
            }
            Ok(EncodedPayload {
                bytes,
                samples_encoded: n,
            })
        }
        (DataEncoding::Float64, SamplesRef::Floats(v)) => {
            let n = (max_bytes / 8).min(v.len());
            let mut bytes = Vec::with_capacity(n * 8);
            for &s in &v[..n] {
                bytes.extend_from_slice(&s.to_be_bytes());
            }
            Ok(EncodedPayload {
                bytes,
                samples_encoded: n,
            })
        }
        (DataEncoding::Steim1, SamplesRef::Ints(v)) => {
            let enc = steim::encode_steim1(v, prev, max_bytes / steim::FRAME_BYTES)?;
            Ok(EncodedPayload {
                bytes: enc.bytes,
                samples_encoded: enc.samples_encoded,
            })
        }
        (DataEncoding::Steim2, SamplesRef::Ints(v)) => {
            let enc = steim::encode_steim2(v, prev, max_bytes / steim::FRAME_BYTES)?;
            Ok(EncodedPayload {
                bytes: enc.bytes,
                samples_encoded: enc.samples_encoded,
            })
        }
        (enc, _) => Err(MseedError::Codec {
            encoding: enc.name(),
            detail: "sample type does not match encoding family".into(),
        }),
    }
}

/// Borrowed view of samples to encode (avoids cloning per record).
#[derive(Debug, Clone, Copy)]
pub enum SamplesRef<'a> {
    /// Integer samples.
    Ints(&'a [i32]),
    /// Floating-point samples.
    Floats(&'a [f64]),
}

impl<'a> SamplesRef<'a> {
    /// Number of samples in the view.
    pub fn len(&self) -> usize {
        match self {
            SamplesRef::Ints(v) => v.len(),
            SamplesRef::Floats(v) => v.len(),
        }
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-view starting at `at`.
    pub fn suffix(&self, at: usize) -> SamplesRef<'a> {
        match self {
            SamplesRef::Ints(v) => SamplesRef::Ints(&v[at..]),
            SamplesRef::Floats(v) => SamplesRef::Floats(&v[at..]),
        }
    }
}

/// Decode `n_samples` samples from a payload.
pub fn decode(encoding: DataEncoding, data: &[u8], n_samples: usize) -> Result<Samples> {
    let need = |width: usize| -> Result<()> {
        if data.len() < n_samples * width {
            Err(MseedError::Truncated {
                context: "data payload",
                needed: n_samples * width,
                available: data.len(),
            })
        } else {
            Ok(())
        }
    };
    match encoding {
        DataEncoding::Int16 => {
            need(2)?;
            Ok(Samples::Ints(
                data.chunks_exact(2)
                    .take(n_samples)
                    .map(|c| i16::from_be_bytes([c[0], c[1]]) as i32)
                    .collect(),
            ))
        }
        DataEncoding::Int32 => {
            need(4)?;
            Ok(Samples::Ints(
                data.chunks_exact(4)
                    .take(n_samples)
                    .map(|c| i32::from_be_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ))
        }
        DataEncoding::Float32 => {
            need(4)?;
            Ok(Samples::Floats(
                data.chunks_exact(4)
                    .take(n_samples)
                    .map(|c| f32::from_be_bytes([c[0], c[1], c[2], c[3]]) as f64)
                    .collect(),
            ))
        }
        DataEncoding::Float64 => {
            need(8)?;
            Ok(Samples::Floats(
                data.chunks_exact(8)
                    .take(n_samples)
                    .map(|c| f64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                    .collect(),
            ))
        }
        DataEncoding::Steim1 => Ok(Samples::Ints(steim::decode_steim1(data, n_samples)?)),
        DataEncoding::Steim2 => Ok(Samples::Ints(steim::decode_steim2(data, n_samples)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for enc in [
            DataEncoding::Int16,
            DataEncoding::Int32,
            DataEncoding::Float32,
            DataEncoding::Float64,
            DataEncoding::Steim1,
            DataEncoding::Steim2,
        ] {
            assert_eq!(DataEncoding::from_code(enc.code()).unwrap(), enc);
        }
        assert!(DataEncoding::from_code(99).is_err());
    }

    #[test]
    fn int16_roundtrip_and_overflow() {
        let v = vec![0, 100, -100, i16::MAX as i32, i16::MIN as i32];
        let enc = encode(DataEncoding::Int16, &SamplesRef::Ints(&v), 0, 1 << 16).unwrap();
        assert_eq!(enc.samples_encoded, v.len());
        assert_eq!(
            decode(DataEncoding::Int16, &enc.bytes, v.len()).unwrap(),
            Samples::Ints(v)
        );
        let big = vec![40_000i32];
        assert!(matches!(
            encode(DataEncoding::Int16, &SamplesRef::Ints(&big), 0, 64),
            Err(MseedError::Unrepresentable { .. })
        ));
    }

    #[test]
    fn int32_roundtrip_bounded() {
        let v: Vec<i32> = (-50..50).map(|x| x * 1_000_003).collect();
        // Only 10 samples fit in 40 bytes.
        let enc = encode(DataEncoding::Int32, &SamplesRef::Ints(&v), 0, 40).unwrap();
        assert_eq!(enc.samples_encoded, 10);
        assert_eq!(
            decode(DataEncoding::Int32, &enc.bytes, 10).unwrap(),
            Samples::Ints(v[..10].to_vec())
        );
    }

    #[test]
    fn float64_roundtrip_exact() {
        let v = vec![0.0, -1.5, std::f64::consts::PI, f64::MIN_POSITIVE, 1e300];
        let enc = encode(DataEncoding::Float64, &SamplesRef::Floats(&v), 0, 1 << 12).unwrap();
        assert_eq!(
            decode(DataEncoding::Float64, &enc.bytes, v.len()).unwrap(),
            Samples::Floats(v)
        );
    }

    #[test]
    fn float32_lossy_but_close() {
        let v = vec![1.25, -2.5, 1e10];
        let enc = encode(DataEncoding::Float32, &SamplesRef::Floats(&v), 0, 1 << 12).unwrap();
        let dec = decode(DataEncoding::Float32, &enc.bytes, v.len()).unwrap();
        if let Samples::Floats(d) = dec {
            for (a, b) in d.iter().zip(&v) {
                assert!((a - b).abs() <= b.abs() * 1e-6);
            }
        } else {
            panic!("expected float samples");
        }
    }

    #[test]
    fn steim_dispatch_roundtrip() {
        let v: Vec<i32> = (0..500).map(|i| (i * 7) % 1000 - 500).collect();
        for enc_kind in [DataEncoding::Steim1, DataEncoding::Steim2] {
            let enc = encode(enc_kind, &SamplesRef::Ints(&v), 0, 1 << 16).unwrap();
            assert_eq!(enc.samples_encoded, v.len());
            assert_eq!(
                decode(enc_kind, &enc.bytes, v.len()).unwrap(),
                Samples::Ints(v.clone())
            );
        }
    }

    #[test]
    fn type_mismatch_rejected() {
        let ints = vec![1, 2, 3];
        assert!(encode(DataEncoding::Float32, &SamplesRef::Ints(&ints), 0, 64).is_err());
        let floats = vec![1.0];
        assert!(encode(DataEncoding::Steim1, &SamplesRef::Floats(&floats), 0, 64).is_err());
    }

    #[test]
    fn decode_truncation_detected() {
        assert!(decode(DataEncoding::Int32, &[0u8; 7], 2).is_err());
        assert!(decode(DataEncoding::Float64, &[0u8; 8], 2).is_err());
    }

    #[test]
    fn samples_widening() {
        assert_eq!(Samples::Ints(vec![1, -2]).to_f64(), vec![1.0, -2.0]);
        assert_eq!(Samples::Floats(vec![0.5]).to_f64(), vec![0.5]);
        assert_eq!(Samples::Ints(vec![]).len(), 0);
        assert!(Samples::Ints(vec![]).is_empty());
    }
}
