//! Error type for MiniSEED parsing, encoding and generation.

use std::fmt;

/// Errors produced while reading, writing or generating MiniSEED data.
#[derive(Debug)]
pub enum MseedError {
    /// Record buffer too short or truncated mid-structure.
    Truncated {
        /// What was being parsed when the input ended.
        context: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// A header field held a value outside its legal domain.
    InvalidField {
        /// Field name as named by the SEED manual.
        field: &'static str,
        /// Human-readable description of the offending value.
        detail: String,
    },
    /// The data payload could not be decoded.
    Codec {
        /// Encoding that was being decoded/encoded.
        encoding: &'static str,
        /// Description of the failure.
        detail: String,
    },
    /// A sample value cannot be represented in the requested encoding.
    Unrepresentable {
        /// Encoding that was asked to represent the value.
        encoding: &'static str,
        /// The offending value (as i64 for diagnostics).
        value: i64,
    },
    /// Time components out of range (e.g. day 367).
    InvalidTime(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for MseedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MseedError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated input while parsing {context}: need {needed} bytes, have {available}"
            ),
            MseedError::InvalidField { field, detail } => {
                write!(f, "invalid value for field {field}: {detail}")
            }
            MseedError::Codec { encoding, detail } => {
                write!(f, "{encoding} codec error: {detail}")
            }
            MseedError::Unrepresentable { encoding, value } => {
                write!(f, "value {value} not representable in {encoding}")
            }
            MseedError::InvalidTime(msg) => write!(f, "invalid time: {msg}"),
            MseedError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for MseedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MseedError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MseedError {
    fn from(e: std::io::Error) -> Self {
        MseedError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MseedError>;
