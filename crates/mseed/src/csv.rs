//! CSV waveform format: the text twin of a single-stream MiniSEED file.
//!
//! Proves the pluggable-source boundary format-agnostic with the simplest
//! possible scientific format: a `#`-commented header carrying the stream
//! identity, then one `time_us,value` sample per line. Layout:
//!
//! ```text
//! # lazyetl-csv v1
//! # source=NL.HGN..BHZ
//! # sample_rate_hz=40
//! # start_us=1263254400000000
//! time_us,value
//! 1263254400000000,12
//! 1263254400025000,-3
//! ```
//!
//! Values are written as **integer counts** — the same i32 counts a
//! MiniSEED Steim payload carries — so CSV decoding widens to exactly the
//! f64s mSEED extraction produces and federated query results can be
//! byte-identical across backends.
//!
//! Samples are split into fixed-size **record groups** of
//! [`CSV_GROUP_SAMPLES`] rows. A group is the CSV unit of lazy fetch: the
//! metadata scan ([`scan_csv_bytes`]) reports each group's byte range,
//! and extraction re-reads only the touched groups' line ranges
//! ([`parse_csv_group`]) — record-granular laziness without a binary
//! index.

use crate::btime::Timestamp;
use crate::error::{MseedError, Result};
use crate::record::SourceId;

/// First header line of every lazyetl CSV waveform file.
pub const CSV_MAGIC: &str = "# lazyetl-csv v1";

/// Samples per CSV record group (the unit of lazy fetch and caching).
pub const CSV_GROUP_SAMPLES: usize = 512;

/// One record group's metadata: where its lines live and what they cover.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvGroup {
    /// Group sequence number (0-based, unique within the file).
    pub seq_no: i64,
    /// First sample time of the group.
    pub start: Timestamp,
    /// Exclusive end time (last sample + one period).
    pub end: Timestamp,
    /// Samples in the group.
    pub num_samples: usize,
    /// Byte offset of the group's first line.
    pub byte_offset: u64,
    /// Byte length of the group's lines.
    pub byte_len: u64,
}

/// Result of scanning one CSV file's header and group layout.
#[derive(Debug, Clone)]
pub struct CsvScan {
    /// Stream identity from the header.
    pub source: SourceId,
    /// Sample rate in Hz from the header.
    pub sample_rate: f64,
    /// First sample time from the header.
    pub start: Timestamp,
    /// Record groups in file order.
    pub groups: Vec<CsvGroup>,
    /// Total samples across all groups.
    pub total_samples: u64,
}

impl CsvScan {
    /// Sample period in µs implied by the header rate.
    pub fn period_us(&self) -> i64 {
        period_us(self.sample_rate)
    }

    /// Exclusive end time of the last group (equals `start` when empty).
    pub fn end(&self) -> Timestamp {
        self.groups.last().map_or(self.start, |g| g.end)
    }
}

fn period_us(rate: f64) -> i64 {
    if rate <= 0.0 {
        0
    } else {
        (1_000_000.0 / rate).round() as i64
    }
}

fn invalid(field: &'static str, detail: impl Into<String>) -> MseedError {
    MseedError::InvalidField {
        field,
        detail: detail.into(),
    }
}

/// Render a single-stream waveform as lazyetl CSV bytes.
///
/// The inverse of [`scan_csv_bytes`] + [`parse_csv_group`]: integer
/// counts, one sample per line, timestamps spaced by the rate's period.
pub fn write_csv_bytes(
    source: &SourceId,
    start: Timestamp,
    sample_rate: f64,
    samples: &[i32],
) -> Result<Vec<u8>> {
    if sample_rate <= 0.0 {
        return Err(invalid("sample_rate_hz", format!("{sample_rate} not > 0")));
    }
    let period = period_us(sample_rate);
    let mut out = String::with_capacity(32 * samples.len() + 128);
    out.push_str(CSV_MAGIC);
    out.push('\n');
    out.push_str(&format!(
        "# source={}.{}.{}.{}\n",
        source.network, source.station, source.location, source.channel
    ));
    out.push_str(&format!("# sample_rate_hz={sample_rate}\n"));
    out.push_str(&format!("# start_us={}\n", start.micros()));
    out.push_str("time_us,value\n");
    for (i, v) in samples.iter().enumerate() {
        out.push_str(&format!("{},{v}\n", start.micros() + period * i as i64));
    }
    Ok(out.into_bytes())
}

/// The `#`-commented header of a CSV waveform file.
#[derive(Debug, Clone)]
pub struct CsvHeader {
    /// Stream identity.
    pub source: SourceId,
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// First sample time.
    pub start: Timestamp,
    /// Byte offset of the first sample line (just past `time_us,value`).
    pub data_offset: u64,
}

/// Parse the header of a CSV waveform file from a byte **prefix**.
///
/// Only the header lines need to be present — any prefix that reaches
/// past the `time_us,value` column header parses, so a remote source can
/// resolve the stream identity and rate from one small ranged fetch
/// ([`CSV_HEADER_FETCH`] bytes is always enough for files this library
/// writes).
pub fn scan_csv_header(bytes: &[u8]) -> Result<CsvHeader> {
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t,
        // A prefix may end mid-UTF-8-sequence; parse the valid prefix.
        Err(e) => std::str::from_utf8(&bytes[..e.valid_up_to()]).expect("valid prefix"),
    };
    let mut lines = text.split_inclusive('\n');
    let mut offset = 0u64;
    let mut source: Option<SourceId> = None;
    let mut sample_rate: Option<f64> = None;
    let mut start: Option<i64> = None;
    let mut found_columns = false;

    // Header: the magic, `# key=value` lines, then the column header.
    let magic = lines
        .next()
        .ok_or_else(|| invalid("csv header", "empty file"))?;
    if magic.trim_end() != CSV_MAGIC {
        return Err(invalid(
            "csv magic",
            format!("first line {:?} is not {CSV_MAGIC:?}", magic.trim_end()),
        ));
    }
    offset += magic.len() as u64;
    for line in lines {
        offset += line.len() as u64;
        let trimmed = line.trim_end();
        if let Some(rest) = trimmed.strip_prefix("# ") {
            if let Some((key, value)) = rest.split_once('=') {
                match key {
                    "source" => {
                        let parts: Vec<&str> = value.split('.').collect();
                        if parts.len() != 4 {
                            return Err(invalid(
                                "csv source",
                                format!("{value:?} is not NET.STA.LOC.CHA"),
                            ));
                        }
                        source = Some(SourceId::new(parts[0], parts[1], parts[2], parts[3])?);
                    }
                    "sample_rate_hz" => {
                        sample_rate = Some(value.parse().map_err(|_| {
                            invalid("csv sample_rate_hz", format!("{value:?} not a number"))
                        })?);
                    }
                    "start_us" => {
                        start = Some(value.parse().map_err(|_| {
                            invalid("csv start_us", format!("{value:?} not an integer"))
                        })?);
                    }
                    _ => {} // unknown header keys are ignored, forward-compatibly
                }
            }
        } else if trimmed == "time_us,value" {
            found_columns = true;
            break;
        } else {
            return Err(invalid(
                "csv header",
                format!("unexpected line {trimmed:?} before column header"),
            ));
        }
    }
    if !found_columns {
        return Err(invalid(
            "csv header",
            "missing `time_us,value` column header",
        ));
    }
    let source = source.ok_or_else(|| invalid("csv source", "missing `# source=` line"))?;
    let rate = sample_rate
        .ok_or_else(|| invalid("csv sample_rate_hz", "missing `# sample_rate_hz=` line"))?;
    if rate <= 0.0 {
        return Err(invalid("csv sample_rate_hz", format!("{rate} not > 0")));
    }
    let start =
        Timestamp(start.ok_or_else(|| invalid("csv start_us", "missing `# start_us=` line"))?);
    Ok(CsvHeader {
        source,
        sample_rate: rate,
        start,
        data_offset: offset,
    })
}

/// Ranged-fetch size that always covers a lazyetl CSV header.
pub const CSV_HEADER_FETCH: u64 = 256;

/// Scan a whole CSV file's bytes: parse the header, then walk the sample
/// lines counting group boundaries and byte ranges **without parsing the
/// values** — the CSV analogue of a header-only MiniSEED scan (the text
/// still has to be walked once, which is the honest cost of a format
/// with no record index).
pub fn scan_csv_bytes(bytes: &[u8]) -> Result<CsvScan> {
    let header = scan_csv_header(bytes)?;
    let mut offset = header.data_offset;
    let period = period_us(header.sample_rate);
    let lines = std::str::from_utf8(bytes)
        .map_err(|e| invalid("csv encoding", format!("not utf-8: {e}")))?[offset as usize..]
        .split_inclusive('\n');

    // Sample lines: count them into groups, tracking byte ranges only.
    let mut scan = CsvScan {
        source: header.source,
        sample_rate: header.sample_rate,
        start: header.start,
        groups: Vec::new(),
        total_samples: 0,
    };
    let mut group_offset = offset;
    let mut group_len = 0u64;
    let mut group_samples = 0usize;
    let flush = |offset: u64, len: u64, samples: usize, scan: &mut CsvScan| {
        if samples == 0 {
            return;
        }
        let seq_no = scan.groups.len() as i64;
        let first = scan.start.micros() + period * scan.total_samples as i64;
        scan.groups.push(CsvGroup {
            seq_no,
            start: Timestamp(first),
            end: Timestamp(first + period * samples as i64),
            num_samples: samples,
            byte_offset: offset,
            byte_len: len,
        });
        scan.total_samples += samples as u64;
    };
    for line in lines {
        let len = line.len() as u64;
        if line.trim_end().is_empty() {
            offset += len;
            continue;
        }
        group_len += len;
        group_samples += 1;
        offset += len;
        if group_samples == CSV_GROUP_SAMPLES {
            flush(group_offset, group_len, group_samples, &mut scan);
            group_offset = offset;
            group_len = 0;
            group_samples = 0;
        }
    }
    flush(group_offset, group_len, group_samples, &mut scan);
    Ok(scan)
}

/// Parse one record group's line bytes into `(time_us, value)` rows.
///
/// The extract-time twin of [`parse_csv_group`]: used when the caller has
/// only a byte range (a record locator) and recovers the group's start
/// time from its first row instead of from file-level metadata.
pub fn parse_csv_group_rows(bytes: &[u8]) -> Result<Vec<(i64, f64)>> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| invalid("csv group", format!("not utf-8: {e}")))?;
    let mut rows = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (time, value) = line
            .split_once(',')
            .ok_or_else(|| invalid("csv group", format!("line {line:?} lacks a comma")))?;
        let t = time
            .trim()
            .parse::<i64>()
            .map_err(|_| invalid("csv group", format!("time {time:?} not an integer")))?;
        let v = value
            .trim()
            .parse::<f64>()
            .map_err(|_| invalid("csv group", format!("value {value:?} not a number")))?;
        rows.push((t, v));
    }
    Ok(rows)
}

/// Parse one record group's line bytes (as located by [`scan_csv_bytes`])
/// into f64 sample values, validating the line count.
pub fn parse_csv_group(bytes: &[u8], expected_samples: usize) -> Result<Vec<f64>> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| invalid("csv group", format!("not utf-8: {e}")))?;
    let mut values = Vec::with_capacity(expected_samples);
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (_, value) = line
            .split_once(',')
            .ok_or_else(|| invalid("csv group", format!("line {line:?} lacks a comma")))?;
        values.push(
            value
                .trim()
                .parse::<f64>()
                .map_err(|_| invalid("csv group", format!("value {value:?} not a number")))?,
        );
    }
    if values.len() != expected_samples {
        return Err(invalid(
            "csv group",
            format!("{} lines, metadata said {expected_samples}", values.len()),
        ));
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> (SourceId, Timestamp, Vec<i32>) {
        let src = SourceId::new("NL", "HGN", "", "BHZ").unwrap();
        let start = Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0);
        let samples: Vec<i32> = (0..1300).map(|i| (i * 31) % 797 - 400).collect();
        (src, start, samples)
    }

    #[test]
    fn roundtrip_scan_and_extract() {
        let (src, start, samples) = demo();
        let bytes = write_csv_bytes(&src, start, 40.0, &samples).unwrap();
        let scan = scan_csv_bytes(&bytes).unwrap();
        assert_eq!(scan.source, src);
        assert_eq!(scan.sample_rate, 40.0);
        assert_eq!(scan.start, start);
        assert_eq!(scan.total_samples, samples.len() as u64);
        assert_eq!(scan.groups.len(), 3, "1300 samples at 512/group");
        assert_eq!(scan.groups[0].num_samples, 512);
        assert_eq!(scan.groups[2].num_samples, 1300 - 2 * 512);
        let mut all = Vec::new();
        for g in &scan.groups {
            let range = &bytes[g.byte_offset as usize..(g.byte_offset + g.byte_len) as usize];
            let vals = parse_csv_group(range, g.num_samples).unwrap();
            assert_eq!(vals.len(), g.num_samples);
            all.extend(vals);
        }
        let expect: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        assert_eq!(all, expect, "integer counts widen losslessly");
    }

    #[test]
    fn groups_tile_the_file_and_the_timeline() {
        let (src, start, samples) = demo();
        let bytes = write_csv_bytes(&src, start, 40.0, &samples).unwrap();
        let scan = scan_csv_bytes(&bytes).unwrap();
        for w in scan.groups.windows(2) {
            assert_eq!(w[0].byte_offset + w[0].byte_len, w[1].byte_offset);
            assert_eq!(w[0].end, w[1].start);
        }
        let last = scan.groups.last().unwrap();
        assert_eq!(last.byte_offset + last.byte_len, bytes.len() as u64);
        assert_eq!(
            scan.end().micros() - scan.start.micros(),
            25_000 * samples.len() as i64
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(scan_csv_bytes(b"").is_err());
        assert!(scan_csv_bytes(b"station,value\n").is_err());
        assert!(
            scan_csv_bytes(b"# lazyetl-csv v1\ntime_us,value\n").is_err(),
            "missing header keys"
        );
        let no_rate = "# lazyetl-csv v1\n# source=NL.HGN..BHZ\n# start_us=0\ntime_us,value\n";
        assert!(scan_csv_bytes(no_rate.as_bytes()).is_err());
        let bad_source =
            "# lazyetl-csv v1\n# source=oops\n# sample_rate_hz=40\n# start_us=0\ntime_us,value\n";
        assert!(scan_csv_bytes(bad_source.as_bytes()).is_err());
        assert!(parse_csv_group(b"12,", 1).is_err());
        assert!(parse_csv_group(b"no comma here\n", 1).is_err());
        assert!(parse_csv_group(b"0,1\n", 2).is_err(), "count mismatch");
    }

    #[test]
    fn empty_waveform_scans_to_zero_groups() {
        let (src, start, _) = demo();
        let bytes = write_csv_bytes(&src, start, 40.0, &[]).unwrap();
        let scan = scan_csv_bytes(&bytes).unwrap();
        assert!(scan.groups.is_empty());
        assert_eq!(scan.total_samples, 0);
        assert_eq!(scan.end(), start);
    }
}
