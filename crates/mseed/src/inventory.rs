//! Station inventory used by the synthetic repository generator.
//!
//! Mirrors the paper's demonstration setting: ORFEUS-style European
//! networks, including the Netherlands network `NL` (whose `BHZ` channels
//! the second Figure-1 query aggregates) and the Kandilli Observatory
//! station `ISK` (whose `BHE` channel the first Figure-1 query averages).

use crate::record::SourceId;

/// A station with its network affiliation and geographic position.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    /// Network code (e.g. `NL`).
    pub network: String,
    /// Station code (e.g. `HGN`).
    pub station: String,
    /// Location code used for its channels.
    pub location: String,
    /// Latitude in degrees.
    pub latitude: f64,
    /// Longitude in degrees.
    pub longitude: f64,
    /// Human-readable site description.
    pub site: String,
}

impl Station {
    /// The stream identity for one of this station's channels.
    pub fn source(&self, channel: &str) -> SourceId {
        SourceId::new(&self.network, &self.station, &self.location, channel)
            .expect("inventory codes are valid")
    }
}

/// Broadband channel triplet used throughout the demo: vertical,
/// east-west, north-south.
pub const BROADBAND_CHANNELS: [&str; 3] = ["BHZ", "BHE", "BHN"];

/// The default demonstration inventory.
///
/// Contains every station/channel referenced by the paper's Figure 1
/// queries plus enough others to make grouping queries interesting.
pub fn default_inventory() -> Vec<Station> {
    let s = |network: &str, station: &str, lat: f64, lon: f64, site: &str| Station {
        network: network.to_string(),
        station: station.to_string(),
        location: String::new(),
        latitude: lat,
        longitude: lon,
        site: site.to_string(),
    };
    vec![
        // Netherlands network (Figure 1, query 2: network = 'NL').
        s("NL", "HGN", 50.764, 5.932, "Heimansgroeve, Netherlands"),
        s("NL", "WIT", 52.813, 6.668, "Witteveen, Netherlands"),
        s("NL", "OPLO", 51.588, 5.810, "Oploo, Netherlands"),
        s("NL", "WTSB", 53.316, 6.776, "Wetsinge, Netherlands"),
        // Kandilli Observatory network (Figure 1, query 1: station = 'ISK').
        s(
            "KO",
            "ISK",
            41.066,
            29.060,
            "Kandilli Observatory, Istanbul",
        ),
        s("KO", "BALB", 39.640, 27.880, "Balikesir, Turkey"),
        // German Regional Seismic Network for variety.
        s("GR", "BFO", 48.331, 8.330, "Black Forest Observatory"),
        s("GR", "WET", 49.144, 12.876, "Wettzell, Germany"),
    ]
}

/// Look up a station by network and station code.
pub fn find_station<'a>(
    inventory: &'a [Station],
    network: &str,
    station: &str,
) -> Option<&'a Station> {
    inventory
        .iter()
        .find(|s| s.network == network && s.station == station)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_contains_paper_streams() {
        let inv = default_inventory();
        let isk = find_station(&inv, "KO", "ISK").expect("ISK present");
        assert_eq!(isk.source("BHE").to_string(), "KO.ISK..BHE");
        let nl: Vec<_> = inv.iter().filter(|s| s.network == "NL").collect();
        assert!(nl.len() >= 3, "NL needs several stations for GROUP BY");
        for st in nl {
            assert!(!st.site.is_empty());
            let src = st.source("BHZ");
            assert_eq!(src.channel, "BHZ");
        }
    }

    #[test]
    fn find_station_misses() {
        let inv = default_inventory();
        assert!(find_station(&inv, "XX", "NONE").is_none());
    }
}
