//! SAC (Seismic Analysis Code) binary waveform files.
//!
//! The paper positions Lazy ETL as handling "complex file formats that are
//! common in science applications" (§2) behind one extraction interface.
//! SAC is the second-most common seismology exchange format after SEED: a
//! 632-byte header (70 floats, 40 ints, 192 bytes of fixed-width character
//! fields) followed by `npts` IEEE-754 single-precision samples. One file
//! holds one continuous, evenly sampled trace.
//!
//! This module implements the classic binary layout (header version
//! `NVHDR = 6`) in both byte orders — real-world SAC files come in both,
//! and readers are expected to detect the order from the header — plus a
//! writer and a small synthetic generator hook so mixed-format
//! repositories can be produced.

use crate::btime::{BTime, Timestamp};
use crate::error::{MseedError, Result};
use crate::record::SourceId;
use std::path::Path;

/// Size of the fixed SAC header in bytes.
pub const SAC_HEADER_SIZE: usize = 632;
/// Header version this module reads and writes.
pub const SAC_NVHDR: i32 = 6;
/// SAC's "undefined" sentinel for float fields.
pub const SAC_UNDEF_F: f32 = -12345.0;
/// SAC's "undefined" sentinel for integer fields.
pub const SAC_UNDEF_I: i32 = -12345;

// Word offsets per the SAC manual.
const W_DELTA: usize = 0; // float: sample interval, seconds
const W_B: usize = 5; // float: begin offset from reference time, seconds
const W_E: usize = 6; // float: end offset, seconds
const W_DEPMIN: usize = 1;
const W_DEPMAX: usize = 2;
const W_NZYEAR: usize = 70; // ints from here
const W_NZJDAY: usize = 71;
const W_NZHOUR: usize = 72;
const W_NZMIN: usize = 73;
const W_NZSEC: usize = 74;
const W_NZMSEC: usize = 75;
const W_NVHDR: usize = 76;
const W_NPTS: usize = 79;
const W_IFTYPE: usize = 85;
const W_LEVEN: usize = 105;
const IFTYPE_ITIME: i32 = 1;
// Character-block byte ranges (relative to byte 440).
const K_STNM: (usize, usize) = (0, 8);
const K_CMPNM: (usize, usize) = (160, 168);
const K_NETWK: (usize, usize) = (168, 176);

/// Byte order of a SAC file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SacByteOrder {
    /// Little-endian words.
    Little,
    /// Big-endian words.
    Big,
}

/// A parsed SAC file: identity, timing and (optionally) samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SacFile {
    /// Stream identity assembled from KNETWK/KSTNM/KCMPNM.
    pub source: SourceId,
    /// Time of the first sample.
    pub start: Timestamp,
    /// Sample interval in seconds.
    pub delta: f64,
    /// Number of data points.
    pub npts: usize,
    /// Byte order the file used.
    pub byte_order: SacByteOrder,
    /// Sample values (empty for header-only scans).
    pub samples: Vec<f32>,
}

impl SacFile {
    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        if self.delta > 0.0 {
            1.0 / self.delta
        } else {
            0.0
        }
    }

    /// Exclusive end time.
    pub fn end(&self) -> Timestamp {
        self.start
            .add_micros((self.delta * 1e6) as i64 * self.npts as i64)
    }
}

fn get_f32(buf: &[u8], word: usize, order: SacByteOrder) -> f32 {
    let b: [u8; 4] = buf[word * 4..word * 4 + 4]
        .try_into()
        .expect("bounds checked");
    match order {
        SacByteOrder::Little => f32::from_le_bytes(b),
        SacByteOrder::Big => f32::from_be_bytes(b),
    }
}

fn get_i32(buf: &[u8], word: usize, order: SacByteOrder) -> i32 {
    let b: [u8; 4] = buf[word * 4..word * 4 + 4]
        .try_into()
        .expect("bounds checked");
    match order {
        SacByteOrder::Little => i32::from_le_bytes(b),
        SacByteOrder::Big => i32::from_be_bytes(b),
    }
}

fn get_k(buf: &[u8], range: (usize, usize)) -> String {
    let raw = &buf[440 + range.0..440 + range.1];
    let s = String::from_utf8_lossy(raw);
    let trimmed = s.trim_end_matches(['\0', ' ']).trim();
    if trimmed == "-12345" {
        String::new()
    } else {
        trimmed.to_string()
    }
}

/// Detect byte order by reading NVHDR both ways.
pub fn detect_byte_order(header: &[u8]) -> Result<SacByteOrder> {
    if header.len() < SAC_HEADER_SIZE {
        return Err(MseedError::Truncated {
            context: "SAC header",
            needed: SAC_HEADER_SIZE,
            available: header.len(),
        });
    }
    if get_i32(header, W_NVHDR, SacByteOrder::Little) == SAC_NVHDR {
        Ok(SacByteOrder::Little)
    } else if get_i32(header, W_NVHDR, SacByteOrder::Big) == SAC_NVHDR {
        Ok(SacByteOrder::Big)
    } else {
        Err(MseedError::InvalidField {
            field: "SAC NVHDR",
            detail: "neither byte order yields header version 6".into(),
        })
    }
}

fn parse_header(buf: &[u8]) -> Result<SacFile> {
    let order = detect_byte_order(buf)?;
    let npts = get_i32(buf, W_NPTS, order);
    if npts < 0 {
        return Err(MseedError::InvalidField {
            field: "SAC NPTS",
            detail: format!("negative sample count {npts}"),
        });
    }
    let iftype = get_i32(buf, W_IFTYPE, order);
    if iftype != IFTYPE_ITIME && iftype != SAC_UNDEF_I {
        return Err(MseedError::InvalidField {
            field: "SAC IFTYPE",
            detail: format!("only time-series files supported, got {iftype}"),
        });
    }
    let delta = get_f32(buf, W_DELTA, order);
    if delta <= 0.0 || delta == SAC_UNDEF_F {
        return Err(MseedError::InvalidField {
            field: "SAC DELTA",
            detail: format!("invalid sample interval {delta}"),
        });
    }
    let year = get_i32(buf, W_NZYEAR, order);
    let jday = get_i32(buf, W_NZJDAY, order);
    let (hour, minute, sec, msec) = (
        get_i32(buf, W_NZHOUR, order),
        get_i32(buf, W_NZMIN, order),
        get_i32(buf, W_NZSEC, order),
        get_i32(buf, W_NZMSEC, order),
    );
    if year == SAC_UNDEF_I || jday == SAC_UNDEF_I {
        return Err(MseedError::InvalidField {
            field: "SAC reference time",
            detail: "NZYEAR/NZJDAY undefined".into(),
        });
    }
    let (month, day) = BTime::month_day(year as i64, jday as u32)?;
    let reference = Timestamp::from_ymd_hms(
        year as i64,
        month,
        day,
        hour.max(0) as u32,
        minute.max(0) as u32,
        sec.max(0) as u32,
        (msec.max(0) * 1000) as u32,
    );
    let b = get_f32(buf, W_B, order);
    let b_us = if b == SAC_UNDEF_F {
        0
    } else {
        (b as f64 * 1e6) as i64
    };
    let station = get_k(buf, K_STNM);
    let network = get_k(buf, K_NETWK);
    let channel = get_k(buf, K_CMPNM);
    Ok(SacFile {
        source: SourceId::new(&network, &station, "", &channel)?,
        start: reference.add_micros(b_us),
        delta: delta as f64,
        npts: npts as usize,
        byte_order: order,
        samples: Vec::new(),
    })
}

/// Header-only scan of a SAC file (reads exactly 632 bytes).
pub fn scan_sac_header(path: &Path) -> Result<SacFile> {
    use std::io::Read;
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; SAC_HEADER_SIZE];
    f.read_exact(&mut header)?;
    parse_header(&header)
}

/// Header-only scan of an in-memory SAC byte prefix (at least
/// [`SAC_HEADER_SIZE`] bytes) — what a remote source's ranged header
/// fetch hands the extractor.
pub fn scan_sac_header_bytes(bytes: &[u8]) -> Result<SacFile> {
    if bytes.len() < SAC_HEADER_SIZE {
        return Err(MseedError::Truncated {
            context: "SAC header",
            needed: SAC_HEADER_SIZE,
            available: bytes.len(),
        });
    }
    parse_header(&bytes[..SAC_HEADER_SIZE])
}

/// Read a whole SAC file, header and samples.
pub fn read_sac(path: &Path) -> Result<SacFile> {
    let bytes = std::fs::read(path)?;
    read_sac_bytes(&bytes)
}

/// Parse a whole SAC byte buffer.
pub fn read_sac_bytes(bytes: &[u8]) -> Result<SacFile> {
    let mut file = parse_header(bytes)?;
    let need = SAC_HEADER_SIZE + file.npts * 4;
    if bytes.len() < need {
        return Err(MseedError::Truncated {
            context: "SAC data section",
            needed: need,
            available: bytes.len(),
        });
    }
    file.samples = bytes[SAC_HEADER_SIZE..need]
        .chunks_exact(4)
        .map(|c| {
            let b: [u8; 4] = c.try_into().expect("chunks_exact(4)");
            match file.byte_order {
                SacByteOrder::Little => f32::from_le_bytes(b),
                SacByteOrder::Big => f32::from_be_bytes(b),
            }
        })
        .collect();
    Ok(file)
}

/// Serialize a trace to SAC bytes.
pub fn write_sac_bytes(
    source: &SourceId,
    start: Timestamp,
    sample_rate: f64,
    samples: &[f32],
    order: SacByteOrder,
) -> Result<Vec<u8>> {
    if sample_rate <= 0.0 {
        return Err(MseedError::InvalidField {
            field: "sample rate",
            detail: format!("{sample_rate} must be positive"),
        });
    }
    let mut floats = [SAC_UNDEF_F; 70];
    let mut ints = [SAC_UNDEF_I; 40];
    let mut chars = [b' '; 192];
    let delta = 1.0 / sample_rate;
    floats[W_DELTA] = delta as f32;
    floats[W_B] = 0.0;
    floats[W_E] = (delta * samples.len() as f64) as f32;
    let (min, max) = samples
        .iter()
        .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    if !samples.is_empty() {
        floats[W_DEPMIN] = min;
        floats[W_DEPMAX] = max;
    }
    let bt = BTime::from_timestamp(start);
    ints[W_NZYEAR - 70] = bt.year as i32;
    ints[W_NZJDAY - 70] = bt.day_of_year as i32;
    ints[W_NZHOUR - 70] = bt.hour as i32;
    ints[W_NZMIN - 70] = bt.minute as i32;
    ints[W_NZSEC - 70] = bt.second as i32;
    ints[W_NZMSEC - 70] = (bt.tenth_ms / 10) as i32;
    ints[W_NVHDR - 70] = SAC_NVHDR;
    ints[W_NPTS - 70] = samples.len() as i32;
    ints[W_IFTYPE - 70] = IFTYPE_ITIME;
    ints[W_LEVEN - 70] = 1; // evenly spaced
    let put_k = |chars: &mut [u8; 192], range: (usize, usize), v: &str| {
        let bytes = v.as_bytes();
        let width = range.1 - range.0;
        for i in 0..width {
            chars[range.0 + i] = *bytes.get(i).unwrap_or(&b' ');
        }
    };
    put_k(&mut chars, K_STNM, &source.station);
    put_k(&mut chars, K_CMPNM, &source.channel);
    put_k(&mut chars, K_NETWK, &source.network);

    let mut out = Vec::with_capacity(SAC_HEADER_SIZE + samples.len() * 4);
    let push_f = |out: &mut Vec<u8>, v: f32| match order {
        SacByteOrder::Little => out.extend_from_slice(&v.to_le_bytes()),
        SacByteOrder::Big => out.extend_from_slice(&v.to_be_bytes()),
    };
    let push_i = |out: &mut Vec<u8>, v: i32| match order {
        SacByteOrder::Little => out.extend_from_slice(&v.to_le_bytes()),
        SacByteOrder::Big => out.extend_from_slice(&v.to_be_bytes()),
    };
    for f in floats {
        push_f(&mut out, f);
    }
    for i in ints {
        push_i(&mut out, i);
    }
    out.extend_from_slice(&chars);
    for &s in samples {
        push_f(&mut out, s);
    }
    Ok(out)
}

/// Write a trace to a SAC file on disk.
pub fn write_sac(
    path: &Path,
    source: &SourceId,
    start: Timestamp,
    sample_rate: f64,
    samples: &[f32],
    order: SacByteOrder,
) -> Result<()> {
    let bytes = write_sac_bytes(source, start, sample_rate, samples, order)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_source() -> SourceId {
        SourceId::new("NL", "HGN", "", "BHZ").unwrap()
    }

    fn demo_samples(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.1).sin() * 100.0).collect()
    }

    #[test]
    fn roundtrip_both_byte_orders() {
        let src = demo_source();
        let start = Timestamp::from_ymd_hms(2010, 1, 12, 22, 15, 0, 300_000);
        let samples = demo_samples(500);
        for order in [SacByteOrder::Little, SacByteOrder::Big] {
            let bytes = write_sac_bytes(&src, start, 40.0, &samples, order).unwrap();
            assert_eq!(bytes.len(), SAC_HEADER_SIZE + 500 * 4);
            let back = read_sac_bytes(&bytes).unwrap();
            assert_eq!(back.byte_order, order);
            assert_eq!(back.source, src);
            assert_eq!(back.npts, 500);
            assert!((back.sample_rate() - 40.0).abs() < 1e-3);
            assert_eq!(back.samples, samples);
            // Reference time survives at millisecond resolution.
            assert_eq!(back.start.micros() / 1000, start.micros() / 1000);
        }
    }

    #[test]
    fn header_only_scan_is_cheap_and_consistent() {
        let dir = std::env::temp_dir().join(format!("lazyetl_sac_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.sac");
        let src = demo_source();
        let start = Timestamp::from_ymd_hms(2011, 2, 3, 4, 5, 6, 0);
        write_sac(
            &path,
            &src,
            start,
            20.0,
            &demo_samples(10_000),
            SacByteOrder::Little,
        )
        .unwrap();
        let header = scan_sac_header(&path).unwrap();
        assert_eq!(header.npts, 10_000);
        assert!(header.samples.is_empty(), "scan reads no data");
        let full = read_sac(&path).unwrap();
        assert_eq!(full.npts, header.npts);
        assert_eq!(full.start, header.start);
        assert_eq!(full.samples.len(), 10_000);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_time_spans_samples() {
        let src = demo_source();
        let start = Timestamp::from_ymd_hms(2010, 1, 1, 0, 0, 0, 0);
        let bytes =
            write_sac_bytes(&src, start, 10.0, &demo_samples(100), SacByteOrder::Big).unwrap();
        let f = read_sac_bytes(&bytes).unwrap();
        assert_eq!(f.end(), start.add_micros(10_000_000)); // 100 samples at 10 Hz
    }

    #[test]
    fn corrupt_headers_rejected() {
        let src = demo_source();
        let start = Timestamp::from_ymd_hms(2010, 1, 1, 0, 0, 0, 0);
        let good =
            write_sac_bytes(&src, start, 10.0, &demo_samples(10), SacByteOrder::Little).unwrap();
        // Truncated header.
        assert!(read_sac_bytes(&good[..100]).is_err());
        // Broken NVHDR (neither order matches).
        let mut bad = good.clone();
        bad[W_NVHDR * 4..W_NVHDR * 4 + 4].copy_from_slice(&99i32.to_le_bytes());
        assert!(read_sac_bytes(&bad).is_err());
        // Truncated data section.
        assert!(read_sac_bytes(&good[..good.len() - 4]).is_err());
        // Negative npts.
        let mut bad = good.clone();
        bad[W_NPTS * 4..W_NPTS * 4 + 4].copy_from_slice(&(-5i32).to_le_bytes());
        assert!(read_sac_bytes(&bad).is_err());
    }

    #[test]
    fn undefined_char_fields_become_empty() {
        let src = SourceId::new("", "X", "", "").unwrap();
        let start = Timestamp::from_ymd_hms(2010, 1, 1, 0, 0, 0, 0);
        let bytes = write_sac_bytes(&src, start, 1.0, &[1.0], SacByteOrder::Little).unwrap();
        let f = read_sac_bytes(&bytes).unwrap();
        assert_eq!(f.source.network, "");
        assert_eq!(f.source.station, "X");
    }
}
