//! Steim-1 and Steim-2 waveform compression.
//!
//! Steim compression is the dominant encoding for seismic waveform payloads
//! in (Mini)SEED. Samples are first-differenced and the differences are
//! bit-packed into 64-byte *frames* of sixteen big-endian 32-bit words. Word
//! 0 of every frame is a control word holding sixteen 2-bit *nibbles*, one
//! per word, describing how the corresponding word packs differences. The
//! first frame additionally stores the forward integration constant `X0`
//! (first sample) in word 1 and the reverse integration constant `Xn` (last
//! sample) in word 2, letting decoders reconstruct absolute values and
//! verify integrity.
//!
//! Steim-1 packs 4×8-bit, 2×16-bit or 1×32-bit differences per word.
//! Steim-2 adds denser sub-word packings (7×4 .. 1×30 bits) selected by a
//! secondary 2-bit *dnib* in the word itself.
//!
//! The decompression cost of these codecs is what makes eager ETL expensive
//! in the paper: loading a SEED repository into a database requires decoding
//! (and thus ~4-10x inflating) every payload, which Lazy ETL defers.

use crate::error::{MseedError, Result};

/// Size of one Steim frame in bytes.
pub const FRAME_BYTES: usize = 64;
/// 32-bit words per frame (including the control word).
pub const WORDS_PER_FRAME: usize = 16;

/// Result of compressing a prefix of a sample slice into whole frames.
#[derive(Debug, Clone)]
pub struct EncodedSteim {
    /// Encoded frames, `frames_used * 64` bytes.
    pub bytes: Vec<u8>,
    /// How many samples from the input were consumed.
    pub samples_encoded: usize,
    /// Number of 64-byte frames in `bytes`.
    pub frames_used: usize,
}

/// Sign-extend the low `bits` bits of `v`.
#[inline]
fn sext(v: u32, bits: u32) -> i32 {
    debug_assert!((1..=32).contains(&bits));
    ((v << (32 - bits)) as i32) >> (32 - bits)
}

/// True iff `v` fits in a signed `bits`-bit field.
#[inline]
fn fits(v: i32, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (v as i64) >= min && (v as i64) <= max
}

/// Incrementally assembles frames, tracking nibbles in each control word.
struct FrameBuilder {
    words: Vec<u32>,
    /// Parallel nibble codes for `words` (continuous stream incl. ctrl slots).
    nibbles: Vec<u8>,
    max_frames: usize,
}

impl FrameBuilder {
    fn new(max_frames: usize) -> FrameBuilder {
        let mut b = FrameBuilder {
            words: Vec::with_capacity(max_frames * WORDS_PER_FRAME),
            nibbles: Vec::with_capacity(max_frames * WORDS_PER_FRAME),
            max_frames,
        };
        // Frame 0: control word placeholder + X0 + Xn placeholders.
        b.push_raw(0, 0); // ctrl (filled in finish())
        b.push_raw(0, 0); // X0
        b.push_raw(0, 0); // Xn
        b
    }

    fn push_raw(&mut self, nibble: u8, word: u32) {
        // A control-word slot opens each frame; insert it transparently.
        if self.words.len().is_multiple_of(WORDS_PER_FRAME) && nibble != 0 {
            self.words.push(0);
            self.nibbles.push(0);
        } else if self.words.len().is_multiple_of(WORDS_PER_FRAME) && !self.words.is_empty() {
            // raw push falling exactly on a frame boundary also needs a ctrl
            self.words.push(0);
            self.nibbles.push(0);
        }
        self.words.push(word);
        self.nibbles.push(nibble);
    }

    /// Data words still available before `max_frames` is exceeded.
    ///
    /// Closed form — this is called once per packed word, so it must not
    /// scan the remaining slots (encoding would go quadratic in the frame
    /// budget).
    fn words_left(&self) -> usize {
        let total = self.max_frames * WORDS_PER_FRAME;
        let used = self.words.len();
        if used >= total {
            return 0;
        }
        // Control-word slots (positions divisible by 16) within [used, total).
        let ctrl_slots = if used == 0 {
            self.max_frames
        } else {
            (total - 1) / WORDS_PER_FRAME - (used - 1) / WORDS_PER_FRAME
        };
        (total - used) - ctrl_slots
    }

    fn push_data(&mut self, nibble: u8, word: u32) {
        debug_assert!(self.words_left() > 0);
        if self.words.len().is_multiple_of(WORDS_PER_FRAME) {
            self.words.push(0);
            self.nibbles.push(0);
        }
        self.words.push(word);
        self.nibbles.push(nibble);
    }

    fn finish(mut self, x0: i32, xn: i32) -> (Vec<u8>, usize) {
        self.words[1] = x0 as u32;
        self.words[2] = xn as u32;
        // Pad the final frame with null words.
        while !self.words.len().is_multiple_of(WORDS_PER_FRAME) {
            self.words.push(0);
            self.nibbles.push(0);
        }
        let n_frames = self.words.len() / WORDS_PER_FRAME;
        // Fill control words from nibbles.
        for f in 0..n_frames {
            let base = f * WORDS_PER_FRAME;
            let mut ctrl = 0u32;
            for i in 0..WORDS_PER_FRAME {
                ctrl |= (self.nibbles[base + i] as u32 & 3) << (30 - 2 * i);
            }
            self.words[base] = ctrl;
        }
        let mut bytes = Vec::with_capacity(self.words.len() * 4);
        for w in &self.words {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        (bytes, n_frames)
    }
}

/// First differences with wrapping arithmetic (`d[0] = x[0] - prev`).
fn differences(samples: &[i32], prev: i32) -> Vec<i32> {
    let mut d = Vec::with_capacity(samples.len());
    let mut last = prev;
    for &s in samples {
        d.push(s.wrapping_sub(last));
        last = s;
    }
    d
}

/// Compress a prefix of `samples` with Steim-1 into at most `max_frames`
/// frames.
///
/// `prev` is the last sample of the preceding record (use the first sample
/// or 0 for the first record; the decoder reconstructs from `X0` so the
/// first difference never affects output). Returns the encoded frames and
/// the number of samples consumed, which may be less than `samples.len()`
/// when the frame budget is exhausted — the caller then starts the next
/// record at the boundary.
pub fn encode_steim1(samples: &[i32], prev: i32, max_frames: usize) -> Result<EncodedSteim> {
    if samples.is_empty() || max_frames == 0 {
        return Err(MseedError::Codec {
            encoding: "Steim1",
            detail: "cannot encode zero samples or zero frames".into(),
        });
    }
    let diffs = differences(samples, prev);
    let mut b = FrameBuilder::new(max_frames);
    let mut pos = 0usize;
    while pos < diffs.len() && b.words_left() > 0 {
        let rem = diffs.len() - pos;
        let fit8 = |k: usize| diffs[pos..pos + k].iter().all(|&d| fits(d, 8));
        let fit16 = |k: usize| diffs[pos..pos + k].iter().all(|&d| fits(d, 16));
        if rem >= 4 && fit8(4) {
            let w = (diffs[pos] as u8 as u32) << 24
                | (diffs[pos + 1] as u8 as u32) << 16
                | (diffs[pos + 2] as u8 as u32) << 8
                | (diffs[pos + 3] as u8 as u32);
            b.push_data(1, w);
            pos += 4;
        } else if rem == 3 && fit8(3) {
            // Tail: pad the fourth slot with zero; decoder stops at count.
            let w = (diffs[pos] as u8 as u32) << 24
                | (diffs[pos + 1] as u8 as u32) << 16
                | (diffs[pos + 2] as u8 as u32) << 8;
            b.push_data(1, w);
            pos += 3;
        } else if rem >= 2 && fit16(2) {
            let w = (diffs[pos] as u16 as u32) << 16 | (diffs[pos + 1] as u16 as u32);
            b.push_data(2, w);
            pos += 2;
        } else {
            b.push_data(3, diffs[pos] as u32);
            pos += 1;
        }
    }
    let samples_encoded = pos;
    let (bytes, frames_used) = b.finish(samples[0], samples[samples_encoded - 1]);
    Ok(EncodedSteim {
        bytes,
        samples_encoded,
        frames_used,
    })
}

/// Steim-2 sub-word packings, densest first: (diffs per word, bits each,
/// control nibble, dnib). `dnib = 4` marks "no dnib" (the 4×8 case).
const STEIM2_PACKINGS: [(usize, u32, u8, u32); 7] = [
    (7, 4, 3, 2),
    (6, 5, 3, 1),
    (5, 6, 3, 0),
    (4, 8, 1, 4),
    (3, 10, 2, 3),
    (2, 15, 2, 2),
    (1, 30, 2, 1),
];

fn steim2_pack(diffs: &[i32], bits: u32, dnib: u32) -> u32 {
    let mut w = if dnib <= 3 && bits != 8 {
        dnib << 30
    } else {
        0
    };
    let n = diffs.len() as u32;
    for (i, &d) in diffs.iter().enumerate() {
        let mask = if bits == 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        let shift = bits * (n - 1 - i as u32);
        w |= ((d as u32) & mask) << shift;
    }
    w
}

/// Compress a prefix of `samples` with Steim-2 into at most `max_frames`
/// frames. See [`encode_steim1`] for the contract.
///
/// Returns [`MseedError::Unrepresentable`] if any needed difference exceeds
/// the 30-bit Steim-2 limit (callers fall back to `Int32` encoding).
pub fn encode_steim2(samples: &[i32], prev: i32, max_frames: usize) -> Result<EncodedSteim> {
    if samples.is_empty() || max_frames == 0 {
        return Err(MseedError::Codec {
            encoding: "Steim2",
            detail: "cannot encode zero samples or zero frames".into(),
        });
    }
    let diffs = differences(samples, prev);
    // The first difference is never used by the decoder (X0 seeds
    // reconstruction) but it still must be *representable* since it occupies
    // packing space. Clamp it into range rather than failing.
    let mut diffs = diffs;
    if !fits(diffs[0], 30) {
        diffs[0] = 0;
    }
    if let Some(&bad) = diffs.iter().find(|&&d| !fits(d, 30)) {
        return Err(MseedError::Unrepresentable {
            encoding: "Steim2",
            value: bad as i64,
        });
    }
    let mut b = FrameBuilder::new(max_frames);
    let mut pos = 0usize;
    'outer: while pos < diffs.len() && b.words_left() > 0 {
        let rem = diffs.len() - pos;
        // Full chunks, densest first.
        for &(k, bits, nib, dnib) in &STEIM2_PACKINGS {
            if rem >= k && diffs[pos..pos + k].iter().all(|&d| fits(d, bits)) {
                b.push_data(nib, steim2_pack(&diffs[pos..pos + k], bits, dnib));
                pos += k;
                continue 'outer;
            }
        }
        // Tail shorter than every fitting chunk: pick the smallest packing
        // that covers the remainder, zero-padded (decoder stops at count).
        for &(k, bits, nib, dnib) in STEIM2_PACKINGS.iter().rev() {
            if k >= rem && diffs[pos..].iter().all(|&d| fits(d, bits)) {
                let mut chunk = diffs[pos..].to_vec();
                chunk.resize(k, 0);
                b.push_data(nib, steim2_pack(&chunk, bits, dnib));
                pos = diffs.len();
                continue 'outer;
            }
        }
        unreachable!("1x30 packing accepts any in-range difference");
    }
    let samples_encoded = pos;
    let (bytes, frames_used) = b.finish(samples[0], samples[samples_encoded - 1]);
    Ok(EncodedSteim {
        bytes,
        samples_encoded,
        frames_used,
    })
}

/// Decode `n_samples` Steim-1 samples from `data` (whole frames).
pub fn decode_steim1(data: &[u8], n_samples: usize) -> Result<Vec<i32>> {
    decode_steim(data, n_samples, false)
}

/// Decode `n_samples` Steim-2 samples from `data` (whole frames).
pub fn decode_steim2(data: &[u8], n_samples: usize) -> Result<Vec<i32>> {
    decode_steim(data, n_samples, true)
}

fn decode_steim(data: &[u8], n_samples: usize, steim2: bool) -> Result<Vec<i32>> {
    let enc: &'static str = if steim2 { "Steim2" } else { "Steim1" };
    if n_samples == 0 {
        return Ok(Vec::new());
    }
    if data.len() < FRAME_BYTES || !data.len().is_multiple_of(4) {
        return Err(MseedError::Codec {
            encoding: enc,
            detail: format!("payload of {} bytes is not whole frames", data.len()),
        });
    }
    let n_frames = data.len() / FRAME_BYTES;
    let mut diffs: Vec<i32> = Vec::with_capacity(n_samples + 8);
    let mut x0 = 0i32;
    let mut xn = 0i32;
    for f in 0..n_frames {
        if diffs.len() > n_samples {
            break;
        }
        let base = f * FRAME_BYTES;
        let word = |i: usize| {
            u32::from_be_bytes([
                data[base + i * 4],
                data[base + i * 4 + 1],
                data[base + i * 4 + 2],
                data[base + i * 4 + 3],
            ])
        };
        let ctrl = word(0);
        for i in 1..WORDS_PER_FRAME {
            let nib = (ctrl >> (30 - 2 * i)) & 3;
            let w = word(i);
            if f == 0 && i == 1 {
                x0 = w as i32;
                continue;
            }
            if f == 0 && i == 2 {
                xn = w as i32;
                continue;
            }
            match (nib, steim2) {
                (0, _) => {} // null / non-data word
                (1, _) => {
                    for s in 0..4 {
                        diffs.push(sext(w >> (24 - 8 * s), 8));
                    }
                }
                (2, false) => {
                    diffs.push(sext(w >> 16, 16));
                    diffs.push(sext(w, 16));
                }
                (3, false) => diffs.push(w as i32),
                (2, true) => match w >> 30 {
                    1 => diffs.push(sext(w, 30)),
                    2 => {
                        diffs.push(sext(w >> 15, 15));
                        diffs.push(sext(w, 15));
                    }
                    3 => {
                        diffs.push(sext(w >> 20, 10));
                        diffs.push(sext(w >> 10, 10));
                        diffs.push(sext(w, 10));
                    }
                    d => {
                        return Err(MseedError::Codec {
                            encoding: enc,
                            detail: format!("invalid dnib {d} for nibble 10"),
                        })
                    }
                },
                (3, true) => match w >> 30 {
                    0 => {
                        for s in 0..5 {
                            diffs.push(sext(w >> (24 - 6 * s), 6));
                        }
                    }
                    1 => {
                        for s in 0..6 {
                            diffs.push(sext(w >> (25 - 5 * s), 5));
                        }
                    }
                    2 => {
                        for s in 0..7 {
                            diffs.push(sext(w >> (24 - 4 * s), 4));
                        }
                    }
                    d => {
                        return Err(MseedError::Codec {
                            encoding: enc,
                            detail: format!("invalid dnib {d} for nibble 11"),
                        })
                    }
                },
                _ => unreachable!("nibble is 2 bits"),
            }
        }
    }
    if diffs.len() < n_samples {
        return Err(MseedError::Codec {
            encoding: enc,
            detail: format!(
                "payload holds {} differences, record header claims {} samples",
                diffs.len(),
                n_samples
            ),
        });
    }
    let mut out = Vec::with_capacity(n_samples);
    out.push(x0);
    for i in 1..n_samples {
        let prev = out[i - 1];
        out.push(prev.wrapping_add(diffs[i]));
    }
    if *out.last().expect("n_samples >= 1") != xn {
        return Err(MseedError::Codec {
            encoding: enc,
            detail: format!(
                "reverse integration constant mismatch: decoded {}, header {}",
                out.last().unwrap(),
                xn
            ),
        });
    }
    Ok(out)
}

/// Upper bound on samples that fit in `frames` Steim-1 frames (4 per word).
pub fn steim1_max_samples(frames: usize) -> usize {
    frames.saturating_mul(15 * 4)
}

/// Upper bound on samples that fit in `frames` Steim-2 frames (7 per word).
pub fn steim2_max_samples(frames: usize) -> usize {
    frames.saturating_mul(15 * 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip1(samples: &[i32]) {
        let enc = encode_steim1(samples, 0, 256).unwrap();
        assert_eq!(enc.samples_encoded, samples.len(), "all samples must fit");
        let dec = decode_steim1(&enc.bytes, samples.len()).unwrap();
        assert_eq!(dec, samples);
    }

    fn roundtrip2(samples: &[i32]) {
        let enc = encode_steim2(samples, 0, 256).unwrap();
        assert_eq!(enc.samples_encoded, samples.len(), "all samples must fit");
        let dec = decode_steim2(&enc.bytes, samples.len()).unwrap();
        assert_eq!(dec, samples);
    }

    #[test]
    fn steim1_small_sequences() {
        roundtrip1(&[42]);
        roundtrip1(&[1, 2, 3, 4, 5]);
        roundtrip1(&[0, 0, 0, 0]);
        roundtrip1(&[-1, 1, -1, 1, -1, 1, -1]);
        roundtrip1(&[100, 228, 356, 100, -300]); // 8-bit diffs
        roundtrip1(&[0, 30_000, -30_000, 0]); // 16-bit diffs
        roundtrip1(&[0, 1_000_000, -1_000_000]); // 32-bit diffs
    }

    #[test]
    fn steim2_small_sequences() {
        roundtrip2(&[42]);
        roundtrip2(&[1, 2, 3, 4, 5, 6, 7, 8]);
        roundtrip2(&[0; 100]);
        roundtrip2(&[5, 3, 8, 2, 9, 1, 4]); // tiny diffs -> 4/5/6-bit packings
        roundtrip2(&[0, 500, -500, 400, -400]); // 10-bit
        roundtrip2(&[0, 16_000, -16_000]); // 15-bit
        roundtrip2(&[0, 200_000_000, -200_000_000]); // 30-bit
    }

    #[test]
    fn steim1_extreme_diffs_wrap() {
        roundtrip1(&[i32::MAX, i32::MIN, i32::MAX]);
    }

    #[test]
    fn steim2_rejects_oversized_diff() {
        // Difference of 2^30 exceeds the 30-bit signed range.
        let err = encode_steim2(&[0, 1 << 30], 0, 16).unwrap_err();
        assert!(matches!(err, MseedError::Unrepresentable { .. }));
    }

    #[test]
    fn steim1_frame_budget_partial_encode() {
        // 1 frame = 13 usable words in frame 0 = at most 52 samples at 4/word.
        let samples: Vec<i32> = (0..1000).collect();
        let enc = encode_steim1(&samples, 0, 1).unwrap();
        assert_eq!(enc.frames_used, 1);
        assert!(enc.samples_encoded <= 52);
        assert!(enc.samples_encoded > 0);
        let dec = decode_steim1(&enc.bytes, enc.samples_encoded).unwrap();
        assert_eq!(&dec[..], &samples[..enc.samples_encoded]);
    }

    #[test]
    fn steim2_denser_than_steim1_on_small_diffs() {
        // Slowly-varying waveform: Steim-2 should use fewer frames.
        let samples: Vec<i32> = (0..2000)
            .map(|i| ((i as f64 / 10.0).sin() * 6.0) as i32)
            .collect();
        let e1 = encode_steim1(&samples, 0, 256).unwrap();
        let e2 = encode_steim2(&samples, 0, 256).unwrap();
        assert_eq!(e1.samples_encoded, samples.len());
        assert_eq!(e2.samples_encoded, samples.len());
        assert!(
            e2.frames_used < e1.frames_used,
            "steim2 {} frames !< steim1 {} frames",
            e2.frames_used,
            e1.frames_used
        );
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let enc = encode_steim1(&[1, 2, 3], 0, 16).unwrap();
        assert!(decode_steim1(&enc.bytes[..32], 3).is_err());
    }

    #[test]
    fn decode_rejects_sample_overclaim() {
        let enc = encode_steim1(&[1, 2, 3], 0, 16).unwrap();
        assert!(decode_steim1(&enc.bytes, 1000).is_err());
    }

    #[test]
    fn decode_detects_corruption_via_xn() {
        let mut enc = encode_steim1(&(0..100).collect::<Vec<i32>>(), 0, 16).unwrap();
        // Flip a bit in the first data word (frame 0, word 3 — right after
        // the ctrl/X0/Xn header words); trailing bytes may be null padding.
        enc.bytes[15] ^= 0x01;
        let res = decode_steim1(&enc.bytes, 100);
        assert!(res.is_err(), "corruption must be detected by Xn check");
    }

    #[test]
    fn empty_decode_is_empty() {
        assert_eq!(decode_steim1(&[0u8; 64], 0).unwrap(), Vec::<i32>::new());
    }

    #[test]
    fn tail_of_three_small_diffs() {
        // Exercises the rem==3 padded 8-bit packing in Steim-1.
        roundtrip1(&[10, 11, 12]);
        roundtrip2(&[10, 11, 12]);
    }

    #[test]
    fn words_left_closed_form_matches_slot_walk() {
        // The closed form must agree with a literal walk over the
        // remaining slots for every reachable builder state.
        for max_frames in [1usize, 2, 3, 7] {
            let total = max_frames * WORDS_PER_FRAME;
            let mut b = FrameBuilder::new(max_frames);
            loop {
                let used = b.words.len();
                let mut walked = 0usize;
                for pos in used..total {
                    if !pos.is_multiple_of(WORDS_PER_FRAME) {
                        walked += 1;
                    }
                }
                assert_eq!(
                    b.words_left(),
                    walked,
                    "mismatch at used={used} max_frames={max_frames}"
                );
                if b.words_left() == 0 {
                    break;
                }
                b.push_data(1, 0);
            }
        }
    }

    #[test]
    fn large_encode_stays_linear() {
        // Regression guard for the quadratic words_left(): encoding 100k
        // samples into a huge frame budget must finish instantly. An
        // explicit time bound would be flaky; bounding the frame budget
        // sanity-checks the path without timing.
        let samples: Vec<i32> = (0..100_000).map(|i| (i % 251) - 125).collect();
        let e = encode_steim2(&samples, 0, 1 << 16).unwrap();
        assert_eq!(e.samples_encoded, samples.len());
        let dec = decode_steim2(&e.bytes, samples.len()).unwrap();
        assert_eq!(dec, samples);
    }
}
