//! MiniSEED 2.4 substrate for the Lazy ETL reproduction.
//!
//! The paper's source datastore is a repository of MiniSEED (mSEED) files —
//! the exchange format of the seismological community. This crate implements
//! the format from scratch:
//!
//! * [`btime`] — SEED binary time and a microsecond [`btime::Timestamp`];
//! * [`record`] — the 48-byte fixed header, blockettes 1000/1001/100, and
//!   whole-record parsing;
//! * [`steim`] — Steim-1/Steim-2 waveform compression codecs;
//! * [`encoding`] — plain big-endian codecs and the encoding registry;
//! * [`read`] — full record iteration **and** the metadata-only scan that
//!   makes lazy initial loading cheap;
//! * [`mod@write`] — serialization of sample streams into fixed-length records;
//! * [`gen`] — deterministic synthetic repository generation (substitute
//!   for the paper’s ORFEUS data, see ARCHITECTURE.md);
//! * [`inventory`] — the demo station inventory, including the streams the
//!   paper's Figure 1 queries reference;
//! * [`sac`] — the SAC binary waveform format (second scientific format,
//!   demonstrating the format-agnostic extraction boundary).

#![warn(missing_docs)]

pub mod btime;
pub mod csv;
pub mod encoding;
pub mod error;
pub mod gen;
pub mod inventory;
pub mod read;
pub mod record;
pub mod sac;
pub mod steim;
pub mod write;

pub use btime::{BTime, Timestamp};
pub use encoding::{DataEncoding, Samples, SamplesRef};
pub use error::{MseedError, Result};
pub use read::{
    read_file, read_records, read_records_at, scan_metadata, scan_metadata_file,
    scan_metadata_reader, FileScan, RecordMeta,
};
pub use record::{Record, RecordHeader, SourceId};
pub use write::{write_file, write_records, WriteOptions};
