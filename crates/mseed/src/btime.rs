//! SEED binary time (BTIME) and a microsecond-precision [`Timestamp`].
//!
//! SEED encodes record start times as a 10-byte structure of year,
//! day-of-year, hour, minute, second and a fraction counted in units of
//! 0.0001 s. Database-side processing wants a single comparable integer, so
//! this module also provides [`Timestamp`]: microseconds since the Unix
//! epoch, with civil-date conversions implemented from first principles
//! (no external date-time dependency).

use crate::error::{MseedError, Result};
use std::fmt;

/// Microseconds since 1970-01-01T00:00:00 UTC.
///
/// The warehouse stores all sample and record times in this form; it is
/// totally ordered, cheap to compare, and converts losslessly to and from
/// [`BTime`] (which has 100 µs resolution — the conversion preserves the
/// coarser of the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

/// Days from the civil epoch 1970-01-01 for a (year, month, day) triple.
///
/// Howard Hinnant's `days_from_civil` algorithm, valid for all i64-range
/// dates we care about.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`]: (year, month, day) for a day count.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// True iff `year` is a Gregorian leap year.
pub fn is_leap_year(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `year` (365 or 366).
pub fn days_in_year(year: i64) -> u32 {
    if is_leap_year(year) {
        366
    } else {
        365
    }
}

impl Timestamp {
    /// Minimum representable timestamp.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// Maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// Build from a civil UTC date and time-of-day.
    ///
    /// `micros` is the sub-second part in microseconds.
    pub fn from_ymd_hms(
        year: i64,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
        micros: u32,
    ) -> Timestamp {
        let days = days_from_civil(year, month, day);
        let secs = days * 86_400 + hour as i64 * 3_600 + minute as i64 * 60 + second as i64;
        Timestamp(secs * 1_000_000 + micros as i64)
    }

    /// Microseconds since the epoch.
    pub fn micros(self) -> i64 {
        self.0
    }

    /// Whole seconds since the epoch (floor).
    pub fn as_secs(self) -> i64 {
        self.0.div_euclid(1_000_000)
    }

    /// Sub-second microsecond component in `[0, 1_000_000)`.
    pub fn subsec_micros(self) -> u32 {
        self.0.rem_euclid(1_000_000) as u32
    }

    /// Shift by a signed number of microseconds.
    pub fn add_micros(self, us: i64) -> Timestamp {
        Timestamp(self.0 + us)
    }

    /// Decompose into (year, month, day, hour, minute, second, micros).
    pub fn to_civil(self) -> (i64, u32, u32, u32, u32, u32, u32) {
        let secs = self.as_secs();
        let micros = self.subsec_micros();
        let days = secs.div_euclid(86_400);
        let sod = secs.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        (
            y,
            m,
            d,
            (sod / 3_600) as u32,
            ((sod % 3_600) / 60) as u32,
            (sod % 60) as u32,
            micros,
        )
    }

    /// Parse an ISO-8601-ish literal: `YYYY-MM-DD[THH:MM:SS[.ffffff]]`.
    ///
    /// This is the literal syntax accepted by the SQL layer (the paper's
    /// Figure 1 uses e.g. `'2010-01-12T22:15:00.000'`). A space is accepted
    /// in place of `T`.
    pub fn parse_iso(s: &str) -> Result<Timestamp> {
        let bad = |msg: &str| MseedError::InvalidTime(format!("{msg}: {s:?}"));
        let s = s.trim();
        let (date, time) = match s.find(['T', ' ']) {
            Some(i) => (&s[..i], Some(&s[i + 1..])),
            None => (s, None),
        };
        let mut dp = date.split('-');
        let year: i64 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing year"))?;
        let month: u32 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing month"))?;
        let day: u32 = dp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("missing day"))?;
        if dp.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(bad("invalid date"));
        }
        let (mut hour, mut minute, mut second, mut micros) = (0u32, 0u32, 0u32, 0u32);
        if let Some(t) = time {
            let (hms, frac) = match t.find('.') {
                Some(i) => (&t[..i], Some(&t[i + 1..])),
                None => (t, None),
            };
            let mut tp = hms.split(':');
            hour = tp
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad("missing hour"))?;
            minute = tp
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad("missing minute"))?;
            second = tp
                .next()
                .map_or(Ok(0), |v| v.parse().map_err(|_| bad("invalid second")))?;
            if tp.next().is_some() || hour > 23 || minute > 59 || second > 60 {
                return Err(bad("invalid time of day"));
            }
            if let Some(frac) = frac {
                if frac.is_empty() || frac.len() > 6 || !frac.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(bad("invalid fractional seconds"));
                }
                let mut val: u32 = frac.parse().map_err(|_| bad("invalid fraction"))?;
                for _ in frac.len()..6 {
                    val *= 10;
                }
                micros = val;
            }
        }
        Ok(Timestamp::from_ymd_hms(
            year, month, day, hour, minute, second, micros,
        ))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s, us) = self.to_civil();
        write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{us:06}")
    }
}

/// SEED BTIME: the 10-byte binary time carried in every record header.
///
/// Fields follow the SEED 2.4 manual, chapter 8. The fraction (`tenth_ms`)
/// counts 0.0001-second units, so BTIME resolution is 100 µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTime {
    /// Four-digit year, e.g. 2010.
    pub year: u16,
    /// Day of year, 1..=366.
    pub day_of_year: u16,
    /// Hour of day, 0..=23.
    pub hour: u8,
    /// Minute of hour, 0..=59.
    pub minute: u8,
    /// Second of minute, 0..=60 (60 allows leap seconds).
    pub second: u8,
    /// Fraction of second in units of 0.0001 s, 0..=9999.
    pub tenth_ms: u16,
}

impl BTime {
    /// Serialized size in bytes.
    pub const SIZE: usize = 10;

    /// Convert a day-of-year to (month, day-of-month) within `year`.
    pub fn month_day(year: i64, doy: u32) -> Result<(u32, u32)> {
        if doy == 0 || doy > days_in_year(year) {
            return Err(MseedError::InvalidTime(format!(
                "day-of-year {doy} out of range for year {year}"
            )));
        }
        let leap = is_leap_year(year) as u32;
        let lengths = [31, 28 + leap, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
        let mut rem = doy;
        for (i, len) in lengths.iter().enumerate() {
            if rem <= *len {
                return Ok((i as u32 + 1, rem));
            }
            rem -= len;
        }
        unreachable!("doy bounded by days_in_year");
    }

    /// Day-of-year for a (year, month, day) date.
    pub fn day_of_year_for(year: i64, month: u32, day: u32) -> u32 {
        let leap = is_leap_year(year) as u32;
        let cum = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];
        let extra = if month > 2 { leap } else { 0 };
        cum[(month - 1) as usize] + extra + day
    }

    /// Convert to a [`Timestamp`] (exact: BTIME has 100 µs resolution).
    pub fn to_timestamp(self) -> Result<Timestamp> {
        let (month, day) = Self::month_day(self.year as i64, self.day_of_year as u32)?;
        if self.hour > 23 || self.minute > 59 || self.second > 60 || self.tenth_ms > 9999 {
            return Err(MseedError::InvalidTime(format!("{self:?}")));
        }
        Ok(Timestamp::from_ymd_hms(
            self.year as i64,
            month,
            day,
            self.hour as u32,
            self.minute as u32,
            self.second as u32,
            self.tenth_ms as u32 * 100,
        ))
    }

    /// Convert from a [`Timestamp`], truncating sub-100 µs precision.
    pub fn from_timestamp(ts: Timestamp) -> BTime {
        let (y, m, d, h, mi, s, us) = ts.to_civil();
        BTime {
            year: y as u16,
            day_of_year: Self::day_of_year_for(y, m, d) as u16,
            hour: h as u8,
            minute: mi as u8,
            second: s as u8,
            tenth_ms: (us / 100) as u16,
        }
    }

    /// Parse from the SEED on-disk representation (big-endian).
    pub fn parse(buf: &[u8]) -> Result<BTime> {
        if buf.len() < Self::SIZE {
            return Err(MseedError::Truncated {
                context: "BTIME",
                needed: Self::SIZE,
                available: buf.len(),
            });
        }
        Ok(BTime {
            year: u16::from_be_bytes([buf[0], buf[1]]),
            day_of_year: u16::from_be_bytes([buf[2], buf[3]]),
            hour: buf[4],
            minute: buf[5],
            second: buf[6],
            // buf[7] is the unused alignment byte
            tenth_ms: u16::from_be_bytes([buf[8], buf[9]]),
        })
    }

    /// Serialize to the SEED on-disk representation (big-endian).
    pub fn write(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.year.to_be_bytes());
        out.extend_from_slice(&self.day_of_year.to_be_bytes());
        out.push(self.hour);
        out.push(self.minute);
        out.push(self.second);
        out.push(0); // unused
        out.extend_from_slice(&self.tenth_ms.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(Timestamp::from_ymd_hms(1970, 1, 1, 0, 0, 0, 0).0, 0);
    }

    #[test]
    fn civil_roundtrip_sample_dates() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1988, 2, 29),
            (2000, 2, 29),
            (2010, 1, 12),
            (2013, 8, 26),
            (2026, 6, 10),
            (1969, 12, 31),
            (1900, 3, 1),
        ] {
            let ts = Timestamp::from_ymd_hms(y, m, d, 12, 34, 56, 789_000);
            let (y2, m2, d2, h, mi, s, us) = ts.to_civil();
            assert_eq!((y, m, d), (y2, m2, d2));
            assert_eq!((h, mi, s, us), (12, 34, 56, 789_000));
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2013));
        assert_eq!(days_in_year(2000), 366);
        assert_eq!(days_in_year(2001), 365);
    }

    #[test]
    fn day_of_year_conversions() {
        assert_eq!(BTime::day_of_year_for(2010, 1, 12), 12);
        assert_eq!(BTime::day_of_year_for(2012, 3, 1), 61); // leap
        assert_eq!(BTime::day_of_year_for(2013, 3, 1), 60);
        assert_eq!(BTime::month_day(2010, 12).unwrap(), (1, 12));
        assert_eq!(BTime::month_day(2012, 61).unwrap(), (3, 1));
        assert_eq!(BTime::month_day(2012, 366).unwrap(), (12, 31));
        assert!(BTime::month_day(2013, 366).is_err());
        assert!(BTime::month_day(2013, 0).is_err());
    }

    #[test]
    fn btime_timestamp_roundtrip() {
        let bt = BTime {
            year: 2010,
            day_of_year: 12,
            hour: 22,
            minute: 15,
            second: 1,
            tenth_ms: 1234,
        };
        let ts = bt.to_timestamp().unwrap();
        assert_eq!(BTime::from_timestamp(ts), bt);
        assert_eq!(ts.to_string(), "2010-01-12T22:15:01.123400");
    }

    #[test]
    fn btime_binary_roundtrip() {
        let bt = BTime {
            year: 1988,
            day_of_year: 366,
            hour: 23,
            minute: 59,
            second: 60,
            tenth_ms: 9999,
        };
        let mut buf = Vec::new();
        bt.write(&mut buf);
        assert_eq!(buf.len(), BTime::SIZE);
        assert_eq!(BTime::parse(&buf).unwrap(), bt);
    }

    #[test]
    fn btime_parse_truncated() {
        assert!(matches!(
            BTime::parse(&[0u8; 5]),
            Err(MseedError::Truncated { .. })
        ));
    }

    #[test]
    fn parse_iso_full() {
        let ts = Timestamp::parse_iso("2010-01-12T22:15:00.000").unwrap();
        assert_eq!(ts, Timestamp::from_ymd_hms(2010, 1, 12, 22, 15, 0, 0));
        let ts = Timestamp::parse_iso("2010-01-12 22:15:02.5").unwrap();
        assert_eq!(ts, Timestamp::from_ymd_hms(2010, 1, 12, 22, 15, 2, 500_000));
        let ts = Timestamp::parse_iso("2010-01-12").unwrap();
        assert_eq!(ts, Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0));
    }

    #[test]
    fn parse_iso_rejects_garbage() {
        for bad in [
            "",
            "2010",
            "2010-13-01",
            "2010-01-32",
            "2010-01-12T25:00:00",
            "2010-01-12T10:61:00",
            "abcd-01-12",
            "2010-01-12T10:00:00.1234567",
            "2010-01-12T10:00:00.",
        ] {
            assert!(Timestamp::parse_iso(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_negative_timestamp() {
        let ts = Timestamp::from_ymd_hms(1969, 12, 31, 23, 59, 59, 500_000);
        assert!(ts.0 < 0);
        assert_eq!(ts.to_string(), "1969-12-31T23:59:59.500000");
    }
}
