//! Serialization of sample streams into fixed-length MiniSEED records.
//!
//! The writer packs a continuous time series into as many fixed-length
//! records as needed: FSDH at offset 0, Blockette 1000 at 48, Blockette 1001
//! at 56, payload from offset 64, zero padding to the record length. This is
//! the layout the overwhelming majority of real-world MiniSEED uses and is
//! what the synthetic repository generator emits.

use crate::btime::{BTime, Timestamp};
use crate::encoding::{self, DataEncoding, SamplesRef};
use crate::error::{MseedError, Result};
use crate::record::{RecordHeader, SourceId, FSDH_SIZE};

/// Offset at which payload data begins in records written by this library.
pub const DATA_OFFSET: usize = 64;

/// Options controlling record serialization.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Record length in bytes; must be a power of two in `128..=65536`.
    pub record_length: usize,
    /// Payload encoding.
    pub encoding: DataEncoding,
    /// Data quality indicator, normally `'D'`.
    pub quality: char,
    /// Sequence number of the first record written.
    pub first_sequence: u32,
    /// Timing quality percentage stored in Blockette 1001.
    pub timing_quality: u8,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            record_length: 4096,
            encoding: DataEncoding::Steim2,
            quality: 'D',
            first_sequence: 1,
            timing_quality: 100,
        }
    }
}

/// Derive the SEED (factor, multiplier) pair for a sample rate.
///
/// Integral rates map to `(rate, 1)`; reciprocal-of-integral rates (e.g.
/// 0.1 Hz) map to `(-1/rate, 1)`. Other rates are not representable in the
/// FSDH alone and are rejected (Blockette 100 support is read-side only).
pub fn rate_to_factor(rate: f64) -> Result<(i16, i16)> {
    if rate <= 0.0 {
        return Err(MseedError::InvalidField {
            field: "sample rate",
            detail: format!("rate {rate} must be positive"),
        });
    }
    if rate >= 1.0 && rate.fract() == 0.0 && rate <= i16::MAX as f64 {
        return Ok((rate as i16, 1));
    }
    let period = 1.0 / rate;
    if period.fract().abs() < 1e-9 && period <= i16::MAX as f64 {
        return Ok((-(period as i16), 1));
    }
    Err(MseedError::InvalidField {
        field: "sample rate",
        detail: format!("rate {rate} Hz not representable as factor/multiplier"),
    })
}

/// Serialize a continuous time series into MiniSEED records.
///
/// Splits `samples` across consecutive records, advancing the start time by
/// the sample period, and returns the concatenated record bytes — i.e. a
/// complete MiniSEED file body for this stream segment.
pub fn write_records(
    source: &SourceId,
    start: Timestamp,
    sample_rate: f64,
    samples: SamplesRef<'_>,
    opts: &WriteOptions,
) -> Result<Vec<u8>> {
    if !opts.record_length.is_power_of_two() || !(128..=65536).contains(&opts.record_length) {
        return Err(MseedError::InvalidField {
            field: "record length",
            detail: format!(
                "{} is not a power of two in 128..=65536",
                opts.record_length
            ),
        });
    }
    if samples.is_empty() {
        return Ok(Vec::new());
    }
    let (factor, multiplier) = rate_to_factor(sample_rate)?;
    let period_us = (1_000_000.0 / sample_rate).round() as i64;
    let payload_capacity = opts.record_length - DATA_OFFSET;
    let record_length_exp = opts.record_length.trailing_zeros() as u8;

    let mut out = Vec::new();
    let mut consumed = 0usize;
    let mut seq = opts.first_sequence;
    let mut prev_sample = 0i32;
    let mut record_start = start;
    while consumed < samples.len() {
        let remaining = samples.suffix(consumed);
        let encoded = encoding::encode(opts.encoding, &remaining, prev_sample, payload_capacity)?;
        let n = encoded.samples_encoded.min(u16::MAX as usize);
        if n == 0 {
            return Err(MseedError::Codec {
                encoding: opts.encoding.name(),
                detail: "record too small to hold any sample".into(),
            });
        }
        // If u16 clamped the count, re-encode the exact slice so payload
        // matches the header (only possible with >65535 samples/record,
        // which needs 256 KiB records — out of range — but stay correct).
        let encoded = if n < encoded.samples_encoded {
            let exact = match remaining {
                SamplesRef::Ints(v) => encoding::encode(
                    opts.encoding,
                    &SamplesRef::Ints(&v[..n]),
                    prev_sample,
                    payload_capacity,
                )?,
                SamplesRef::Floats(v) => encoding::encode(
                    opts.encoding,
                    &SamplesRef::Floats(&v[..n]),
                    prev_sample,
                    payload_capacity,
                )?,
            };
            exact
        } else {
            encoded
        };
        if let SamplesRef::Ints(v) = remaining {
            prev_sample = v[n - 1];
        }
        let frame_count = (encoded.bytes.len() / crate::steim::FRAME_BYTES) as u8;
        let header = RecordHeader {
            sequence_number: seq,
            quality: opts.quality,
            source: source.clone(),
            start_time: BTime::from_timestamp(record_start),
            num_samples: n as u16,
            sample_rate_factor: factor,
            sample_rate_multiplier: multiplier,
            activity_flags: 0,
            io_clock_flags: 0x20, // clock locked
            data_quality_flags: 0,
            num_blockettes: 2,
            time_correction: 0,
            data_offset: DATA_OFFSET as u16,
            blockette_offset: FSDH_SIZE as u16,
        };
        let rec_base = out.len();
        header.write(&mut out);
        // Blockette 1000 at offset 48, chaining to 1001 at 56.
        out.extend_from_slice(&1000u16.to_be_bytes());
        out.extend_from_slice(&56u16.to_be_bytes());
        out.push(opts.encoding.code());
        out.push(1); // big-endian word order
        out.push(record_length_exp);
        out.push(0); // reserved
                     // Blockette 1001 at offset 56, end of chain.
        out.extend_from_slice(&1001u16.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.push(opts.timing_quality);
        out.push(0); // micro_sec
        out.push(0); // reserved
        out.push(if opts.encoding.is_compressed() {
            frame_count
        } else {
            0
        });
        debug_assert_eq!(out.len() - rec_base, DATA_OFFSET);
        out.extend_from_slice(&encoded.bytes);
        // Zero-pad to the fixed record length.
        out.resize(rec_base + opts.record_length, 0);

        consumed += n;
        seq = seq.wrapping_add(1);
        record_start = record_start.add_micros(period_us * n as i64);
    }
    Ok(out)
}

/// Convenience: write a stream segment straight to a file.
pub fn write_file(
    path: &std::path::Path,
    source: &SourceId,
    start: Timestamp,
    sample_rate: f64,
    samples: SamplesRef<'_>,
    opts: &WriteOptions,
) -> Result<()> {
    let bytes = write_records(source, start, sample_rate, samples, opts)?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Samples;
    use crate::read::read_records;

    fn src() -> SourceId {
        SourceId::new("NL", "HGN", "02", "BHZ").unwrap()
    }

    #[test]
    fn rate_mapping() {
        assert_eq!(rate_to_factor(40.0).unwrap(), (40, 1));
        assert_eq!(rate_to_factor(1.0).unwrap(), (1, 1));
        assert_eq!(rate_to_factor(0.1).unwrap(), (-10, 1));
        assert!(rate_to_factor(0.0).is_err());
        assert!(rate_to_factor(2.5).is_err());
    }

    #[test]
    fn single_record_roundtrip() {
        let samples: Vec<i32> = (0..100).map(|i| (i * 3) % 50 - 25).collect();
        let start = Timestamp::from_ymd_hms(2010, 1, 12, 22, 15, 0, 0);
        let bytes = write_records(
            &src(),
            start,
            40.0,
            SamplesRef::Ints(&samples),
            &WriteOptions::default(),
        )
        .unwrap();
        assert_eq!(bytes.len(), 4096);
        let recs: Vec<_> = read_records(&bytes).collect::<Result<_>>().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].header.num_samples, 100);
        assert_eq!(recs[0].start_timestamp().unwrap(), start);
        assert_eq!(recs[0].sample_rate(), 40.0);
        assert_eq!(recs[0].decode_samples().unwrap(), Samples::Ints(samples));
    }

    #[test]
    fn multi_record_split_preserves_stream() {
        // Enough samples to need several 512-byte records.
        let samples: Vec<i32> = (0..5000)
            .map(|i| ((i as f64 / 7.0).sin() * 1000.0) as i32)
            .collect();
        let start = Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0);
        let opts = WriteOptions {
            record_length: 512,
            ..Default::default()
        };
        let bytes = write_records(&src(), start, 40.0, SamplesRef::Ints(&samples), &opts).unwrap();
        assert_eq!(bytes.len() % 512, 0);
        let mut reassembled = Vec::new();
        let mut expect_start = start;
        for (i, rec) in read_records(&bytes).enumerate() {
            let rec = rec.unwrap();
            assert_eq!(rec.header.sequence_number, 1 + i as u32);
            assert_eq!(rec.start_timestamp().unwrap(), expect_start);
            let s = rec.decode_samples().unwrap();
            expect_start = expect_start.add_micros(25_000 * rec.header.num_samples as i64);
            reassembled.extend_from_slice(s.as_ints().unwrap());
        }
        assert_eq!(reassembled, samples);
    }

    #[test]
    fn float_stream_roundtrip() {
        let samples: Vec<f64> = (0..300).map(|i| i as f64 * 0.25).collect();
        let opts = WriteOptions {
            encoding: DataEncoding::Float64,
            record_length: 1024,
            ..Default::default()
        };
        let start = Timestamp::from_ymd_hms(2011, 6, 1, 0, 0, 0, 0);
        let bytes =
            write_records(&src(), start, 20.0, SamplesRef::Floats(&samples), &opts).unwrap();
        let mut got = Vec::new();
        for rec in read_records(&bytes) {
            got.extend(rec.unwrap().decode_samples().unwrap().to_f64());
        }
        assert_eq!(got, samples);
    }

    #[test]
    fn rejects_bad_record_length() {
        let s = [1i32, 2, 3];
        let opts = WriteOptions {
            record_length: 1000,
            ..Default::default()
        };
        assert!(write_records(&src(), Timestamp(0), 40.0, SamplesRef::Ints(&s), &opts).is_err());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let bytes = write_records(
            &src(),
            Timestamp(0),
            40.0,
            SamplesRef::Ints(&[]),
            &WriteOptions::default(),
        )
        .unwrap();
        assert!(bytes.is_empty());
    }

    #[test]
    fn all_encodings_roundtrip_through_records() {
        let ints: Vec<i32> = (0..200).map(|i| i % 100 - 50).collect();
        let floats: Vec<f64> = ints.iter().map(|&i| i as f64 / 3.0).collect();
        let start = Timestamp::from_ymd_hms(2012, 3, 4, 5, 6, 7, 0);
        for enc in [
            DataEncoding::Int16,
            DataEncoding::Int32,
            DataEncoding::Steim1,
            DataEncoding::Steim2,
        ] {
            let opts = WriteOptions {
                encoding: enc,
                record_length: 512,
                ..Default::default()
            };
            let bytes = write_records(&src(), start, 20.0, SamplesRef::Ints(&ints), &opts).unwrap();
            let mut got = Vec::new();
            for rec in read_records(&bytes) {
                got.extend_from_slice(rec.unwrap().decode_samples().unwrap().as_ints().unwrap());
            }
            assert_eq!(got, ints, "encoding {}", enc.name());
        }
        for enc in [DataEncoding::Float32, DataEncoding::Float64] {
            let opts = WriteOptions {
                encoding: enc,
                record_length: 512,
                ..Default::default()
            };
            let bytes =
                write_records(&src(), start, 20.0, SamplesRef::Floats(&floats), &opts).unwrap();
            let mut got = Vec::new();
            for rec in read_records(&bytes) {
                got.extend(rec.unwrap().decode_samples().unwrap().to_f64());
            }
            for (a, b) in got.iter().zip(&floats) {
                assert!((a - b).abs() < 1e-4, "encoding {}", enc.name());
            }
        }
    }
}
