//! MiniSEED data records: the 48-byte fixed header, blockettes, and whole
//! records.
//!
//! A MiniSEED file is a plain concatenation of fixed-length records
//! (commonly 512 B or 4096 B). Each record carries:
//!
//! * the Fixed Section of Data Header (FSDH, 48 bytes) — station/network
//!   identifiers, start time, sample count and rate: this *is* the paper's
//!   record-level metadata (table `R`);
//! * a chain of blockettes — Blockette 1000 declares encoding and record
//!   length and is mandatory for MiniSEED;
//! * the waveform payload — the *actual data* in the paper's terminology,
//!   which Lazy ETL avoids touching until a query needs it.

use crate::btime::{BTime, Timestamp};
use crate::encoding::{self, DataEncoding, Samples};
use crate::error::{MseedError, Result};

/// Size of the fixed section of data header.
pub const FSDH_SIZE: usize = 48;

/// Identity of a data stream: network, station, location, channel (NSLC).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId {
    /// Network code, e.g. `NL` (max 2 chars).
    pub network: String,
    /// Station code, e.g. `ISK` (max 5 chars).
    pub station: String,
    /// Location code, often empty (max 2 chars).
    pub location: String,
    /// Channel code, e.g. `BHE` (max 3 chars).
    pub channel: String,
}

impl SourceId {
    /// Construct, validating the SEED field widths.
    pub fn new(network: &str, station: &str, location: &str, channel: &str) -> Result<SourceId> {
        fn check(field: &'static str, v: &str, max: usize) -> Result<()> {
            if v.len() > max || !v.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
                return Err(MseedError::InvalidField {
                    field,
                    detail: format!("{v:?} exceeds {max} chars or is not alphanumeric"),
                });
            }
            Ok(())
        }
        check("network", network, 2)?;
        check("station", station, 5)?;
        check("location", location, 2)?;
        check("channel", channel, 3)?;
        Ok(SourceId {
            network: network.to_string(),
            station: station.to_string(),
            location: location.to_string(),
            channel: channel.to_string(),
        })
    }
}

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}",
            self.network, self.station, self.location, self.channel
        )
    }
}

/// Parsed Fixed Section of Data Header.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordHeader {
    /// Record sequence number (six ASCII digits on disk), unique per file.
    pub sequence_number: u32,
    /// Data quality indicator: `D`, `R`, `Q` or `M`.
    pub quality: char,
    /// Stream identity (trimmed of padding spaces).
    pub source: SourceId,
    /// Record start time.
    pub start_time: BTime,
    /// Number of samples in the record payload.
    pub num_samples: u16,
    /// Sample rate factor (see [`RecordHeader::sample_rate`]).
    pub sample_rate_factor: i16,
    /// Sample rate multiplier.
    pub sample_rate_multiplier: i16,
    /// Activity flags; bit 1 (0x02) = time correction already applied.
    pub activity_flags: u8,
    /// I/O and clock flags.
    pub io_clock_flags: u8,
    /// Data quality flags.
    pub data_quality_flags: u8,
    /// Number of blockettes following the FSDH.
    pub num_blockettes: u8,
    /// Time correction in 0.0001 s units.
    pub time_correction: i32,
    /// Byte offset of the payload within the record.
    pub data_offset: u16,
    /// Byte offset of the first blockette (0 if none).
    pub blockette_offset: u16,
}

impl RecordHeader {
    /// Nominal sample rate in Hz from the factor/multiplier pair, per the
    /// SEED 2.4 manual.
    pub fn sample_rate(&self) -> f64 {
        let f = self.sample_rate_factor as f64;
        let m = self.sample_rate_multiplier as f64;
        if f == 0.0 || m == 0.0 {
            return 0.0;
        }
        match (f > 0.0, m > 0.0) {
            (true, true) => f * m,
            (true, false) => -f / m,
            (false, true) => -m / f,
            (false, false) => 1.0 / (f * m),
        }
    }

    /// Sample period in microseconds (0 when the rate is 0).
    pub fn sample_period_micros(&self) -> i64 {
        let rate = self.sample_rate();
        if rate <= 0.0 {
            0
        } else {
            (1_000_000.0 / rate).round() as i64
        }
    }

    /// Record start as a [`Timestamp`], honouring an unapplied time
    /// correction (activity-flag bit 0x02 means "already applied").
    pub fn start_timestamp(&self) -> Result<Timestamp> {
        let base = self.start_time.to_timestamp()?;
        if self.time_correction != 0 && self.activity_flags & 0x02 == 0 {
            Ok(base.add_micros(self.time_correction as i64 * 100))
        } else {
            Ok(base)
        }
    }

    /// Time of the last sample plus one period (exclusive end).
    pub fn end_timestamp(&self) -> Result<Timestamp> {
        Ok(self
            .start_timestamp()?
            .add_micros(self.sample_period_micros() * self.num_samples as i64))
    }

    /// Parse a header from the first 48 bytes of a record.
    pub fn parse(buf: &[u8]) -> Result<RecordHeader> {
        if buf.len() < FSDH_SIZE {
            return Err(MseedError::Truncated {
                context: "fixed header",
                needed: FSDH_SIZE,
                available: buf.len(),
            });
        }
        let seq_str = std::str::from_utf8(&buf[0..6]).map_err(|_| MseedError::InvalidField {
            field: "sequence number",
            detail: "not ASCII".into(),
        })?;
        let sequence_number: u32 =
            seq_str
                .trim()
                .parse()
                .map_err(|_| MseedError::InvalidField {
                    field: "sequence number",
                    detail: format!("{seq_str:?} is not numeric"),
                })?;
        let quality = buf[6] as char;
        if !matches!(quality, 'D' | 'R' | 'Q' | 'M') {
            return Err(MseedError::InvalidField {
                field: "data quality indicator",
                detail: format!("{quality:?}"),
            });
        }
        let ascii_field = |range: std::ops::Range<usize>, field: &'static str| -> Result<String> {
            let s = std::str::from_utf8(&buf[range]).map_err(|_| MseedError::InvalidField {
                field,
                detail: "not ASCII".into(),
            })?;
            Ok(s.trim_end().to_string())
        };
        let station = ascii_field(8..13, "station")?;
        let location = ascii_field(13..15, "location")?;
        let channel = ascii_field(15..18, "channel")?;
        let network = ascii_field(18..20, "network")?;
        let start_time = BTime::parse(&buf[20..30])?;
        Ok(RecordHeader {
            sequence_number,
            quality,
            source: SourceId::new(&network, &station, &location, &channel)?,
            start_time,
            num_samples: u16::from_be_bytes([buf[30], buf[31]]),
            sample_rate_factor: i16::from_be_bytes([buf[32], buf[33]]),
            sample_rate_multiplier: i16::from_be_bytes([buf[34], buf[35]]),
            activity_flags: buf[36],
            io_clock_flags: buf[37],
            data_quality_flags: buf[38],
            num_blockettes: buf[39],
            time_correction: i32::from_be_bytes([buf[40], buf[41], buf[42], buf[43]]),
            data_offset: u16::from_be_bytes([buf[44], buf[45]]),
            blockette_offset: u16::from_be_bytes([buf[46], buf[47]]),
        })
    }

    /// Serialize the header into exactly 48 bytes appended to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        let pad = |s: &str, width: usize, out: &mut Vec<u8>| {
            let bytes = s.as_bytes();
            out.extend_from_slice(&bytes[..bytes.len().min(width)]);
            for _ in bytes.len()..width {
                out.push(b' ');
            }
        };
        out.extend_from_slice(format!("{:06}", self.sequence_number % 1_000_000).as_bytes());
        out.push(self.quality as u8);
        out.push(b' ');
        pad(&self.source.station, 5, out);
        pad(&self.source.location, 2, out);
        pad(&self.source.channel, 3, out);
        pad(&self.source.network, 2, out);
        self.start_time.write(out);
        out.extend_from_slice(&self.num_samples.to_be_bytes());
        out.extend_from_slice(&self.sample_rate_factor.to_be_bytes());
        out.extend_from_slice(&self.sample_rate_multiplier.to_be_bytes());
        out.push(self.activity_flags);
        out.push(self.io_clock_flags);
        out.push(self.data_quality_flags);
        out.push(self.num_blockettes);
        out.extend_from_slice(&self.time_correction.to_be_bytes());
        out.extend_from_slice(&self.data_offset.to_be_bytes());
        out.extend_from_slice(&self.blockette_offset.to_be_bytes());
    }
}

/// Blockette 1000: data-only SEED blockette (mandatory in MiniSEED).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blockette1000 {
    /// Payload encoding.
    pub encoding: DataEncoding,
    /// Word order: 1 = big-endian (the only order this library writes).
    pub word_order: u8,
    /// Record length as a power of two (e.g. 12 -> 4096 bytes).
    pub record_length_exp: u8,
}

impl Blockette1000 {
    /// Serialized size.
    pub const SIZE: usize = 8;

    /// Record length in bytes.
    pub fn record_length(&self) -> usize {
        1usize << self.record_length_exp
    }
}

/// Blockette 1001: data extension (timing quality, µs offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blockette1001 {
    /// Vendor-specific timing quality, 0-100 %.
    pub timing_quality: u8,
    /// Additional µs precision for the start time, -50..=+99.
    pub micro_sec: i8,
    /// Number of Steim frames in the payload (0 = unknown).
    pub frame_count: u8,
}

impl Blockette1001 {
    /// Serialized size.
    pub const SIZE: usize = 8;
}

/// Blockette 100: actual sample rate overriding the FSDH nominal rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blockette100 {
    /// Actual sample rate in Hz.
    pub actual_rate: f32,
}

impl Blockette100 {
    /// Serialized size.
    pub const SIZE: usize = 12;
}

/// The blockettes of a record that this library understands.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Blockettes {
    /// Mandatory for MiniSEED.
    pub b1000: Option<Blockette1000>,
    /// Optional timing extension.
    pub b1001: Option<Blockette1001>,
    /// Optional actual-rate override.
    pub b100: Option<Blockette100>,
    /// Types of blockettes encountered but not modelled.
    pub unknown_types: Vec<u16>,
}

/// Walk the blockette chain starting at `first_offset` inside `record`.
pub fn parse_blockettes(record: &[u8], first_offset: u16) -> Result<Blockettes> {
    let mut out = Blockettes::default();
    let mut offset = first_offset as usize;
    let mut hops = 0;
    while offset != 0 {
        hops += 1;
        if hops > 16 {
            return Err(MseedError::InvalidField {
                field: "blockette chain",
                detail: "more than 16 blockettes (cycle?)".into(),
            });
        }
        if offset + 4 > record.len() {
            return Err(MseedError::Truncated {
                context: "blockette header",
                needed: offset + 4,
                available: record.len(),
            });
        }
        let btype = u16::from_be_bytes([record[offset], record[offset + 1]]);
        let next = u16::from_be_bytes([record[offset + 2], record[offset + 3]]);
        let ensure = |need: usize| -> Result<()> {
            if offset + need > record.len() {
                Err(MseedError::Truncated {
                    context: "blockette body",
                    needed: offset + need,
                    available: record.len(),
                })
            } else {
                Ok(())
            }
        };
        match btype {
            1000 => {
                ensure(Blockette1000::SIZE)?;
                let exp = record[offset + 6];
                if !(7..=20).contains(&exp) {
                    return Err(MseedError::InvalidField {
                        field: "blockette 1000 record length",
                        detail: format!("2^{exp} outside 128..1MiB"),
                    });
                }
                out.b1000 = Some(Blockette1000 {
                    encoding: DataEncoding::from_code(record[offset + 4])?,
                    word_order: record[offset + 5],
                    record_length_exp: exp,
                });
            }
            1001 => {
                ensure(Blockette1001::SIZE)?;
                out.b1001 = Some(Blockette1001 {
                    timing_quality: record[offset + 4],
                    micro_sec: record[offset + 5] as i8,
                    frame_count: record[offset + 7],
                });
            }
            100 => {
                ensure(Blockette100::SIZE)?;
                out.b100 = Some(Blockette100 {
                    actual_rate: f32::from_be_bytes([
                        record[offset + 4],
                        record[offset + 5],
                        record[offset + 6],
                        record[offset + 7],
                    ]),
                });
            }
            other => out.unknown_types.push(other),
        }
        if next as usize <= offset && next != 0 {
            return Err(MseedError::InvalidField {
                field: "blockette chain",
                detail: format!("next offset {next} does not advance past {offset}"),
            });
        }
        offset = next as usize;
    }
    Ok(out)
}

/// A fully parsed MiniSEED record with its raw payload.
///
/// The payload stays raw (`payload`) until [`Record::decode_samples`] is
/// called — mirroring the lazy/eager split: metadata scans construct the
/// header and blockettes only, extraction decodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Parsed fixed header.
    pub header: RecordHeader,
    /// Parsed blockettes.
    pub blockettes: Blockettes,
    /// Raw (still encoded) payload bytes.
    pub payload: Vec<u8>,
    /// Total record length in bytes.
    pub record_length: usize,
}

impl Record {
    /// Parse one whole record from the start of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Record> {
        let header = RecordHeader::parse(buf)?;
        let blockettes = parse_blockettes(buf, header.blockette_offset)?;
        let b1000 = blockettes.b1000.ok_or(MseedError::InvalidField {
            field: "blockette 1000",
            detail: "missing (record is not MiniSEED)".into(),
        })?;
        let record_length = b1000.record_length();
        if buf.len() < record_length {
            return Err(MseedError::Truncated {
                context: "record body",
                needed: record_length,
                available: buf.len(),
            });
        }
        let data_offset = header.data_offset as usize;
        if data_offset < FSDH_SIZE || data_offset > record_length {
            return Err(MseedError::InvalidField {
                field: "beginning of data",
                detail: format!("offset {data_offset} outside record"),
            });
        }
        Ok(Record {
            header,
            blockettes,
            payload: buf[data_offset..record_length].to_vec(),
            record_length,
        })
    }

    /// The payload encoding (from Blockette 1000).
    pub fn encoding(&self) -> DataEncoding {
        self.blockettes
            .b1000
            .expect("Record::parse requires b1000")
            .encoding
    }

    /// Decode the waveform samples from the raw payload.
    pub fn decode_samples(&self) -> Result<Samples> {
        encoding::decode(
            self.encoding(),
            &self.payload,
            self.header.num_samples as usize,
        )
    }

    /// Effective sample rate: Blockette 100 actual rate when present,
    /// otherwise the FSDH nominal rate.
    pub fn sample_rate(&self) -> f64 {
        match self.blockettes.b100 {
            Some(b) if b.actual_rate > 0.0 => b.actual_rate as f64,
            _ => self.header.sample_rate(),
        }
    }

    /// Start time including the Blockette 1001 µs extension.
    pub fn start_timestamp(&self) -> Result<Timestamp> {
        let base = self.header.start_timestamp()?;
        match self.blockettes.b1001 {
            Some(b) => Ok(base.add_micros(b.micro_sec as i64)),
            None => Ok(base),
        }
    }

    /// Exclusive end time of the record.
    pub fn end_timestamp(&self) -> Result<Timestamp> {
        let rate = self.sample_rate();
        let period = if rate <= 0.0 {
            0
        } else {
            (1_000_000.0 / rate).round() as i64
        };
        Ok(self
            .start_timestamp()?
            .add_micros(period * self.header.num_samples as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> RecordHeader {
        RecordHeader {
            sequence_number: 42,
            quality: 'D',
            source: SourceId::new("NL", "HGN", "02", "BHZ").unwrap(),
            start_time: BTime {
                year: 2010,
                day_of_year: 12,
                hour: 22,
                minute: 15,
                second: 0,
                tenth_ms: 0,
            },
            num_samples: 100,
            sample_rate_factor: 40,
            sample_rate_multiplier: 1,
            activity_flags: 0,
            io_clock_flags: 0,
            data_quality_flags: 0,
            num_blockettes: 1,
            time_correction: 0,
            data_offset: 64,
            blockette_offset: 48,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), FSDH_SIZE);
        let parsed = RecordHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn header_rejects_bad_quality() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.write(&mut buf);
        buf[6] = b'X';
        assert!(RecordHeader::parse(&buf).is_err());
    }

    #[test]
    fn sample_rate_quadrants() {
        let mut h = sample_header();
        h.sample_rate_factor = 40;
        h.sample_rate_multiplier = 1;
        assert_eq!(h.sample_rate(), 40.0);
        h.sample_rate_factor = 20;
        h.sample_rate_multiplier = -5;
        assert_eq!(h.sample_rate(), 4.0);
        h.sample_rate_factor = -10;
        h.sample_rate_multiplier = 1;
        assert!((h.sample_rate() - 0.1).abs() < 1e-12);
        h.sample_rate_factor = -2;
        h.sample_rate_multiplier = -4;
        assert!((h.sample_rate() - 0.125).abs() < 1e-12);
        h.sample_rate_factor = 0;
        assert_eq!(h.sample_rate(), 0.0);
        assert_eq!(h.sample_period_micros(), 0);
    }

    #[test]
    fn time_correction_applied_only_when_flagged_unapplied() {
        let mut h = sample_header();
        h.time_correction = 5000; // 0.5 s in 0.0001 s units
        let base = h.start_time.to_timestamp().unwrap();
        assert_eq!(h.start_timestamp().unwrap(), base.add_micros(500_000));
        h.activity_flags = 0x02; // already applied
        assert_eq!(h.start_timestamp().unwrap(), base);
    }

    #[test]
    fn end_timestamp_spans_samples() {
        let h = sample_header(); // 100 samples at 40 Hz = 2.5 s
        let start = h.start_timestamp().unwrap();
        assert_eq!(h.end_timestamp().unwrap(), start.add_micros(2_500_000));
    }

    #[test]
    fn source_id_validation() {
        assert!(SourceId::new("NL", "TOOLONGG", "", "BHZ").is_err());
        assert!(SourceId::new("NLX", "HGN", "", "BHZ").is_err());
        assert!(SourceId::new("NL", "HGN", "", "BHZE").is_err());
        assert!(SourceId::new("NL", "HGN", "00", "BHZ").is_ok());
        let id = SourceId::new("NL", "HGN", "", "BHZ").unwrap();
        assert_eq!(id.to_string(), "NL.HGN..BHZ");
    }

    #[test]
    fn blockette_chain_cycle_detected() {
        // Forge a record whose blockette points at itself.
        let mut buf = vec![0u8; 128];
        let h = sample_header();
        let mut head = Vec::new();
        h.write(&mut head);
        buf[..48].copy_from_slice(&head);
        // blockette type 999 at 48, next -> 48 (non-advancing)
        buf[48..50].copy_from_slice(&999u16.to_be_bytes());
        buf[50..52].copy_from_slice(&48u16.to_be_bytes());
        assert!(parse_blockettes(&buf, 48).is_err());
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(RecordHeader::parse(&[0u8; 10]).is_err());
    }
}
