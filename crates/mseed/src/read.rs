//! Reading MiniSEED files: full record iteration and cheap metadata-only
//! scans.
//!
//! The two entry points mirror the eager/lazy split at the heart of the
//! paper:
//!
//! * [`read_records`] / [`read_file`] parse **everything** — this is what an
//!   eager ETL pass pays per file;
//! * [`scan_metadata`] / [`scan_metadata_file`] parse **only** the 64-byte
//!   header region of each record (header + blockettes) and *seek over* the
//!   payload, which is how lazy initial loading gets away with a fraction of
//!   the I/O and none of the decompression cost.

use crate::btime::Timestamp;
use crate::encoding::DataEncoding;
use crate::error::{MseedError, Result};
use crate::record::{parse_blockettes, Record, RecordHeader, SourceId, FSDH_SIZE};
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// Iterator over whole records in an in-memory MiniSEED byte stream.
pub struct RecordIter<'a> {
    buf: &'a [u8],
    offset: usize,
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset >= self.buf.len() {
            return None;
        }
        match Record::parse(&self.buf[self.offset..]) {
            Ok(rec) => {
                self.offset += rec.record_length;
                Some(Ok(rec))
            }
            Err(e) => {
                self.offset = self.buf.len(); // stop iteration after error
                Some(Err(e))
            }
        }
    }
}

/// Iterate all records in `buf`.
pub fn read_records(buf: &[u8]) -> RecordIter<'_> {
    RecordIter { buf, offset: 0 }
}

/// Read and fully parse every record of a MiniSEED file.
pub fn read_file(path: &Path) -> Result<Vec<Record>> {
    let bytes = std::fs::read(path)?;
    read_records(&bytes).collect()
}

/// Per-record metadata produced by a metadata-only scan.
///
/// This corresponds 1:1 to a row of the warehouse's `R` (records) table:
/// everything a query needs to decide *whether* the record is relevant,
/// and everything the extractor needs to find the payload later.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordMeta {
    /// Record sequence number (unique within its file).
    pub sequence_number: u32,
    /// Stream identity.
    pub source: SourceId,
    /// First sample time.
    pub start: Timestamp,
    /// Exclusive end time (last sample + one period).
    pub end: Timestamp,
    /// Number of samples in the payload.
    pub num_samples: u32,
    /// Nominal sample rate in Hz.
    pub sample_rate: f64,
    /// Payload encoding.
    pub encoding: DataEncoding,
    /// Byte offset of the record within its file.
    pub byte_offset: u64,
    /// Total record length in bytes.
    pub record_length: u32,
    /// Data quality indicator character.
    pub quality: char,
    /// Timing quality percent from Blockette 1001 (255 = absent).
    pub timing_quality: u8,
}

/// Result of scanning one file's metadata.
#[derive(Debug, Clone, Default)]
pub struct FileScan {
    /// One entry per record, in file order.
    pub records: Vec<RecordMeta>,
    /// Total bytes in the file.
    pub file_size: u64,
    /// Bytes actually read to perform the scan (headers only for seekable
    /// scans) — the measure behind the lazy-loading I/O savings.
    pub bytes_read: u64,
}

impl FileScan {
    /// Distinct stream identities present in the file.
    pub fn sources(&self) -> Vec<SourceId> {
        let mut v: Vec<SourceId> = self.records.iter().map(|r| r.source.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Earliest record start in the file.
    pub fn min_start(&self) -> Option<Timestamp> {
        self.records.iter().map(|r| r.start).min()
    }

    /// Latest record end in the file.
    pub fn max_end(&self) -> Option<Timestamp> {
        self.records.iter().map(|r| r.end).max()
    }

    /// Total samples across all records.
    pub fn total_samples(&self) -> u64 {
        self.records.iter().map(|r| r.num_samples as u64).sum()
    }
}

/// Bytes of header region parsed per record during a metadata scan.
///
/// FSDH (48) + B1000 (8) + B1001 (8): the layout this library writes. Files
/// with longer blockette chains fall back to a second bounded read.
const SCAN_PREFIX: usize = 64;

fn meta_from_parts(
    header: RecordHeader,
    blockettes: &crate::record::Blockettes,
    byte_offset: u64,
) -> Result<(RecordMeta, u32)> {
    let b1000 = blockettes.b1000.ok_or(MseedError::InvalidField {
        field: "blockette 1000",
        detail: "missing (record is not MiniSEED)".into(),
    })?;
    let record_length = b1000.record_length() as u32;
    let rate = match blockettes.b100 {
        Some(b) if b.actual_rate > 0.0 => b.actual_rate as f64,
        _ => header.sample_rate(),
    };
    let period = if rate <= 0.0 {
        0
    } else {
        (1_000_000.0 / rate).round() as i64
    };
    let micro = blockettes.b1001.map_or(0, |b| b.micro_sec as i64);
    let start = header.start_timestamp()?.add_micros(micro);
    let end = start.add_micros(period * header.num_samples as i64);
    Ok((
        RecordMeta {
            sequence_number: header.sequence_number,
            source: header.source.clone(),
            start,
            end,
            num_samples: header.num_samples as u32,
            sample_rate: rate,
            encoding: b1000.encoding,
            byte_offset,
            record_length,
            quality: header.quality,
            timing_quality: blockettes.b1001.map_or(255, |b| b.timing_quality),
        },
        record_length,
    ))
}

/// Metadata-only scan of an in-memory byte stream.
///
/// Parses header + blockettes of each record and never touches payloads.
pub fn scan_metadata(buf: &[u8]) -> Result<FileScan> {
    let mut scan = FileScan {
        file_size: buf.len() as u64,
        ..Default::default()
    };
    let mut offset = 0usize;
    while offset < buf.len() {
        let header = RecordHeader::parse(&buf[offset..])?;
        let blockettes = parse_blockettes(&buf[offset..], header.blockette_offset)?;
        let (meta, record_length) = meta_from_parts(header, &blockettes, offset as u64)?;
        scan.bytes_read += SCAN_PREFIX.min(record_length as usize) as u64;
        if record_length < FSDH_SIZE as u32 {
            return Err(MseedError::InvalidField {
                field: "record length",
                detail: format!("{record_length} shorter than header"),
            });
        }
        if offset + record_length as usize > buf.len() {
            return Err(MseedError::Truncated {
                context: "record body",
                needed: offset + record_length as usize,
                available: buf.len(),
            });
        }
        scan.records.push(meta);
        offset += record_length as usize;
    }
    Ok(scan)
}

/// Metadata-only scan of a file on disk, seeking over payloads.
///
/// Reads `SCAN_PREFIX` bytes per record and then `seek`s to the next
/// record, so I/O is proportional to the record *count*, not the file size.
pub fn scan_metadata_file(path: &Path) -> Result<FileScan> {
    let mut file = std::fs::File::open(path)?;
    let file_size = file.metadata()?.len();
    scan_metadata_reader(&mut file, file_size)
}

/// Metadata-only scan over any seekable byte stream of known size.
///
/// The generalization behind [`scan_metadata_file`]: remote sources hand
/// the warehouse a range-fetching reader instead of a path, and the same
/// header-hopping scan (read `SCAN_PREFIX` bytes, seek over the payload)
/// runs against it — I/O stays proportional to the record *count*.
pub fn scan_metadata_reader<R: Read + Seek>(reader: &mut R, file_size: u64) -> Result<FileScan> {
    let file = reader;
    let mut scan = FileScan {
        file_size,
        ..Default::default()
    };
    let mut offset = 0u64;
    let mut prefix = [0u8; SCAN_PREFIX];
    while offset < file_size {
        file.seek(SeekFrom::Start(offset))?;
        let avail = ((file_size - offset) as usize).min(SCAN_PREFIX);
        file.read_exact(&mut prefix[..avail])?;
        scan.bytes_read += avail as u64;
        let header = RecordHeader::parse(&prefix[..avail])?;
        // The common chain (B1000 at 48, B1001 at 56) fits in the prefix;
        // anything longer triggers one bounded fallback read of the record
        // head.
        let blockettes = match parse_blockettes(&prefix[..avail], header.blockette_offset) {
            Ok(b) if b.b1000.is_some() => b,
            _ => {
                let fallback_len = 512usize.min((file_size - offset) as usize);
                let mut big = vec![0u8; fallback_len];
                file.seek(SeekFrom::Start(offset))?;
                file.read_exact(&mut big)?;
                scan.bytes_read += fallback_len as u64;
                parse_blockettes(&big, header.blockette_offset)?
            }
        };
        let (meta, record_length) = meta_from_parts(header, &blockettes, offset)?;
        if record_length < FSDH_SIZE as u32 {
            return Err(MseedError::InvalidField {
                field: "record length",
                detail: format!("{record_length} shorter than header"),
            });
        }
        if offset + record_length as u64 > file_size {
            return Err(MseedError::Truncated {
                context: "record body",
                needed: (offset + record_length as u64) as usize,
                available: file_size as usize,
            });
        }
        scan.records.push(meta);
        offset += record_length as u64;
    }
    Ok(scan)
}

/// Read and decode only the records at the given byte offsets.
///
/// This is the lazy extractor's entry point: the metadata identified which
/// records a query needs; this fetches exactly those.
pub fn read_records_at(path: &Path, offsets: &[(u64, u32)]) -> Result<Vec<Record>> {
    let mut file = std::fs::File::open(path)?;
    let mut out = Vec::with_capacity(offsets.len());
    for &(offset, length) in offsets {
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; length as usize];
        file.read_exact(&mut buf)?;
        out.push(Record::parse(&buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::SamplesRef;
    use crate::write::{write_records, WriteOptions};

    fn make_stream(n: usize, record_length: usize) -> Vec<u8> {
        let samples: Vec<i32> = (0..n as i32).map(|i| (i * 13) % 997 - 498).collect();
        let src = SourceId::new("NL", "HGN", "02", "BHZ").unwrap();
        let start = Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0);
        write_records(
            &src,
            start,
            40.0,
            SamplesRef::Ints(&samples),
            &WriteOptions {
                record_length,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn scan_matches_full_read() {
        let bytes = make_stream(10_000, 512);
        let scan = scan_metadata(&bytes).unwrap();
        let full: Vec<Record> = read_records(&bytes).collect::<Result<_>>().unwrap();
        assert_eq!(scan.records.len(), full.len());
        for (m, r) in scan.records.iter().zip(&full) {
            assert_eq!(m.sequence_number, r.header.sequence_number);
            assert_eq!(m.num_samples as u16, r.header.num_samples);
            assert_eq!(m.start, r.start_timestamp().unwrap());
            assert_eq!(m.end, r.end_timestamp().unwrap());
            assert_eq!(m.record_length as usize, r.record_length);
        }
        assert_eq!(scan.total_samples(), 10_000);
        assert_eq!(scan.sources().len(), 1);
        assert!(scan.min_start().unwrap() < scan.max_end().unwrap());
    }

    #[test]
    fn file_scan_reads_fraction_of_bytes() {
        let dir = std::env::temp_dir().join("lazyetl_scan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.mseed");
        let bytes = make_stream(100_000, 4096);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_metadata_file(&path).unwrap();
        assert_eq!(scan.file_size, bytes.len() as u64);
        assert!(
            scan.bytes_read * 10 < scan.file_size,
            "metadata scan read {} of {} bytes",
            scan.bytes_read,
            scan.file_size
        );
        let mem_scan = scan_metadata(&bytes).unwrap();
        assert_eq!(scan.records, mem_scan.records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_records_at_selective_extraction() {
        let dir = std::env::temp_dir().join("lazyetl_extract_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.mseed");
        let bytes = make_stream(20_000, 512);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_metadata(&bytes).unwrap();
        assert!(scan.records.len() > 4);
        let picks: Vec<(u64, u32)> = scan
            .records
            .iter()
            .skip(1)
            .step_by(3)
            .map(|m| (m.byte_offset, m.record_length))
            .collect();
        let recs = read_records_at(&path, &picks).unwrap();
        assert_eq!(recs.len(), picks.len());
        for (rec, (off, _)) in recs.iter().zip(&picks) {
            let expected = scan.records.iter().find(|m| m.byte_offset == *off).unwrap();
            assert_eq!(rec.header.sequence_number, expected.sequence_number);
            assert_eq!(
                rec.decode_samples().unwrap().len() as u32,
                expected.num_samples
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn iterator_stops_on_garbage() {
        let mut bytes = make_stream(100, 512);
        bytes.extend_from_slice(&[0xFFu8; 100]); // trailing garbage
        let results: Vec<_> = read_records(&bytes).collect();
        assert!(results.last().unwrap().is_err());
    }

    #[test]
    fn empty_input_scans_empty() {
        let scan = scan_metadata(&[]).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.total_samples(), 0);
        assert_eq!(scan.min_start(), None);
    }
}
