//! Property tests for the codec and time substrates: whatever the
//! generator produces, decode(encode(x)) == x.

use lazyetl_mseed::btime::{BTime, Timestamp};
use lazyetl_mseed::encoding::{decode, encode, DataEncoding, Samples, SamplesRef};
use lazyetl_mseed::record::SourceId;
use lazyetl_mseed::steim::{decode_steim1, decode_steim2, encode_steim1, encode_steim2};
use lazyetl_mseed::write::{write_records, WriteOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Steim-1 round-trips arbitrary i32 sequences (differences wrap).
    #[test]
    fn steim1_roundtrip(samples in prop::collection::vec(any::<i32>(), 1..600)) {
        let enc = encode_steim1(&samples, 0, 4096).unwrap();
        prop_assert_eq!(enc.samples_encoded, samples.len());
        let dec = decode_steim1(&enc.bytes, samples.len()).unwrap();
        prop_assert_eq!(dec, samples);
    }

    /// Steim-2 round-trips sequences whose first differences fit 30 bits.
    #[test]
    fn steim2_roundtrip(diffs in prop::collection::vec(-(1i64<<29)..(1i64<<29), 1..600), start in -1000i64..1000) {
        // Integrate differences into a sample stream (clamped to i32).
        let mut samples = Vec::with_capacity(diffs.len());
        let mut acc = start;
        for d in &diffs {
            acc = (acc + d).clamp(i32::MIN as i64 + 1, i32::MAX as i64 - 1);
            samples.push(acc as i32);
        }
        // Re-derived diffs may exceed 30 bits after clamping only if the
        // clamp kicked in at the extremes; clamp margin prevents that.
        let enc = match encode_steim2(&samples, 0, 8192) {
            Ok(e) => e,
            Err(_) => return Ok(()), // extreme diffs: legitimately rejected
        };
        prop_assert_eq!(enc.samples_encoded, samples.len());
        let dec = decode_steim2(&enc.bytes, samples.len()).unwrap();
        prop_assert_eq!(dec, samples);
    }

    /// Plain integer codecs round-trip exactly.
    #[test]
    fn int_codecs_roundtrip(samples in prop::collection::vec(i16::MIN as i32..=i16::MAX as i32, 1..300)) {
        for enc_kind in [DataEncoding::Int16, DataEncoding::Int32] {
            let enc = encode(enc_kind, &SamplesRef::Ints(&samples), 0, 1 << 20).unwrap();
            prop_assert_eq!(enc.samples_encoded, samples.len());
            let dec = decode(enc_kind, &enc.bytes, samples.len()).unwrap();
            prop_assert_eq!(dec, Samples::Ints(samples.clone()));
        }
    }

    /// Float64 codec round-trips bit-exactly for finite values.
    #[test]
    fn float64_roundtrip(samples in prop::collection::vec(-1e12f64..1e12, 1..300)) {
        let enc = encode(DataEncoding::Float64, &SamplesRef::Floats(&samples), 0, 1 << 20).unwrap();
        let dec = decode(DataEncoding::Float64, &enc.bytes, samples.len()).unwrap();
        prop_assert_eq!(dec, Samples::Floats(samples));
    }

    /// Timestamp -> civil -> Timestamp is the identity.
    #[test]
    fn timestamp_civil_roundtrip(us in -60_000_000_000_000_000i64..60_000_000_000_000_000) {
        let ts = Timestamp(us);
        let (y, m, d, h, mi, s, micro) = ts.to_civil();
        let back = Timestamp::from_ymd_hms(y, m, d, h, mi, s, micro);
        prop_assert_eq!(back, ts);
    }

    /// BTime binary serialization round-trips.
    #[test]
    fn btime_binary_roundtrip(
        year in 1900u16..2100,
        doy in 1u16..=365,
        hour in 0u8..24,
        minute in 0u8..60,
        second in 0u8..60,
        tenth_ms in 0u16..10_000,
    ) {
        let bt = BTime { year, day_of_year: doy, hour, minute, second, tenth_ms };
        let mut buf = Vec::new();
        bt.write(&mut buf);
        prop_assert_eq!(BTime::parse(&buf).unwrap(), bt);
        // And through Timestamp (exact at 100us resolution).
        let ts = bt.to_timestamp().unwrap();
        prop_assert_eq!(BTime::from_timestamp(ts), bt);
    }

    /// Full record pipeline: write N samples into records, read them back.
    #[test]
    fn record_stream_roundtrip(
        samples in prop::collection::vec(-100_000i32..100_000, 1..2000),
        record_exp in 7u32..10, // 128..512 byte records
    ) {
        let src = SourceId::new("NL", "HGN", "00", "BHZ").unwrap();
        let start = Timestamp::from_ymd_hms(2010, 6, 1, 0, 0, 0, 0);
        let opts = WriteOptions {
            record_length: 1usize << record_exp,
            encoding: DataEncoding::Steim2,
            ..Default::default()
        };
        let bytes = write_records(&src, start, 40.0, SamplesRef::Ints(&samples), &opts).unwrap();
        prop_assert_eq!(bytes.len() % (1usize << record_exp), 0);
        let mut got = Vec::new();
        for rec in lazyetl_mseed::read_records(&bytes) {
            let rec = rec.unwrap();
            prop_assert_eq!(&rec.header.source, &src);
            got.extend_from_slice(rec.decode_samples().unwrap().as_ints().unwrap());
        }
        prop_assert_eq!(got, samples);
    }

    /// Metadata scans agree with full reads on every generated stream.
    #[test]
    fn scan_agrees_with_read(samples in prop::collection::vec(-5000i32..5000, 50..1500)) {
        let src = SourceId::new("KO", "ISK", "", "BHE").unwrap();
        let start = Timestamp::from_ymd_hms(2012, 3, 4, 5, 6, 7, 0);
        let opts = WriteOptions { record_length: 256, ..Default::default() };
        let bytes = write_records(&src, start, 20.0, SamplesRef::Ints(&samples), &opts).unwrap();
        let scan = lazyetl_mseed::scan_metadata(&bytes).unwrap();
        let full: Vec<_> = lazyetl_mseed::read_records(&bytes).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(scan.records.len(), full.len());
        prop_assert_eq!(scan.total_samples() as usize, samples.len());
        for (m, r) in scan.records.iter().zip(&full) {
            prop_assert_eq!(m.num_samples as usize, r.header.num_samples as usize);
            prop_assert_eq!(m.start, r.start_timestamp().unwrap());
        }
    }
}
