//! Shared infrastructure for the experiment harness.
//!
//! Every experiment in ARCHITECTURE.md’s inventory runs against repositories built
//! here. Generation is deterministic, so repositories are cached on disk
//! (keyed by their parameters) and reused across bench invocations.

#![warn(missing_docs)]

pub mod concurrent;
pub mod federated;
pub mod fresh;
pub mod json;
pub mod kernels;
pub mod planner;
pub mod served;
pub mod warm_restart;

use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl_mseed::inventory::default_inventory;
use lazyetl_mseed::Timestamp;
use std::path::PathBuf;
use std::time::{Duration, Instant};

// The Figure-1 mix, re-exported from its single source of truth in
// `lazyetl-core` (the serving CLI and the tests use the same constants).
pub use lazyetl_core::{FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY};

/// Named experiment scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleName {
    /// 10 files — smoke-test sized.
    Tiny,
    /// 40 files.
    Small,
    /// 96 files.
    Medium,
    /// 240 files.
    Large,
}

impl ScaleName {
    /// Parse from a CLI token.
    pub fn parse(s: &str) -> Option<ScaleName> {
        match s {
            "tiny" => Some(ScaleName::Tiny),
            "small" => Some(ScaleName::Small),
            "medium" => Some(ScaleName::Medium),
            "large" => Some(ScaleName::Large),
            _ => None,
        }
    }

    /// Lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            ScaleName::Tiny => "tiny",
            ScaleName::Small => "small",
            ScaleName::Medium => "medium",
            ScaleName::Large => "large",
        }
    }
}

/// Generator configuration for a named scale.
///
/// All scales cover 2010-01-12 starting 22:00 so the Figure-1 queries are
/// answerable; stations always include the four NL stations and KO.ISK.
pub fn scale_config(scale: ScaleName) -> GeneratorConfig {
    let inv = default_inventory();
    let (stations, channels, files_per_stream, file_secs): (Vec<_>, Vec<String>, u32, u32) =
        match scale {
            ScaleName::Tiny => (
                inv.iter()
                    .filter(|s| s.network == "NL" || s.station == "ISK")
                    .cloned()
                    .collect(),
                vec!["BHZ".into(), "BHE".into()],
                1,
                600,
            ),
            ScaleName::Small => (
                inv.iter()
                    .filter(|s| s.network == "NL" || s.station == "ISK")
                    .cloned()
                    .collect(),
                vec!["BHZ".into(), "BHE".into()],
                4,
                600,
            ),
            ScaleName::Medium => (inv.clone(), vec!["BHZ".into(), "BHE".into()], 6, 600),
            ScaleName::Large => (
                inv.clone(),
                vec!["BHZ".into(), "BHE".into(), "BHN".into()],
                10,
                600,
            ),
        };
    GeneratorConfig {
        stations,
        channels,
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0),
        file_duration_secs: file_secs,
        files_per_stream,
        record_length: 4096,
        events_per_file: 0.4,
        seed: 0xBE_4C_11 ^ files_per_stream as u64,
        ..Default::default()
    }
}

/// Root directory for cached bench repositories.
fn cache_root() -> PathBuf {
    // target/ lives next to the workspace; keep repos out of src trees.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-repos")
}

/// Materialize (or reuse) the repository for a configuration.
///
/// Generation is deterministic, so a completed directory (signalled by a
/// marker file) is reused as-is.
pub fn materialize(tag: &str, config: &GeneratorConfig) -> PathBuf {
    let dir = cache_root().join(format!(
        "{tag}_s{}_c{}_f{}_d{}_r{}_x{:x}",
        config.stations.len(),
        config.channels.len(),
        config.files_per_stream,
        config.file_duration_secs,
        config.record_length,
        config.seed
    ));
    let marker = dir.join(".complete");
    if marker.exists() {
        return dir;
    }
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench repo dir");
    generate_repository(&dir, config).expect("bench repo generation");
    std::fs::write(&marker, b"ok").expect("write marker");
    dir
}

/// Materialize the repository for a named scale.
pub fn scale_repo(scale: ScaleName) -> PathBuf {
    materialize(scale.label(), &scale_config(scale))
}

/// A fresh throwaway copy of a cached repository (for update experiments
/// that mutate files).
pub fn mutable_copy(src: &PathBuf, tag: &str) -> PathBuf {
    let dst = cache_root().join(format!("mut_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dst).ok();
    copy_dir(src, &dst).expect("copy repo");
    std::fs::remove_file(dst.join(".complete")).ok();
    dst
}

pub(crate) fn copy_dir(src: &PathBuf, dst: &PathBuf) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let from = entry.path();
        let to = dst.join(entry.file_name());
        if from.is_dir() {
            copy_dir(&from, &to)?;
        } else {
            std::fs::copy(&from, &to)?;
        }
    }
    Ok(())
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Format a duration compactly for result tables.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

/// Format a byte count compactly.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Print an aligned markdown-ish table (experiment harness output).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line: Vec<String> = header
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("| {} |", line.join(" | "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", cells.join(" | "));
    }
}

/// Queries touching a controlled fraction of NL/ISK stations, used by the
/// selectivity sweep (E4). `k` of the five stations are referenced.
pub fn selectivity_query(k: usize) -> String {
    let stations = ["HGN", "WIT", "OPLO", "WTSB", "ISK"];
    let k = k.clamp(1, stations.len());
    let list: Vec<String> = stations[..k].iter().map(|s| format!("'{s}'")).collect();
    format!(
        "SELECT COUNT(*), AVG(D.sample_value) FROM mseed.dataview \
         WHERE F.station IN ({}) AND F.channel = 'BHZ'",
        list.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse_and_build_configs() {
        for name in ["tiny", "small", "medium", "large"] {
            let s = ScaleName::parse(name).unwrap();
            assert_eq!(s.label(), name);
            let cfg = scale_config(s);
            assert!(cfg.total_files() > 0);
        }
        assert!(ScaleName::parse("gigantic").is_none());
    }

    #[test]
    fn materialize_is_idempotent() {
        let cfg = GeneratorConfig {
            stations: default_inventory()[..1].to_vec(),
            channels: vec!["BHZ".into()],
            files_per_stream: 1,
            file_duration_secs: 10,
            ..Default::default()
        };
        let d1 = materialize("idem_test", &cfg);
        let mtime = std::fs::metadata(d1.join(".complete"))
            .unwrap()
            .modified()
            .unwrap();
        let d2 = materialize("idem_test", &cfg);
        assert_eq!(d1, d2);
        let mtime2 = std::fs::metadata(d2.join(".complete"))
            .unwrap()
            .modified()
            .unwrap();
        assert_eq!(mtime, mtime2, "second call reuses the cache");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_dur(Duration::from_micros(42)), "42us");
        assert_eq!(fmt_dur(Duration::from_millis(42)), "42.0ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_bytes(10), "10B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
    }

    #[test]
    fn selectivity_queries_reference_k_stations() {
        let q1 = selectivity_query(1);
        assert!(q1.contains("'HGN'"));
        assert!(!q1.contains("'ISK'"));
        let q5 = selectivity_query(5);
        assert!(q5.contains("'ISK'"));
        // Clamped.
        assert_eq!(selectivity_query(99), selectivity_query(5));
    }
}
