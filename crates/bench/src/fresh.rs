//! Fresh-data polling (experiment E18).
//!
//! The paper's workflow ends where a live deployment begins: the
//! repository keeps growing while analysts keep re-running the same
//! dashboard queries. This module measures that steady state — a
//! deterministic stream of new files lands between polling rounds, and
//! `K` poller threads re-issue a fixed mix of maintainable queries after
//! every refresh.
//!
//! Two modes run the *identical* update + poll schedule and differ in a
//! single configuration bit:
//!
//! * **incremental** — `maintain_recycled_results: true`: the refresh
//!   delta patches resident recycled results in place, so every poll
//!   after the first pays O(delta);
//! * **recompute** — `maintain_recycled_results: false`: a refresh drops
//!   affected entries and the first poller of each round recomputes each
//!   query from scratch.
//!
//! The harness also cross-checks the final rendered answers of both
//! modes — the bench doubles as an end-to-end incremental ≡ recompute
//! oracle at serving scale.

use crate::{mutable_copy, time};
use lazyetl_core::qcache::ResultCacheStats;
use lazyetl_core::{Warehouse, WarehouseConfig};
use lazyetl_mseed::record::SourceId;
use lazyetl_mseed::Timestamp;
use lazyetl_repo::{updates, Repository};
use std::path::PathBuf;
use std::time::Duration;

/// The polling mix: every maintainable shape the classifier recognises
/// (append core, COUNT-only, mixed COUNT/MIN/MAX/AVG group aggregate) —
/// the same pool the `proptest_maintenance` oracle draws from.
pub const FRESH_QUERIES: &[&str] = &[
    "SELECT COUNT(*) FROM mseed.records",
    "SELECT F.station, COUNT(*), MIN(D.sample_value), MAX(D.sample_value), \
     AVG(D.sample_value) FROM mseed.dataview GROUP BY F.station",
    "SELECT F.station, MIN(D.sample_value), MAX(D.sample_value) \
     FROM mseed.dataview WHERE F.network = 'NL' AND F.channel = 'BHZ' \
     GROUP BY F.station",
];

/// Shape of one E18 run.
#[derive(Debug, Clone)]
pub struct FreshConfig {
    /// Poller threads re-issuing the mix after each refresh.
    pub pollers: usize,
    /// Update rounds (one new file lands per round).
    pub rounds: usize,
}

impl Default for FreshConfig {
    fn default() -> Self {
        FreshConfig {
            pollers: 4,
            rounds: 5,
        }
    }
}

/// Measurements for one mode (incremental or recompute).
#[derive(Debug, Clone)]
pub struct FreshModeResult {
    /// `"incremental"` or `"recompute"`.
    pub mode: &'static str,
    /// Rounds run.
    pub rounds: usize,
    /// Poller threads per round.
    pub pollers: usize,
    /// Total queries issued across all poll phases.
    pub polls: usize,
    /// Time spent applying refreshes (includes in-place patching in
    /// incremental mode).
    pub refresh_total: Duration,
    /// Time spent in the poll phases (all pollers, wall clock).
    pub poll_total: Duration,
    /// Recycler counters after the run.
    pub recycler: ResultCacheStats,
    /// Final rendered answer per query, for cross-mode equivalence.
    pub final_answers: Vec<String>,
}

impl FreshModeResult {
    /// Refresh + poll wall-clock — the figure the gate compares.
    pub fn total(&self) -> Duration {
        self.refresh_total + self.poll_total
    }
}

/// The deterministic update stream: round `i` lands one fresh NL.HGN BHZ
/// file at 2010-01-13 00:{i:02}, far from the seed data so every file is
/// genuinely new (insert-only delta, fresh file_ids).
fn land_update(dir: &PathBuf, round: usize) {
    let mut repo = Repository::open(dir).expect("bench repo reopens");
    let src = SourceId::new("NL", "HGN", "", "BHZ").expect("static source id");
    let start = Timestamp::from_ymd_hms(2010, 1, 13, 0, round as u32, 0, 0);
    updates::add_file(&mut repo, &src, start, 10, 0xE18 + round as u64).expect("add_file");
}

/// Run one mode over its own mutable copy of `src`.
pub fn run_fresh_mode(src: &PathBuf, cfg: &FreshConfig, incremental: bool) -> FreshModeResult {
    let mode = if incremental {
        "incremental"
    } else {
        "recompute"
    };
    let dir = mutable_copy(src, &format!("e18_{mode}"));
    let wh = Warehouse::open_lazy(
        &dir,
        WarehouseConfig {
            auto_refresh: false,
            recycle_query_results: true,
            maintain_recycled_results: incremental,
            ..Default::default()
        },
    )
    .expect("warehouse opens");

    // Warm: make every mix query resident in the recycler before the
    // first update lands, as a long-lived dashboard would be.
    for sql in FRESH_QUERIES {
        wh.query(sql).expect("warm query");
    }

    let mut refresh_total = Duration::ZERO;
    let mut poll_total = Duration::ZERO;
    let mut polls = 0usize;
    for round in 0..cfg.rounds {
        land_update(&dir, round);
        let (summary, t_refresh) = time(|| wh.refresh().expect("refresh"));
        assert!(summary.added > 0, "round {round} produced no delta");
        refresh_total += t_refresh;

        let (_, t_poll) = time(|| {
            std::thread::scope(|scope| {
                for _ in 0..cfg.pollers {
                    scope.spawn(|| {
                        for sql in FRESH_QUERIES {
                            wh.query(sql).expect("poll query");
                        }
                    });
                }
            });
        });
        poll_total += t_poll;
        polls += cfg.pollers * FRESH_QUERIES.len();
    }

    let final_answers = FRESH_QUERIES
        .iter()
        .map(|sql| {
            let out = wh.query(sql).expect("final query");
            out.table.to_ascii(200)
        })
        .collect();
    let recycler = wh.stats_snapshot().recycler;
    drop(wh);
    std::fs::remove_dir_all(&dir).ok();

    FreshModeResult {
        mode,
        rounds: cfg.rounds,
        pollers: cfg.pollers,
        polls,
        refresh_total,
        poll_total,
        recycler,
        final_answers,
    }
}

/// Run both modes over identical schedules; `results_match` is true when
/// every final rendered answer agrees across modes.
pub fn run_fresh_bench(
    src: &PathBuf,
    cfg: &FreshConfig,
) -> (FreshModeResult, FreshModeResult, bool) {
    let incr = run_fresh_mode(src, cfg, true);
    let recomp = run_fresh_mode(src, cfg, false);
    let results_match = incr.final_answers == recomp.final_answers;
    (incr, recomp, results_match)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{materialize, scale_config, ScaleName};

    #[test]
    fn fresh_modes_agree_and_incremental_patches() {
        let src = materialize("fresh_unit", &scale_config(ScaleName::Tiny));
        let cfg = FreshConfig {
            pollers: 2,
            rounds: 2,
        };
        let (incr, recomp, results_match) = run_fresh_bench(&src, &cfg);
        assert!(results_match, "incremental and recompute answers diverged");
        assert_eq!(incr.polls, 2 * 2 * FRESH_QUERIES.len());
        assert!(
            incr.recycler.results_patched >= 1,
            "incremental mode never patched: {:?}",
            incr.recycler
        );
        assert_eq!(
            incr.recycler.recompute_fallbacks, 0,
            "mix should be fully maintainable: {:?}",
            incr.recycler
        );
        assert_eq!(
            recomp.recycler.results_patched, 0,
            "recompute mode must not patch: {:?}",
            recomp.recycler
        );
    }
}
