//! Served-traffic load generation (experiment E14).
//!
//! E12 measured the `&self` query path with in-process threads; E14
//! measures the full serving stack: K **TCP clients** drive the Figure-1
//! mix through the wire protocol against one [`Server`] wrapping one
//! shared [`Warehouse`], all inside this process (no fork/exec — the
//! loadgen stays deterministic and CI-friendly). Reported per run:
//! throughput, p50/p99 latency, the busy-rejection rate admission control
//! produced, and the aggregate record-cache hit rate — swept over worker
//! pool sizes by the harness.
//!
//! Clients are closed-loop: a busy rejection is counted, backed off
//! (500µs) and retried; the latency recorded for a query spans first
//! attempt → result, so backpressure shows up in the percentiles, not
//! just the busy counter.

use crate::concurrent::{percentile, query_mix};
use lazyetl_core::Warehouse;
use lazyetl_server::{Client, QueryReply, Server, ServerConfig, ServerReply, ServerStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one served storm.
#[derive(Debug, Clone)]
pub struct ServedConfig {
    /// Concurrent TCP client connections.
    pub clients: usize,
    /// Queries each client issues (round-robin over the mix).
    pub queries_per_client: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Admission queue depth before BUSY.
    pub queue_depth: usize,
    /// Server-side think time per query (ms) — inflates execution so
    /// admission control becomes observable at tiny scales.
    pub delay_ms: u32,
}

impl Default for ServedConfig {
    fn default() -> Self {
        ServedConfig {
            clients: 4,
            queries_per_client: 12,
            workers: 2,
            queue_depth: 32,
            delay_ms: 0,
        }
    }
}

/// Aggregate result of one served storm.
#[derive(Debug, Clone)]
pub struct ServedRunResult {
    /// Queries answered with rows.
    pub total_queries: usize,
    /// Busy rejections absorbed by client retries.
    pub busy_rejections: usize,
    /// Wall-clock duration of the storm.
    pub elapsed: Duration,
    /// Successful queries per wall-clock second.
    pub throughput_qps: f64,
    /// Median first-attempt→result latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Worst latency.
    pub max: Duration,
    /// Aggregate record-cache hit rate over the storm (from warehouse
    /// counters, so in-process and served traffic measure alike).
    pub cache_hit_rate: f64,
    /// Records decoded across the storm.
    pub records_extracted: u64,
    /// Server counters at the end of the storm (cumulative since serve
    /// start — one server serves one storm here).
    pub server: ServerStats,
}

impl ServedRunResult {
    /// Busy rejections per query attempt.
    pub fn busy_rate(&self) -> f64 {
        let attempts = self.total_queries + self.busy_rejections;
        if attempts == 0 {
            0.0
        } else {
            self.busy_rejections as f64 / attempts as f64
        }
    }
}

/// Serve `wh` on a loopback ephemeral port and drive `cfg.clients` TCP
/// clients over the Figure-1 mix. The server is torn down (gracefully,
/// without a snapshot) before returning.
///
/// Panics if any query fails — correctness failures under served
/// concurrency are what the e2e suite and this harness exist to surface.
pub fn run_served_mix(wh: &Arc<Warehouse>, cfg: &ServedConfig) -> ServedRunResult {
    let server = Server::start(
        Arc::clone(wh),
        "127.0.0.1:0",
        ServerConfig {
            workers: cfg.workers,
            queue_depth: cfg.queue_depth,
            ..Default::default()
        },
    )
    .expect("bind loopback server");
    let addr = server.addr();
    let stats_before = wh.cache_snapshot().stats;
    let mix = query_mix();
    let t0 = Instant::now();
    let per_client: Vec<(Vec<Duration>, usize, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let mix = mix.clone();
                let iters = cfg.queries_per_client;
                let delay_ms = cfg.delay_ms;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    let mut latencies = Vec::with_capacity(iters);
                    let mut busy = 0usize;
                    let mut extracted = 0u64;
                    for i in 0..iters {
                        let sql = mix[(c + i) % mix.len()];
                        let q0 = Instant::now();
                        let (reply, retries) = client
                            .query_retrying(sql, delay_ms, Duration::from_micros(500), 1_000_000)
                            .expect("served query failed");
                        busy += retries;
                        match reply {
                            ServerReply::Result(r) => {
                                latencies.push(q0.elapsed());
                                extracted += r.metrics.records_extracted;
                            }
                            ServerReply::Busy { .. } => {
                                panic!("busy after bounded retries")
                            }
                            ServerReply::Error { code, message } => {
                                panic!("server error {code}: {message}")
                            }
                        }
                    }
                    (latencies, busy, extracted)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let server_stats = server.stats();
    server.stop().expect("graceful server stop");

    let mut latencies: Vec<Duration> = per_client
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    latencies.sort();
    let total_queries = latencies.len();
    let busy_rejections = per_client.iter().map(|&(_, b, _)| b).sum();
    let records_extracted = per_client.iter().map(|&(_, _, e)| e).sum();

    let stats_after = wh.cache_snapshot().stats;
    let hits = stats_after.hits - stats_before.hits;
    let misses = stats_after.misses - stats_before.misses;
    let stale = stats_after.stale_drops - stats_before.stale_drops;
    let lookups = hits + misses + stale;
    ServedRunResult {
        total_queries,
        busy_rejections,
        elapsed,
        throughput_qps: total_queries as f64 / elapsed.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        max: latencies.last().copied().unwrap_or(Duration::ZERO),
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        records_extracted,
        server: server_stats,
    }
}

/// One stream's full sample scan — the large-result workload for the
/// memory-ceiling measurement. Every scale generates NL.HGN/BHZ, and at
/// tiny scale this is already 24 000 rows: hundreds of v2 batches.
pub const MEMCEIL_SCAN: &str =
    "SELECT D.sample_value FROM mseed.dataview WHERE F.station = 'HGN' AND F.channel = 'BHZ'";

/// Configuration of one memory-ceiling run (experiment E14, `memceil`
/// phase): a deliberately slow consumer against small batches, a tiny
/// credit window, and a tight outbound-buffer ceiling.
#[derive(Debug, Clone)]
pub struct MemCeilConfig {
    /// Rows per `ResultBatch` frame.
    pub batch_rows: u32,
    /// Credits granted at `ResultStart` (batches in flight before the
    /// client pulls).
    pub initial_credit: u32,
    /// Server-side ceiling on one connection's encoded-but-unsent bytes.
    pub max_outbuf_bytes: usize,
    /// How long the client plays dead mid-stream.
    pub stall: Duration,
}

impl Default for MemCeilConfig {
    fn default() -> Self {
        MemCeilConfig {
            batch_rows: 256,
            initial_credit: 2,
            max_outbuf_bytes: 32 * 1024,
            stall: Duration::from_millis(300),
        }
    }
}

/// Result of one memory-ceiling run.
#[derive(Debug, Clone)]
pub struct MemCeilResult {
    /// Rows the stream delivered (must equal the serial scan).
    pub rows: u64,
    /// `ResultBatch` frames streamed.
    pub batches_streamed: u64,
    /// Times the cursor was suspended on an empty credit window.
    pub credit_stalls: u64,
    /// High-water mark of the connection's outbound buffer during the
    /// stall — the observable the ceiling assertion gates.
    pub outbuf_hwm_bytes: u64,
    /// The asserted bound: configured ceiling + one batch of slack (a
    /// batch already being encoded when the ceiling trips still lands).
    pub ceiling_bytes: u64,
    /// `outbuf_hwm_bytes <= ceiling_bytes` — server memory stayed
    /// `O(batch)` while the reader stalled on an `O(result)` answer.
    pub ceiling_ok: bool,
    /// Wall-clock duration including the deliberate stall.
    pub elapsed: Duration,
}

/// Stream a large scan through a deliberately slow consumer and measure
/// the server's outbound-memory high-water mark.
///
/// The client takes one batch, then stalls for `cfg.stall` while the
/// cursor has thousands of rows pending: a v1-style server would buffer
/// the whole encoded result; the v2 server must suspend the cursor once
/// the credit window (and at most the outbuf ceiling) is exhausted. The
/// drained stream is verified row-for-row against the serial scan.
pub fn run_memory_ceiling(wh: &Arc<Warehouse>, cfg: &MemCeilConfig) -> MemCeilResult {
    // Serial ground truth (also warms the cache, so the streamed run
    // measures the serving layer, not extraction).
    let expected = wh.query(MEMCEIL_SCAN).expect("serial scan").table;
    assert!(
        expected.num_rows() as u32 > cfg.batch_rows * (cfg.initial_credit + 2),
        "scan too small to outrun the credit window"
    );
    let server = Server::start(
        Arc::clone(wh),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            batch_rows: cfg.batch_rows,
            initial_credit: cfg.initial_credit,
            max_outbuf_bytes: cfg.max_outbuf_bytes,
            ..Default::default()
        },
    )
    .expect("bind loopback server");
    let t0 = Instant::now();
    let mut client = Client::connect(server.addr()).expect("client connects");
    let mut stream = match client.query(MEMCEIL_SCAN).expect("transport ok") {
        QueryReply::Stream(s) => s,
        QueryReply::Busy { .. } => panic!("idle server rejected the scan"),
        QueryReply::Error { code, message } => panic!("scan failed: {code}: {message}"),
    };
    let mut got = stream.schema().clone();
    let first = stream
        .next_batch()
        .expect("first batch")
        .expect("scan is non-empty");
    got.append_table(&first).expect("same schema");

    // Play dead: the server spends its remaining credit, then must hold
    // the cursor. Sample the high-water mark while stalled.
    std::thread::sleep(cfg.stall);
    let stalled = server.stats();

    // Wake up and drain; the answer must be exactly the serial scan.
    for batch in &mut stream {
        let batch = batch.expect("stream batch");
        got.append_table(&batch).expect("same schema");
    }
    let rows = stream.rows();
    drop(stream);
    assert_eq!(
        got, *expected,
        "streamed scan diverged from the serial baseline"
    );
    let elapsed = t0.elapsed();
    let final_stats = server.stats();
    server.stop().expect("graceful server stop");

    // One batch of slack: a batch already being encoded when the ceiling
    // trips still lands in the buffer before pumping pauses.
    let ceiling_bytes = (cfg.max_outbuf_bytes + 16 * 1024) as u64;
    MemCeilResult {
        rows,
        batches_streamed: final_stats.batches_streamed,
        credit_stalls: final_stats.credit_stalls,
        outbuf_hwm_bytes: stalled.outbuf_hwm_bytes.max(final_stats.outbuf_hwm_bytes),
        ceiling_bytes,
        ceiling_ok: final_stats.outbuf_hwm_bytes.max(stalled.outbuf_hwm_bytes) <= ceiling_bytes,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scale_config, ScaleName};
    use lazyetl_core::WarehouseConfig;

    fn tiny_warehouse() -> Arc<Warehouse> {
        let dir = crate::materialize("served_unit", &scale_config(ScaleName::Tiny));
        Arc::new(
            Warehouse::open_lazy(
                &dir,
                WarehouseConfig {
                    auto_refresh: false,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn served_mix_reports_consistent_aggregates() {
        let wh = tiny_warehouse();
        let cfg = ServedConfig {
            clients: 3,
            queries_per_client: 4,
            workers: 2,
            queue_depth: 32,
            delay_ms: 0,
        };
        let r = run_served_mix(&wh, &cfg);
        assert_eq!(r.total_queries, 12);
        assert!(r.throughput_qps > 0.0);
        assert!(r.p50 <= r.p99 && r.p99 <= r.max);
        assert!((0.0..=1.0).contains(&r.cache_hit_rate));
        assert!(r.records_extracted > 0, "cold storm extracts data");
        assert_eq!(r.server.queries_ok as usize, r.total_queries);
        assert_eq!(r.server.queries_err, 0);
        // Warm storm over the same warehouse: extraction-free, hit rate up.
        let r2 = run_served_mix(&wh, &cfg);
        assert_eq!(r2.records_extracted, 0, "warm storm is extraction-free");
        assert!(r2.cache_hit_rate > r.cache_hit_rate);
    }

    #[test]
    fn tight_queue_produces_busy_rejections_yet_completes() {
        let wh = tiny_warehouse();
        wh.query(crate::FIGURE1_Q1).unwrap(); // pre-warm a little
        let cfg = ServedConfig {
            clients: 4,
            queries_per_client: 3,
            workers: 1,
            queue_depth: 1,
            delay_ms: 10,
        };
        let r = run_served_mix(&wh, &cfg);
        assert_eq!(r.total_queries, 12, "every query eventually lands");
        assert!(
            r.busy_rejections > 0,
            "4 clients racing a depth-1 queue with 10ms think time must \
             trip admission control"
        );
        assert_eq!(r.server.busy_rejections as usize, r.busy_rejections);
    }

    #[test]
    fn memory_ceiling_holds_under_a_stalled_reader() {
        let wh = tiny_warehouse();
        let cfg = MemCeilConfig {
            stall: Duration::from_millis(150),
            ..Default::default()
        };
        let r = run_memory_ceiling(&wh, &cfg);
        assert!(r.rows >= 20_000, "scan must dwarf the batch size: {r:?}");
        assert!(
            r.batches_streamed >= r.rows / cfg.batch_rows as u64,
            "result must have streamed in many batches: {r:?}"
        );
        assert!(
            r.credit_stalls >= 1,
            "a stalled reader must suspend the cursor: {r:?}"
        );
        assert!(r.ceiling_ok, "outbuf high water blew the ceiling: {r:?}");
    }
}
