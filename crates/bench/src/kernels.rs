//! E15 "kernel throughput": scalar vs vectorized execution, plus the
//! zone-map pruning short-circuit.
//!
//! The executor has two ways to evaluate every expression batch: the
//! row-at-a-time interpreter (boxed `Value` per cell — the semantic
//! reference) and the store's typed kernels. Production always runs the
//! kernels with interpreter fallback; this experiment pins each path via
//! `ExecContext::vectorized` and measures rows/second over an identical
//! plan, proving the fast path earns its keep **and** that both paths
//! agree row for row. A fourth measurement runs a provably-empty filter
//! with zone-map pruning on vs off, reporting `rows_pruned`.
//!
//! Everything is deterministic: the synthetic table derives from a fixed
//! LCG seed, so baselines gate the behavioural counters tightly.

use lazyetl_query::exec::{execute, ExecContext};
use lazyetl_query::metrics::ExecMetrics;
use lazyetl_query::optimizer::optimize;
use lazyetl_query::planner::{plan_sql, TableSource};
use lazyetl_store::{Catalog, DataType, Field, Schema, Table, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows in the synthetic measurement table for a named scale.
pub fn bench_rows(scale: crate::ScaleName) -> usize {
    match scale {
        crate::ScaleName::Tiny => 200_000,
        crate::ScaleName::Small => 500_000,
        crate::ScaleName::Medium => 1_000_000,
        crate::ScaleName::Large => 2_000_000,
    }
}

/// One scalar-vs-vectorized measurement.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Which operator class ("filter", "project", "aggregate").
    pub kernel: &'static str,
    /// Input rows per run.
    pub rows: usize,
    /// Output rows (identical on both paths by construction).
    pub out_rows: usize,
    /// Best wall-clock of the row-interpreter path.
    pub scalar: Duration,
    /// Best wall-clock of the kernel path.
    pub vectorized: Duration,
    /// Both paths produced byte-identical tables.
    pub results_match: bool,
}

impl KernelResult {
    /// scalar time / vectorized time.
    pub fn speedup(&self) -> f64 {
        self.scalar.as_secs_f64() / self.vectorized.as_secs_f64().max(1e-9)
    }

    /// Input rows per second through the named path.
    pub fn rows_per_sec(&self, d: Duration) -> f64 {
        self.rows as f64 / d.as_secs_f64().max(1e-9)
    }
}

/// The zone-map measurement: a provably-empty filter with pruning on/off.
#[derive(Debug, Clone)]
pub struct ZoneMapResult {
    /// Table rows the pruned scan never touched.
    pub rows: usize,
    /// `rows_pruned` counter after the pruned run (must equal `rows`).
    pub rows_pruned: u64,
    /// Best wall-clock with pruning on.
    pub pruned: Duration,
    /// Best wall-clock with pruning off (scan + filter actually run).
    pub unpruned: Duration,
    /// Both runs returned the same (empty) result.
    pub results_match: bool,
}

/// Everything E15 reports.
#[derive(Debug, Clone)]
pub struct KernelBenchResult {
    /// filter / project / aggregate measurements.
    pub kernels: Vec<KernelResult>,
    /// The pruning measurement.
    pub zone_map: ZoneMapResult,
}

/// One point of the cores-vs-speedup sweep: the aggregate kernel at a
/// fixed worker count.
#[derive(Debug, Clone)]
pub struct ParallelSweepResult {
    /// `ExecContext::parallelism` for this point.
    pub workers: usize,
    /// Input rows.
    pub rows: usize,
    /// Best wall-clock at this worker count.
    pub elapsed: Duration,
    /// 1-worker time / this time.
    pub speedup: f64,
    /// Result table is identical to the 1-worker run.
    pub results_match: bool,
    /// Logical cores of the measuring host — speedup floors only mean
    /// anything when the hardware can actually run 2 workers at once, so
    /// the gate reads this before applying them.
    pub cores: usize,
}

/// Deterministic synthetic table: `station` (5 distinct strings), `v`
/// (float), `qual` (int, ~7% NULL), `t` (increasing timestamp).
pub fn build_bench_catalog(rows: usize) -> Catalog {
    const STATIONS: [&str; 5] = ["HGN", "WIT", "OPLO", "WTSB", "ISK"];
    let schema = Schema::new(vec![
        Field::new("station", DataType::Utf8),
        Field::new("v", DataType::Float64),
        Field::nullable("qual", DataType::Int64),
        Field::new("t", DataType::Timestamp),
    ])
    .expect("bench schema is valid");
    let mut state = 0x5EED_CAFE_u64;
    let mut next = || {
        // xorshift64*: deterministic, dependency-free.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut t = Table::empty(schema);
    for i in 0..rows {
        let r = next();
        t.append_row(vec![
            Value::Utf8(STATIONS[(r % 5) as usize].to_string()),
            Value::Float64(((r >> 8) % 2000) as f64 / 10.0 - 100.0),
            if r % 13 == 0 {
                Value::Null
            } else {
                Value::Int64(((r >> 16) % 100) as i64)
            },
            Value::Timestamp(1_263_333_600_000_000 + i as i64 * 1_000),
        ])
        .expect("bench row matches schema");
    }
    let mut catalog = Catalog::new();
    catalog
        .create_table("samples", t)
        .expect("fresh catalog accepts the table");
    catalog
}

/// Best-of-`reps` wall clock of `f` (first computing the result once for
/// the caller to keep).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed());
        out = Some(r);
    }
    (out.expect("at least one rep"), best)
}

fn run_one(
    catalog: &Catalog,
    sql: &str,
    kernel: &'static str,
    rows: usize,
    reps: usize,
) -> KernelResult {
    let src = TableSource::new(catalog);
    let plan = optimize(&plan_sql(sql, &src).expect("bench SQL parses")).expect("plan optimizes");
    let scalar_ctx = ExecContext {
        vectorized: false,
        zone_map_pruning: false,
        ..ExecContext::new(catalog)
    };
    let vector_ctx = ExecContext {
        zone_map_pruning: false,
        ..ExecContext::new(catalog)
    };
    let (scalar_out, scalar) = best_of(reps, || {
        execute(&plan, &scalar_ctx).expect("scalar path executes")
    });
    let (vector_out, vectorized) = best_of(reps, || {
        execute(&plan, &vector_ctx).expect("vectorized path executes")
    });
    KernelResult {
        kernel,
        rows,
        out_rows: vector_out.num_rows(),
        scalar,
        vectorized,
        results_match: tables_equal(&scalar_out, &vector_out),
    }
}

/// Row-order-sensitive table equality via boxed values (cheap enough at
/// result sizes; both paths preserve input order).
fn tables_equal(a: &Arc<Table>, b: &Arc<Table>) -> bool {
    if a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns() {
        return false;
    }
    for row in 0..a.num_rows() {
        match (a.row(row), b.row(row)) {
            (Ok(ra), Ok(rb)) if ra == rb => {}
            _ => return false,
        }
    }
    true
}

/// Run the whole E15 suite at a row count (`reps` = best-of repetitions).
pub fn run_kernel_bench(rows: usize, reps: usize) -> KernelBenchResult {
    let catalog = build_bench_catalog(rows);
    let kernels = vec![
        run_one(
            &catalog,
            // Conjunction of a float compare and two string predicates:
            // the interpreter clones `station` once per row per predicate.
            "SELECT station, v FROM samples \
             WHERE v > 25.0 AND station IN ('HGN', 'ISK') AND station <> 'XXX'",
            "filter",
            rows,
            reps,
        ),
        run_one(
            &catalog,
            // Arithmetic chain over two columns incl. a NULL-bearing one.
            "SELECT v * 2.0 + 1.0 AS y, qual + 10 AS q, v - qual AS d FROM samples",
            "project",
            rows,
            reps,
        ),
        run_one(
            &catalog,
            // Int-keyed grouping with numeric and string accumulators:
            // MIN/MAX(station) is where the boxed path pays a String
            // clone per row.
            "SELECT qual % 4 AS g, COUNT(*) AS c, SUM(v) AS s, AVG(v) AS a, \
                    MIN(station) AS lo, MAX(station) AS hi \
             FROM samples GROUP BY qual % 4",
            "aggregate",
            rows,
            reps,
        ),
    ];

    // Zone map: `t` spans a known range; a filter beyond max is provably
    // empty, so the pruned run must skip the whole scan.
    let src = TableSource::new(&catalog);
    let sql = "SELECT COUNT(*) AS c FROM samples WHERE t > '2030-01-01T00:00:00.000'";
    let plan = optimize(&plan_sql(sql, &src).expect("bench SQL parses")).expect("plan optimizes");
    let metrics = ExecMetrics::new();
    let pruned_ctx = ExecContext::new(&catalog).with_metrics(&metrics);
    let unpruned_ctx = ExecContext {
        zone_map_pruning: false,
        ..ExecContext::new(&catalog)
    };
    let (pruned_out, pruned) = best_of(reps, || {
        execute(&plan, &pruned_ctx).expect("pruned run executes")
    });
    let rows_pruned_per_run = metrics.snapshot().rows_pruned / reps.max(1) as u64;
    let (unpruned_out, unpruned) = best_of(reps, || {
        execute(&plan, &unpruned_ctx).expect("unpruned run executes")
    });
    let zone_map = ZoneMapResult {
        rows,
        rows_pruned: rows_pruned_per_run,
        pruned,
        unpruned,
        results_match: tables_equal(&pruned_out, &unpruned_out),
    };
    KernelBenchResult { kernels, zone_map }
}

/// The E15 cores-vs-speedup sweep: the aggregate kernel (the heaviest of
/// the three, and the one morsel-driven aggregation targets) at 1, 2 and
/// 4 execution workers over an identical plan. Every point's result must
/// be byte-identical to the 1-worker run — the sweep measures scaling,
/// the determinism harness in the query crate proves the equivalence.
pub fn run_parallel_sweep(rows: usize, reps: usize) -> Vec<ParallelSweepResult> {
    let catalog = build_bench_catalog(rows);
    let src = TableSource::new(&catalog);
    // Every aggregate here is association-free, so parallel output is
    // bit-identical to serial: integer SUM totals in i128, integer AVG
    // sums exactly in f64 (totals stay far below 2^53), and MIN/MAX are
    // pure comparisons. SUM/AVG over `v` (multiples of 0.1, inexact in
    // binary) would differ from serial in the last ULPs when partial
    // sums merge — the equivalence suites pin float behaviour with
    // dyadic inputs instead.
    let sql = "SELECT qual % 4 AS g, COUNT(*) AS c, SUM(qual) AS s, AVG(qual) AS a, \
                      MIN(station) AS lo, MAX(v) AS hi \
               FROM samples GROUP BY qual % 4";
    let plan = optimize(&plan_sql(sql, &src).expect("bench SQL parses")).expect("plan optimizes");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = Vec::new();
    let mut baseline: Option<(Arc<Table>, Duration)> = None;
    for workers in [1usize, 2, 4] {
        let ctx = ExecContext::new(&catalog).with_parallelism(workers);
        let (table, elapsed) =
            best_of(reps, || execute(&plan, &ctx).expect("sweep point executes"));
        let (serial_table, serial_elapsed) = baseline.get_or_insert((table.clone(), elapsed));
        out.push(ParallelSweepResult {
            workers,
            rows,
            elapsed,
            speedup: serial_elapsed.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            results_match: tables_equal(serial_table, &table),
            cores,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_bench_paths_agree_and_pruning_fires() {
        // Small row count: this is a correctness smoke, not a perf claim
        // (CI asserts the speedup floor on the release E15 run).
        let r = run_kernel_bench(4_000, 1);
        assert_eq!(r.kernels.len(), 3);
        for k in &r.kernels {
            assert!(k.results_match, "{}: paths disagree", k.kernel);
            assert!(k.out_rows > 0, "{}: degenerate output", k.kernel);
        }
        assert_eq!(r.zone_map.rows_pruned, 4_000, "whole scan pruned");
        assert!(r.zone_map.results_match);
    }

    #[test]
    fn parallel_sweep_points_agree_with_serial() {
        let sweep = run_parallel_sweep(10_000, 1);
        assert_eq!(
            sweep.iter().map(|p| p.workers).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        for p in &sweep {
            assert!(
                p.results_match,
                "{} workers disagree with the serial run",
                p.workers
            );
            assert!(p.cores >= 1);
        }
        assert!((sweep[0].speedup - 1.0).abs() < 1e-9, "baseline is itself");
    }
}
