//! E13 "warm restart": does a durably saved lazy warehouse reopen warm?
//!
//! The paper's time-to-insight claim (§4) is about the *first* session:
//! lazy loading answers the first query orders of magnitude sooner than
//! eager ETL. The durable save path extends the claim across restarts —
//! this experiment quantifies it. One session runs the Figure-1 mix and
//! saves; then two restarts replay the identical mix:
//!
//! * **cold** — a fresh [`Warehouse::open_lazy`]: metadata rescanned,
//!   every record re-extracted;
//! * **warm** — [`Warehouse::open_saved`]: tables loaded from the
//!   snapshot, cache segments rehydrated on first touch, nothing
//!   re-extracted.
//!
//! Reported per phase: open time, first-query time, their sum
//! (**time-to-first-insight**, the headline number), whole-mix time,
//! cache hit rate and records extracted. The acceptance bar is
//! `warm.tti < cold.tti` with zero warm re-extraction.
//!
//! The mix leads with the metadata-browse query — exactly E5's "first
//! query" — so TTI compares what restart genuinely changes: a cold open
//! rescans every repository file's metadata, a warm open loads two
//! tables. The Figure-1 data queries follow and show the cache side:
//! 100% hit rate and zero re-extraction warm, full re-extraction cold.
//! (On fast local disk, re-decoding Steim-compressed records and reading
//! back materialized rows cost the same order — the warm *wall-clock*
//! win on the data queries grows with access cost, the avoided *work*
//! is structural. Cf. the paper's storage-blowup argument in §4.)

use crate::{FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY};
use lazyetl_core::persistence::save_warehouse;
use lazyetl_core::warehouse::{Warehouse, WarehouseConfig};
use std::path::Path;
use std::time::Duration;

/// The query mix both restarts replay (identical to the save session's):
/// metadata browse first (the E5 "first insight"), then the Figure-1
/// data queries.
pub const MIX: [&str; 3] = [METADATA_QUERY, FIGURE1_Q2, FIGURE1_Q1];

/// Measurements of one restart flavour.
#[derive(Debug, Clone)]
pub struct RestartPhase {
    /// Wall-clock of constructing the warehouse.
    pub open: Duration,
    /// Wall-clock of the first mix query.
    pub first_query: Duration,
    /// Wall-clock of the whole mix.
    pub mix_total: Duration,
    /// Record-cache hits over the mix.
    pub cache_hits: usize,
    /// Record-cache misses over the mix.
    pub cache_misses: usize,
    /// Records decoded over the mix.
    pub records_extracted: usize,
}

impl RestartPhase {
    /// Time from "process starts" to "first answer on screen".
    pub fn time_to_first_insight(&self) -> Duration {
        self.open + self.first_query
    }

    /// Hit rate over the mix (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The whole experiment: save cost plus both restart flavours.
#[derive(Debug, Clone)]
pub struct WarmRestartResult {
    /// Fresh-open restart.
    pub cold: RestartPhase,
    /// Reopen-from-snapshot restart.
    pub warm: RestartPhase,
    /// Wall-clock of the durable save.
    pub save: Duration,
    /// Snapshot size on disk (tables + segments).
    pub saved_bytes: u64,
    /// Cache segment files the save wrote.
    pub segments: usize,
}

fn run_phase(open: impl FnOnce() -> Warehouse) -> RestartPhase {
    let (wh, t_open) = crate::time(open);
    let mut phase = RestartPhase {
        open: t_open,
        first_query: Duration::ZERO,
        mix_total: Duration::ZERO,
        cache_hits: 0,
        cache_misses: 0,
        records_extracted: 0,
    };
    for (i, sql) in MIX.iter().enumerate() {
        let (out, t) = crate::time(|| wh.query(sql).expect("mix query succeeds"));
        if i == 0 {
            phase.first_query = t;
        }
        phase.mix_total += t;
        phase.cache_hits += out.report.cache_hits;
        phase.cache_misses += out.report.cache_misses;
        phase.records_extracted += out.report.records_extracted;
    }
    phase
}

/// Best-of-`reps` by time-to-first-insight. Every rep is a *complete*
/// restart (fresh warehouse, fresh hydration), so counters stay those of
/// one honest run; taking the minimum strips scheduler noise from the
/// timing comparison, as usual for micro-scale wall clocks.
fn best_phase(reps: usize, open: impl Fn() -> Warehouse) -> RestartPhase {
    (0..reps.max(1))
        .map(|_| run_phase(&open))
        .min_by_key(|p| p.time_to_first_insight())
        .expect("at least one rep")
}

/// Run E13 against a repository: save a warm session, then time a cold
/// open vs. a warm reopen over the identical mix (best of three complete
/// restarts each).
pub fn run_warm_restart(repo: &Path, config: &WarehouseConfig) -> WarmRestartResult {
    run_warm_restart_reps(repo, config, 3)
}

/// [`run_warm_restart`] with an explicit repetition count.
pub fn run_warm_restart_reps(
    repo: &Path,
    config: &WarehouseConfig,
    reps: usize,
) -> WarmRestartResult {
    let saved = std::env::temp_dir().join(format!("lazyetl_e13_{}", std::process::id()));
    std::fs::remove_dir_all(&saved).ok();

    // Session 0: warm up on the mix and persist.
    let wh = Warehouse::open_lazy(repo, config.clone()).expect("repo opens");
    for sql in MIX {
        wh.query(sql).expect("warmup query succeeds");
    }
    let (report, save) = crate::time(|| save_warehouse(&wh, &saved).expect("save succeeds"));
    drop(wh);

    let cold = best_phase(reps, || {
        Warehouse::open_lazy(repo, config.clone()).expect("cold open")
    });
    let warm = best_phase(reps, || {
        Warehouse::open_saved(repo, &saved, config.clone()).expect("warm reopen")
    });
    std::fs::remove_dir_all(&saved).ok();
    WarmRestartResult {
        cold,
        warm,
        save,
        saved_bytes: report.bytes,
        segments: report.segments.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_restart_beats_cold_and_skips_extraction() {
        let dir = crate::scale_repo(crate::ScaleName::Tiny);
        let config = WarehouseConfig {
            auto_refresh: false,
            ..Default::default()
        };
        let r = run_warm_restart(&dir, &config);
        assert!(r.segments > 0, "the save persisted cache segments");
        assert!(r.cold.records_extracted > 0, "cold restart re-extracts");
        assert_eq!(r.warm.records_extracted, 0, "warm restart does not");
        assert!(r.warm.hit_rate() > 0.99, "warm mix is all hits");
        // The timing claim is a release claim (unoptimized segment
        // parsing can lose to unoptimized Steim decoding); CI enforces it
        // on the release E13 run via `warm_beats_cold` in BENCH_e13.json.
        if !cfg!(debug_assertions) {
            assert!(
                r.warm.time_to_first_insight() < r.cold.time_to_first_insight(),
                "warm TTI {:?} must beat cold TTI {:?}",
                r.warm.time_to_first_insight(),
                r.cold.time_to_first_insight()
            );
        }
    }
}
