//! E17: the cost-based planner and the ordered time-range index.
//!
//! Runs one deterministic mix of time-window queries under three
//! configurations of the same warehouse:
//!
//! * `seek`      — full pipeline: cost-based planning on persisted/derived
//!   statistics, `TimeInterval` pruning served by the sorted time index.
//! * `sweep`     — `time_index_seek: false`: identical pruning decisions,
//!   but every candidate record's zone map is examined linearly.
//! * `heuristic` — `cost_based_planning: false`: the pre-cost optimizer
//!   (no statistics, no join reordering, no EXPLAIN stage).
//!
//! Acceptance bars (gated by `tools/bench_gate.py` over `BENCH_e17.json`):
//! the three configurations agree cell for cell; the seek configuration
//! examines strictly fewer index entries than the linear sweep while
//! pruning the same records; the costed configurations estimate every
//! plan and the heuristic one estimates none.

use crate::{time, ScaleName, FIGURE1_Q1};
use lazyetl_core::{Warehouse, WarehouseConfig};
use std::path::Path;
use std::time::Duration;

/// One configuration's accumulated counters over the query mix.
#[derive(Debug, Clone)]
pub struct PlannerRunResult {
    /// Configuration label: `seek`, `sweep` or `heuristic`.
    pub config: &'static str,
    /// Number of queries in the mix.
    pub queries: usize,
    /// Total result rows across the mix.
    pub rows: usize,
    /// Wall clock for the whole cold mix.
    pub cold: Duration,
    /// Pruning passes served by the sorted index (warehouse counter).
    pub index_seeks: u64,
    /// Index entries (seek) or record zone maps (sweep) examined.
    pub entries_examined: u64,
    /// Records actually extracted across the mix.
    pub fetched_pairs: usize,
    /// Records pruned by zone maps across the mix.
    pub pruned_pairs: usize,
    /// Plans that produced a cardinality estimate.
    pub plans_estimated: u64,
    /// Accumulated |estimated - actual| over those plans.
    pub estimate_abs_error: u64,
    /// Cell-for-cell agreement with the `seek` reference run.
    pub results_match: bool,
}

/// The deterministic window mix: Figure-1 Q1 plus narrow network-wide
/// windows — the candidate set is the whole records table, so the sweep
/// must examine every record's zone map while the ordered index answers
/// with just the entries overlapping the window.
pub fn window_queries() -> Vec<String> {
    let mut qs = vec![FIGURE1_Q1.to_string()];
    for (lo, hi) in [
        ("22:03:00.000", "22:04:00.000"),
        ("22:05:30.000", "22:06:30.000"),
        ("22:07:00.000", "22:09:00.000"),
        ("22:01:00.000", "22:01:30.000"),
    ] {
        qs.push(format!(
            "SELECT COUNT(*), AVG(D.sample_value) FROM mseed.dataview \
             WHERE D.sample_time >= '2010-01-12T{lo}' \
             AND D.sample_time < '2010-01-12T{hi}'"
        ));
    }
    // A three-relation metadata join written in a deliberately suboptimal
    // order: exactly the shape the reorder pass rewrites.
    qs.push(
        "SELECT f.station, COUNT(*) FROM mseed.records r \
         JOIN mseed.files f ON r.file_id = f.file_id \
         WHERE f.channel = 'BHZ' GROUP BY f.station ORDER BY f.station"
            .to_string(),
    );
    qs
}

fn tables_close(a: &lazyetl_store::Table, b: &lazyetl_store::Table) -> bool {
    if a.num_rows() != b.num_rows() {
        return false;
    }
    (0..a.num_rows()).all(|row| {
        let (ra, rb) = match (a.row(row), b.row(row)) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            _ => return false,
        };
        ra.len() == rb.len()
            && ra
                .iter()
                .zip(&rb)
                .all(|(x, y)| match (x.as_f64(), y.as_f64()) {
                    (Some(x), Some(y)) => (x - y).abs() <= (x.abs().max(y.abs()) * 1e-9).max(1e-9),
                    _ => x == y,
                })
    })
}

/// Run the E17 mix against `dir` under all three configurations.
pub fn run_planner_bench(dir: &Path) -> Vec<PlannerRunResult> {
    let queries = window_queries();
    let configs: [(&'static str, bool, bool); 3] = [
        ("seek", true, true),
        ("sweep", true, false),
        ("heuristic", false, true),
    ];
    let mut reference: Vec<std::sync::Arc<lazyetl_store::Table>> = Vec::new();
    let mut out = Vec::new();
    for (label, cost_based, seek) in configs {
        let wh = Warehouse::open_lazy(
            dir,
            WarehouseConfig {
                auto_refresh: false,
                cost_based_planning: cost_based,
                time_index_seek: seek,
                ..Default::default()
            },
        )
        .expect("bench warehouse opens");
        let mut tables = Vec::new();
        let mut rows = 0usize;
        let mut fetched = 0usize;
        let mut pruned = 0usize;
        let (_, cold) = time(|| {
            for sql in &queries {
                let o = wh.query(sql).expect("bench query runs");
                rows += o.table.num_rows();
                if let Some(r) = &o.report.rewrite {
                    fetched += r.fetched_pairs;
                    pruned += r.pruned_pairs;
                }
                tables.push(o.table);
            }
        });
        let exec = wh.stats_snapshot().exec;
        let results_match = if reference.is_empty() {
            reference = tables;
            true
        } else {
            reference.len() == tables.len()
                && reference
                    .iter()
                    .zip(&tables)
                    .all(|(a, b)| tables_close(a, b))
        };
        out.push(PlannerRunResult {
            config: label,
            queries: queries.len(),
            rows,
            cold,
            index_seeks: exec.index_seeks,
            entries_examined: exec.index_rows_examined,
            fetched_pairs: fetched,
            pruned_pairs: pruned,
            plans_estimated: exec.plans_estimated,
            estimate_abs_error: exec.estimate_abs_error,
            results_match,
        });
    }
    out
}

/// Convenience wrapper used by tests: run at a named scale.
pub fn run_planner_bench_at(scale: ScaleName) -> Vec<PlannerRunResult> {
    run_planner_bench(&crate::scale_repo(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_bench_meets_its_acceptance_bars() {
        let rows = run_planner_bench_at(ScaleName::Tiny);
        assert_eq!(rows.len(), 3);
        let seek = &rows[0];
        let sweep = &rows[1];
        let heuristic = &rows[2];
        assert!(rows.iter().all(|r| r.results_match), "{rows:?}");
        assert_eq!(seek.fetched_pairs, sweep.fetched_pairs);
        assert_eq!(seek.pruned_pairs, sweep.pruned_pairs);
        assert!(
            seek.entries_examined < sweep.entries_examined,
            "seek must examine fewer entries: {} vs {}",
            seek.entries_examined,
            sweep.entries_examined
        );
        assert!(seek.index_seeks >= 1);
        assert_eq!(sweep.index_seeks, 0);
        assert!(seek.plans_estimated >= 1);
        assert_eq!(heuristic.plans_estimated, 0);
    }
}
