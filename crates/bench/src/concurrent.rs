//! Concurrent-client load generation (experiment E12).
//!
//! The paper's demo serves one analyst; the roadmap's warehouse serves
//! many. E12 measures what the `&self` query path and the lock-striped
//! record cache buy under concurrent load: K client threads each run a
//! closed loop over the Figure-1 query mix against **one shared
//! [`Warehouse`]**, and the harness reports throughput, p50/p99 latency
//! and the aggregate cache hit rate, swept over shard counts.
//!
//! Each thread starts at a different offset in the mix so the threads
//! overlap on different queries (and therefore different cache shards)
//! rather than marching in lockstep.

use crate::{FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY};
use lazyetl_core::Warehouse;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Client threads issuing queries.
    pub threads: usize,
    /// Queries each thread issues (round-robin over the mix).
    pub queries_per_thread: usize,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            threads: 4,
            queries_per_thread: 12,
        }
    }
}

/// The query mix one client loops over: the two Figure-1 data queries
/// plus a metadata browse, the shape of an interactive analysis session.
pub fn query_mix() -> Vec<&'static str> {
    vec![FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY]
}

/// Aggregate result of one concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentResult {
    /// Total queries completed (threads × queries_per_thread).
    pub total_queries: usize,
    /// Wall-clock duration of the whole storm.
    pub elapsed: Duration,
    /// Completed queries per wall-clock second.
    pub throughput_qps: f64,
    /// Median per-query latency.
    pub p50: Duration,
    /// 99th-percentile per-query latency.
    pub p99: Duration,
    /// Worst per-query latency.
    pub max: Duration,
    /// Aggregate record-cache hit rate over the run
    /// (hits / (hits + misses + stale drops)).
    pub cache_hit_rate: f64,
    /// Records extracted across all threads (duplicates only from benign
    /// shard races).
    pub records_extracted: usize,
}

/// Percentile by nearest-rank over a **sorted** latency slice.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Run `cfg.threads` closed-loop clients over [`query_mix`] against one
/// shared warehouse and aggregate the results.
///
/// Panics if any query fails — a correctness failure under concurrency is
/// exactly what this harness exists to surface.
pub fn run_concurrent_mix(warehouse: &Arc<Warehouse>, cfg: &ConcurrentConfig) -> ConcurrentResult {
    let mix = query_mix();
    let stats_before = warehouse.cache_snapshot().stats;
    let t0 = Instant::now();
    let per_thread: Vec<(Vec<Duration>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let wh = Arc::clone(warehouse);
                let mix = mix.clone();
                let iters = cfg.queries_per_thread;
                s.spawn(move || {
                    let mut latencies = Vec::with_capacity(iters);
                    let mut extracted = 0usize;
                    for i in 0..iters {
                        let sql = mix[(t + i) % mix.len()];
                        let q0 = Instant::now();
                        let out = wh.query(sql).expect("concurrent query failed");
                        latencies.push(q0.elapsed());
                        extracted += out.report.records_extracted;
                    }
                    (latencies, extracted)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = t0.elapsed();

    let mut latencies: Vec<Duration> = per_thread.iter().flat_map(|(l, _)| l.clone()).collect();
    latencies.sort();
    let records_extracted = per_thread.iter().map(|&(_, e)| e).sum();
    let total_queries = latencies.len();

    let stats_after = warehouse.cache_snapshot().stats;
    let hits = stats_after.hits - stats_before.hits;
    let misses = stats_after.misses - stats_before.misses;
    let stale = stats_after.stale_drops - stats_before.stale_drops;
    let lookups = hits + misses + stale;
    ConcurrentResult {
        total_queries,
        elapsed,
        throughput_qps: total_queries as f64 / elapsed.as_secs_f64().max(1e-9),
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        max: latencies.last().copied().unwrap_or(Duration::ZERO),
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        records_extracted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scale_config, ScaleName};
    use lazyetl_core::WarehouseConfig;

    #[test]
    fn percentile_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 50.0), ms(50));
        assert_eq!(percentile(&sorted, 99.0), ms(99));
        assert_eq!(percentile(&sorted, 100.0), ms(100));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        assert_eq!(percentile(&[ms(7)], 99.0), ms(7));
    }

    #[test]
    fn concurrent_mix_reports_consistent_aggregates() {
        let dir = crate::materialize("conc_unit", &scale_config(ScaleName::Tiny));
        let wh = Arc::new(
            Warehouse::open_lazy(
                &dir,
                WarehouseConfig {
                    auto_refresh: false,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let cfg = ConcurrentConfig {
            threads: 3,
            queries_per_thread: 4,
        };
        let r = run_concurrent_mix(&wh, &cfg);
        assert_eq!(r.total_queries, 12);
        assert!(r.throughput_qps > 0.0);
        assert!(r.p50 <= r.p99 && r.p99 <= r.max);
        assert!((0.0..=1.0).contains(&r.cache_hit_rate));
        assert!(r.records_extracted > 0, "cold storm extracts data");
        // A second storm over the warmed cache extracts nothing new and
        // hits at a strictly higher rate.
        let r2 = run_concurrent_mix(&wh, &cfg);
        assert_eq!(r2.records_extracted, 0, "warm storm is extraction-free");
        assert!(r2.cache_hit_rate > r.cache_hit_rate);
    }
}
