//! E16 — federated lazy extraction: one warehouse over three mounted
//! backends (a local mSEED archive, a CSV survey drop, and a
//! latency-injected simulated-remote server), each holding a disjoint
//! slice of the station inventory.
//!
//! The run proves the federation story end to end:
//!
//! * a query spanning every mount answers **identically** to an eager
//!   warehouse over the union of all three directories;
//! * the warm re-query extracts **zero** records (the recycling cache is
//!   keyed by global file id, so federation does not break it);
//! * per-source accounting in [`lazyetl_core::SourceStats`] is exact —
//!   each mount reports only its own files, records, bytes and (for the
//!   remote) ranged-fetch counts and modeled WAN time.

use crate::{copy_dir, materialize, time, ScaleName};
use lazyetl_core::{SourceStats, Warehouse, WarehouseBuilder, WarehouseConfig};
use lazyetl_mseed::gen::{GeneratorConfig, RepoFormat};
use lazyetl_mseed::inventory::default_inventory;
use lazyetl_mseed::Timestamp;
use lazyetl_repo::{CsvSource, RemoteSource, Repository};
use std::path::PathBuf;
use std::time::Duration;

/// The cross-mount query: every station, one channel, deterministic
/// order — answerable only by touching all three sources.
pub const FEDERATED_QUERY: &str = "SELECT F.station, COUNT(*), \
     MIN(D.sample_value), MAX(D.sample_value) \
     FROM mseed.dataview WHERE F.channel = 'BHZ' \
     GROUP BY F.station ORDER BY F.station";

/// Accounting for one mount after the cold + warm queries.
#[derive(Debug, Clone)]
pub struct FederatedSourceRow {
    /// Cold-phase counters (cumulative since open).
    pub stats: SourceStats,
    /// Files extracted *during the warm re-query* (must be 0).
    pub warm_files_extracted: u64,
}

/// One federated run's results.
#[derive(Debug)]
pub struct FederatedResult {
    /// Opening the three-mount lazy warehouse (metadata only).
    pub federated_open: Duration,
    /// Opening the eager union warehouse (full ETL).
    pub union_open: Duration,
    /// Cold federated query (pays extraction on every mount).
    pub cold: Duration,
    /// Warm federated re-query (cache only).
    pub warm: Duration,
    /// The same query against the resident eager union.
    pub union_query: Duration,
    /// Result rows (one per station).
    pub rows: usize,
    /// Federated answer equals the eager union answer, cell for cell.
    pub union_matches: bool,
    /// Records re-extracted by the warm query (must be 0).
    pub warm_records_extracted: usize,
    /// Cache hits the warm query was served from.
    pub warm_cache_hits: usize,
    /// Per-mount accounting, in mount order.
    pub sources: Vec<FederatedSourceRow>,
}

/// Files-per-stream for a named scale (mirrors `scale_config`).
fn files_per_stream(scale: ScaleName) -> u32 {
    match scale {
        ScaleName::Tiny => 1,
        ScaleName::Small => 4,
        ScaleName::Medium => 6,
        ScaleName::Large => 10,
    }
}

/// Generator configuration for one federation slice.
fn slice_config(networks: &[&str], scale: ScaleName, format: RepoFormat) -> GeneratorConfig {
    let inv = default_inventory();
    GeneratorConfig {
        stations: inv
            .iter()
            .filter(|s| networks.contains(&s.network.as_str()))
            .cloned()
            .collect(),
        channels: vec!["BHZ".into(), "BHE".into()],
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0),
        file_duration_secs: 600,
        files_per_stream: files_per_stream(scale),
        record_length: 4096,
        events_per_file: 0.4,
        format,
        seed: 0xE16 ^ files_per_stream(scale) as u64,
        ..Default::default()
    }
}

/// Materialize the three disjoint slices: (archive, surveys, orfeus).
///
/// The CSV slice gets its own cache tag because `materialize`'s key does
/// not include the container format.
fn federation_dirs(scale: ScaleName) -> (PathBuf, PathBuf, PathBuf) {
    let tag = |part: &str| format!("e16_{part}_{}", scale.label());
    (
        materialize(
            &tag("archive"),
            &slice_config(&["NL"], scale, RepoFormat::MseedOnly),
        ),
        materialize(
            &tag("surveys_csv"),
            &slice_config(&["GR"], scale, RepoFormat::CsvOnly),
        ),
        materialize(
            &tag("orfeus"),
            &slice_config(&["KO"], scale, RepoFormat::MseedOnly),
        ),
    )
}

/// A single directory holding every file of all three slices — the
/// ground-truth input for the eager union warehouse.
fn union_dir(scale: ScaleName, parts: &[&PathBuf]) -> PathBuf {
    let dst = crate::cache_root().join(format!("e16_union_{}", scale.label()));
    let marker = dst.join(".complete");
    if marker.exists() {
        return dst;
    }
    std::fs::remove_dir_all(&dst).ok();
    for part in parts {
        copy_dir(part, &dst).expect("copy federation slice into union");
    }
    // The slices' own markers came along for the ride; only ours counts.
    std::fs::write(&marker, b"ok").expect("write union marker");
    dst
}

/// Exact table equality, cell for cell (both sides decode the same
/// generated integer counts, so no float tolerance is needed).
fn tables_match(a: &lazyetl_store::Table, b: &lazyetl_store::Table) -> bool {
    if a.num_rows() != b.num_rows() {
        return false;
    }
    (0..a.num_rows()).all(|i| a.row(i).ok() == b.row(i).ok())
}

/// Run E16 at a named scale. `sleep` enables real latency injection on
/// the simulated-remote mount (the bench harness turns it on so
/// cold-touch latency is wall-clock-visible; tests keep it off).
pub fn run_federated(scale: ScaleName, sleep: bool) -> FederatedResult {
    let (archive, surveys, orfeus) = federation_dirs(scale);
    let union = union_dir(scale, &[&archive, &surveys, &orfeus]);
    let cfg = WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    };

    let (fed, federated_open) = time(|| {
        WarehouseBuilder::new()
            .config(cfg.clone())
            .source("archive", Box::new(Repository::open(&archive).unwrap()))
            .source("surveys", Box::new(CsvSource::open(&surveys).unwrap()))
            .source(
                "orfeus",
                Box::new(RemoteSource::open(&orfeus).unwrap().with_sleep(sleep)),
            )
            .open()
            .unwrap()
    });
    let (eager, union_open) = time(|| Warehouse::open_eager(&union, cfg.clone()).unwrap());

    let (cold_out, cold) = time(|| fed.query(FEDERATED_QUERY).unwrap());
    let cold_stats = fed.stats_snapshot();
    let (warm_out, warm) = time(|| fed.query(FEDERATED_QUERY).unwrap());
    let warm_stats = fed.stats_snapshot();
    let (union_out, union_query) = time(|| eager.query(FEDERATED_QUERY).unwrap());

    let sources = cold_stats
        .sources
        .iter()
        .zip(&warm_stats.sources)
        .map(|(c, w)| FederatedSourceRow {
            stats: c.clone(),
            warm_files_extracted: w.files_extracted - c.files_extracted,
        })
        .collect();

    FederatedResult {
        federated_open,
        union_open,
        cold,
        warm,
        union_query,
        rows: cold_out.table.num_rows(),
        union_matches: tables_match(&cold_out.table, &union_out.table)
            && tables_match(&cold_out.table, &warm_out.table),
        warm_records_extracted: warm_out.report.records_extracted,
        warm_cache_hits: warm_out.report.cache_hits,
        sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federated_tiny_matches_union_and_recycles() {
        let r = run_federated(ScaleName::Tiny, false);
        assert!(r.union_matches, "federated answer diverged from union");
        assert_eq!(r.rows, 8, "one row per inventory station");
        assert_eq!(r.warm_records_extracted, 0, "warm query re-extracted");
        assert!(r.warm_cache_hits > 0);
        assert_eq!(r.sources.len(), 3);
        for s in &r.sources {
            assert!(s.stats.files > 0, "{}: empty mount", s.stats.name);
            assert!(
                s.stats.records_extracted > 0,
                "{}: never extracted",
                s.stats.name
            );
            assert_eq!(
                s.warm_files_extracted, 0,
                "{}: warm re-extraction",
                s.stats.name
            );
        }
        let remote = &r.sources[2];
        assert_eq!(remote.stats.kind, "remote");
        assert!(
            remote.stats.fetch_requests > 0,
            "remote never range-fetched"
        );
        assert!(remote.stats.simulated_io > Duration::ZERO);
        // Locals never range-fetch: they are read via their paths.
        assert_eq!(r.sources[0].stats.fetch_requests, 0);
    }
}
