//! Minimal JSON emission for machine-readable benchmark results.
//!
//! The experiment harness writes one `BENCH_<experiment>.json` file per
//! experiment so CI (and future PRs comparing perf trajectories) can parse
//! results without scraping markdown tables. The container is offline —
//! no serde — so this is a tiny, dependency-free value tree with correct
//! string escaping and finite-number handling.
//!
//! # The `BENCH_*.json` envelope
//!
//! Every file emitted by [`write_bench_file`] is one object:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "experiment": "e12",
//!   "scale": "tiny",
//!   "rows": [ { ... one object per measurement row ... } ]
//! }
//! ```
//!
//! Durations are reported as integer microseconds in `*_us` fields, rates
//! as floats (`throughput_qps`, `hit_rate`), counts as integers. Fields
//! never disappear between runs — consumers may rely on them once
//! published at a given `schema_version`.

use std::path::{Path, PathBuf};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    // Ensure floats stay floats on re-parse.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Directory `BENCH_*.json` files are written to: `$LAZYETL_BENCH_DIR` if
/// set, the current working directory otherwise.
pub fn bench_output_dir() -> PathBuf {
    std::env::var_os("LAZYETL_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Write `BENCH_<experiment>.json` wrapping `rows` in the standard
/// envelope (see the module docs). Returns the path written.
pub fn write_bench_file(
    experiment: &str,
    scale: &str,
    rows: Vec<Json>,
) -> std::io::Result<PathBuf> {
    let doc = Json::obj([
        ("schema_version", Json::Int(1)),
        ("experiment", Json::str(experiment)),
        ("scale", Json::str(scale)),
        ("rows", Json::Arr(rows)),
    ]);
    let path = bench_output_dir().join(format!("BENCH_{experiment}.json"));
    write_json_file(&path, &doc)?;
    Ok(path)
}

/// Write any JSON value to an explicit path (trailing newline included).
pub fn write_json_file(path: &Path, value: &Json) -> std::io::Result<()> {
    let mut text = value.render();
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(3.0).render(), "3.0", "floats keep a decimal");
        assert_eq!(Json::Num(f64::NAN).render(), "null", "NaN is not JSON");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn nested_structure_renders_in_order() {
        let doc = Json::obj([
            ("z", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(1), Json::str("x")])),
            ("o", Json::obj([("k", Json::Bool(false))])),
        ]);
        assert_eq!(doc.render(), r#"{"z":1,"a":[1,"x"],"o":{"k":false}}"#);
    }

    #[test]
    fn bench_file_has_envelope_fields() {
        let dir = std::env::temp_dir().join(format!("lazyetl_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("LAZYETL_BENCH_DIR", &dir);
        let rows = vec![Json::obj([("p50_us", Json::Int(10))])];
        let path = write_bench_file("etest", "tiny", rows).unwrap();
        std::env::remove_var("LAZYETL_BENCH_DIR");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(r#""schema_version":1"#));
        assert!(text.contains(r#""experiment":"etest""#));
        assert!(text.contains(r#""scale":"tiny""#));
        assert!(text.contains(r#""rows":[{"p50_us":10}]"#));
        assert!(text.ends_with('\n'));
        std::fs::remove_dir_all(&dir).ok();
    }
}
