//! `mkrepo` — materialize a synthetic mSEED repository at a named scale.
//!
//! ```sh
//! cargo run -p lazyetl-bench --bin mkrepo -- tiny /tmp/srv-repo
//! cargo run -p lazyetl-bench --bin mkrepo -- add-file /tmp/srv-repo --minute 3
//! ```
//!
//! The CI `server-smoke` job uses this to stand up a repository for
//! `lazyetl-serve` without going through the bench cache directory, and
//! `add-file` to land a fresh file under a *running* server so the
//! subscribe→refresh→push round-trip can be exercised from a shell.

use lazyetl_bench::{scale_config, ScaleName};
use lazyetl_mseed::gen::{generate_repository, RepoFormat};
use lazyetl_mseed::record::SourceId;
use lazyetl_mseed::Timestamp;
use lazyetl_repo::{updates, Repository};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str =
    "usage: mkrepo <tiny|small|medium|large> <dest-dir> [--format mseed|sac|csv|mixed]\n\
     \x20      mkrepo add-file <dest-dir> [--minute N]";

/// Land one deterministic new NL.HGN BHZ file (2010-01-13 00:MM, 10 s)
/// in an existing repository — an insert-only delta the next refresh
/// picks up.
fn add_file(args: &[String]) -> ExitCode {
    let Some(dest) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let minute: u32 = match args.iter().position(|a| a == "--minute") {
        Some(p) => match args.get(p + 1).and_then(|v| v.parse().ok()) {
            Some(m) => m,
            None => {
                eprintln!("--minute needs an integer\n{USAGE}");
                return ExitCode::from(2);
            }
        },
        None => 0,
    };
    let mut repo = match Repository::open(Path::new(dest)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot open repository {dest}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let src = SourceId::new("NL", "HGN", "", "BHZ").expect("static source id");
    let start = Timestamp::from_ymd_hms(2010, 1, 13, 0, minute, 0, 0);
    match updates::add_file(&mut repo, &src, start, 10, 0xC1 + minute as u64) {
        Ok(rel) => {
            println!("added {rel} at {dest}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("add-file failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("add-file") {
        return add_file(&args[1..]);
    }
    let (scale, dest) = match (args.first(), args.get(1)) {
        (Some(s), Some(d)) => (s.as_str(), d.as_str()),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(scale) = ScaleName::parse(scale) else {
        eprintln!("unknown scale {scale:?} (want tiny|small|medium|large)");
        return ExitCode::from(2);
    };
    let mut format = RepoFormat::MseedOnly;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                format = match args.get(i + 1).map(String::as_str) {
                    Some("mseed") => RepoFormat::MseedOnly,
                    Some("sac") => RepoFormat::SacOnly,
                    Some("csv") => RepoFormat::CsvOnly,
                    Some("mixed") => RepoFormat::Mixed,
                    other => {
                        eprintln!("unknown format {other:?}\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let config = lazyetl_mseed::gen::GeneratorConfig {
        format,
        ..scale_config(scale)
    };
    if let Err(e) = std::fs::create_dir_all(dest) {
        eprintln!("cannot create {dest}: {e}");
        return ExitCode::FAILURE;
    }
    match generate_repository(Path::new(dest), &config) {
        Ok(_) => {
            println!(
                "generated {} files ({} scale) at {dest}",
                config.total_files(),
                scale.label()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("generation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
