//! `mkrepo` — materialize a synthetic mSEED repository at a named scale.
//!
//! ```sh
//! cargo run -p lazyetl-bench --bin mkrepo -- tiny /tmp/srv-repo
//! ```
//!
//! The CI `server-smoke` job uses this to stand up a repository for
//! `lazyetl-serve` without going through the bench cache directory.

use lazyetl_bench::{scale_config, ScaleName};
use lazyetl_mseed::gen::{generate_repository, RepoFormat};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str =
    "usage: mkrepo <tiny|small|medium|large> <dest-dir> [--format mseed|sac|csv|mixed]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, dest) = match (args.first(), args.get(1)) {
        (Some(s), Some(d)) => (s.as_str(), d.as_str()),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let Some(scale) = ScaleName::parse(scale) else {
        eprintln!("unknown scale {scale:?} (want tiny|small|medium|large)");
        return ExitCode::from(2);
    };
    let mut format = RepoFormat::MseedOnly;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                format = match args.get(i + 1).map(String::as_str) {
                    Some("mseed") => RepoFormat::MseedOnly,
                    Some("sac") => RepoFormat::SacOnly,
                    Some("csv") => RepoFormat::CsvOnly,
                    Some("mixed") => RepoFormat::Mixed,
                    other => {
                        eprintln!("unknown format {other:?}\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let config = lazyetl_mseed::gen::GeneratorConfig {
        format,
        ..scale_config(scale)
    };
    if let Err(e) = std::fs::create_dir_all(dest) {
        eprintln!("cannot create {dest}: {e}");
        return ExitCode::FAILURE;
    }
    match generate_repository(Path::new(dest), &config) {
        Ok(_) => {
            println!(
                "generated {} files ({} scale) at {dest}",
                config.total_files(),
                scale.label()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("generation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
