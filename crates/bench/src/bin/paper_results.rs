//! The experiment harness: regenerates every table/series of the paper's
//! evaluation narrative (see ARCHITECTURE.md, "Experiment inventory").
//!
//! ```sh
//! cargo run --release -p lazyetl-bench --bin paper_results            # all, small scale
//! cargo run --release -p lazyetl-bench --bin paper_results -- e1 e4   # a subset
//! cargo run --release -p lazyetl-bench --bin paper_results -- all medium
//! ```
//!
//! Output is markdown-ish text, suitable for pasting into reports.

use lazyetl_bench::concurrent::{run_concurrent_mix, ConcurrentConfig};
use lazyetl_bench::json::{write_bench_file, Json};
use lazyetl_bench::*;
use lazyetl_core::{Warehouse, WarehouseConfig};
use lazyetl_repo::{updates, AccessProfile, Repository};
use lazyetl_store::persist;
use std::sync::Arc;
use std::time::Duration;

fn base_config() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

/// E1: initial loading time, eager vs lazy, sweeping repository size.
fn e1_initial_load() {
    let mut rows = Vec::new();
    for scale in [
        ScaleName::Tiny,
        ScaleName::Small,
        ScaleName::Medium,
        ScaleName::Large,
    ] {
        let dir = scale_repo(scale);
        let repo = Repository::open(&dir).expect("repo opens");
        let files = repo.len();
        let bytes = repo.total_bytes();
        drop(repo);
        let (lazy, t_lazy) = time(|| Warehouse::open_lazy(&dir, base_config()).unwrap());
        let (eager, t_eager) = time(|| Warehouse::open_eager(&dir, base_config()).unwrap());
        let wan = AccessProfile::wan();
        rows.push(vec![
            scale.label().to_string(),
            files.to_string(),
            fmt_bytes(bytes),
            fmt_dur(t_eager),
            fmt_dur(t_lazy),
            format!(
                "{:.0}x",
                t_eager.as_secs_f64() / t_lazy.as_secs_f64().max(1e-9)
            ),
            fmt_bytes(eager.load_report().bytes_read),
            fmt_bytes(lazy.load_report().bytes_read),
            fmt_dur(
                wan.cost(eager.load_report().bytes_read) + Duration::from_millis(20) * files as u32,
            ),
            fmt_dur(
                wan.cost(lazy.load_report().bytes_read) + Duration::from_millis(20) * files as u32,
            ),
        ]);
    }
    print_table(
        "E1 — Initial loading: eager vs lazy (local disk; last two columns model a 20ms/20MBps WAN)",
        &[
            "scale", "files", "repo size", "eager load", "lazy load", "speedup",
            "eager bytes", "lazy bytes", "eager WAN(est)", "lazy WAN(est)",
        ],
        &rows,
    );
}

/// E2: storage footprint — raw repo vs eager warehouse vs lazy warehouse.
fn e2_storage(scale: ScaleName) {
    let dir = scale_repo(scale);
    let repo = Repository::open(&dir).unwrap();
    let raw = repo.total_bytes();
    drop(repo);
    let lazy = Warehouse::open_lazy(&dir, base_config()).unwrap();
    let eager = Warehouse::open_eager(&dir, base_config()).unwrap();

    // On-disk footprint of the eager warehouse: persist all three tables.
    let persist_dir = std::env::temp_dir().join("lazyetl_e2_persist");
    std::fs::remove_dir_all(&persist_dir).ok();
    std::fs::create_dir_all(&persist_dir).unwrap();
    let mut eager_disk = 0u64;
    for t in ["files", "records", "data"] {
        let path = persist_dir.join(format!("{t}.lztb"));
        persist::save_table(eager.catalog().table(t).unwrap(), &path).unwrap();
        eager_disk += std::fs::metadata(&path).unwrap().len();
    }
    let mut lazy_disk = 0u64;
    for t in ["files", "records"] {
        let path = persist_dir.join(format!("lazy_{t}.lztb"));
        persist::save_table(lazy.catalog().table(t).unwrap(), &path).unwrap();
        lazy_disk += std::fs::metadata(&path).unwrap().len();
    }
    std::fs::remove_dir_all(&persist_dir).ok();

    let rows = vec![
        vec![
            "raw mSEED repository (Steim-2)".into(),
            fmt_bytes(raw),
            "1.0x".into(),
        ],
        vec![
            "eager warehouse, resident".into(),
            fmt_bytes(eager.resident_bytes() as u64),
            format!("{:.1}x", eager.resident_bytes() as f64 / raw as f64),
        ],
        vec![
            "eager warehouse, persisted".into(),
            fmt_bytes(eager_disk),
            format!("{:.1}x", eager_disk as f64 / raw as f64),
        ],
        vec![
            "lazy warehouse, resident (metadata only)".into(),
            fmt_bytes(lazy.resident_bytes() as u64),
            format!("{:.3}x", lazy.resident_bytes() as f64 / raw as f64),
        ],
        vec![
            "lazy warehouse, persisted (metadata only)".into(),
            fmt_bytes(lazy_disk),
            format!("{:.3}x", lazy_disk as f64 / raw as f64),
        ],
    ];
    print_table(
        &format!(
            "E2 — Storage footprint vs raw repository ({} scale) — paper: 'up to 10 times the original storage size'",
            scale.label()
        ),
        &["representation", "size", "vs raw"],
        &rows,
    );
}

/// E3: the Figure-1 queries — eager resident vs lazy cold vs lazy warm.
fn e3_figure1(scale: ScaleName) {
    let dir = scale_repo(scale);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (name, sql) in [
        ("Q1 (2s STA window)", FIGURE1_Q1),
        ("Q2 (min/max per NL station)", FIGURE1_Q2),
    ] {
        let eager = Warehouse::open_eager(&dir, base_config()).unwrap();
        let (eo, t_eager) = time(|| eager.query(sql).unwrap());
        let lazy = Warehouse::open_lazy(&dir, base_config()).unwrap();
        let (lo, t_cold) = time(|| lazy.query(sql).unwrap());
        let (lw, t_warm) = time(|| lazy.query(sql).unwrap());
        assert_eq!(eo.table.num_rows(), lo.table.num_rows());
        rows.push(vec![
            name.to_string(),
            fmt_dur(t_eager),
            fmt_dur(t_cold),
            fmt_dur(t_warm),
            lo.report.files_extracted.len().to_string(),
            lo.report.records_extracted.to_string(),
            format!("{}", lw.report.cache_hits),
        ]);
        json_rows.push(Json::obj([
            ("query", Json::str(name)),
            ("eager_us", Json::Int(t_eager.as_micros() as i64)),
            ("lazy_cold_us", Json::Int(t_cold.as_micros() as i64)),
            ("lazy_warm_us", Json::Int(t_warm.as_micros() as i64)),
            (
                "files_extracted",
                Json::Int(lo.report.files_extracted.len() as i64),
            ),
            (
                "records_extracted",
                Json::Int(lo.report.records_extracted as i64),
            ),
            ("warm_cache_hits", Json::Int(lw.report.cache_hits as i64)),
        ]));
    }
    print_table(
        &format!("E3 — Figure-1 query latency ({} scale)", scale.label()),
        &[
            "query",
            "eager (resident)",
            "lazy cold",
            "lazy warm",
            "files extracted",
            "records extracted",
            "warm cache hits",
        ],
        &rows,
    );
    emit_json("e3", scale, json_rows);
}

/// E4: selectivity sweep — lazy extraction cost vs fraction touched.
fn e4_selectivity(scale: ScaleName) {
    let dir = scale_repo(scale);
    let eager = Warehouse::open_eager(&dir, base_config()).unwrap();
    let eager_load = eager.load_report().elapsed;
    let mut rows = Vec::new();
    let full_repo_sql = "SELECT COUNT(*), AVG(D.sample_value) FROM mseed.dataview \
                         WHERE F.station IN ('HGN', 'WIT', 'OPLO', 'WTSB', 'ISK', 'BFO', 'WET', 'BALB')"
        .to_string();
    let sweep: Vec<(String, String)> = (1..=5usize)
        .map(|k| (format!("{k}/5 stations, BHZ"), selectivity_query(k)))
        .chain([("whole repository".to_string(), full_repo_sql)])
        .collect();
    for (label, sql) in sweep {
        let lazy = Warehouse::open_lazy(&dir, base_config()).unwrap();
        let lazy_load = lazy.load_report().elapsed;
        let (lo, t_cold) = time(|| lazy.query(&sql).unwrap());
        let (_, t_warm) = time(|| lazy.query(&sql).unwrap());
        let (_, t_eager) = time(|| eager.query(&sql).unwrap());
        rows.push(vec![
            label,
            lo.report.files_extracted.len().to_string(),
            fmt_dur(lazy_load + t_cold),
            fmt_dur(eager_load + t_eager),
            fmt_dur(t_cold),
            fmt_dur(t_warm),
            fmt_dur(t_eager),
        ]);
    }
    print_table(
        &format!(
            "E4 — Selectivity sweep ({} scale): total = load+query; crossover appears as selectivity grows",
            scale.label()
        ),
        &[
            "touched", "files extracted", "lazy total", "eager total",
            "lazy cold qry", "lazy warm qry", "eager qry",
        ],
        &rows,
    );

    // Ablations called out in ARCHITECTURE.md: metadata-predicates-first and
    // record-level pruning, measured on the most selective query.
    let sql = FIGURE1_Q1;
    let mut ablation_rows = Vec::new();
    for (label, meta_first, pruning) in [
        ("full lazy ETL", true, true),
        ("no record-level pruning", true, false),
        ("no metadata-first reorganization", false, true),
    ] {
        let wh = Warehouse::open_lazy(
            &dir,
            WarehouseConfig {
                metadata_predicate_first: meta_first,
                record_level_pruning: pruning,
                auto_refresh: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (out, t) = time(|| wh.query(sql).unwrap());
        let r = out.report.rewrite.unwrap();
        ablation_rows.push(vec![
            label.to_string(),
            fmt_dur(t),
            r.fetched_pairs.to_string(),
            out.report.files_extracted.len().to_string(),
        ]);
    }
    print_table(
        &format!("E4b — Ablations on Figure-1 Q1 ({} scale)", scale.label()),
        &[
            "configuration",
            "cold query",
            "records extracted",
            "files touched",
        ],
        &ablation_rows,
    );
}

/// E5: time from data availability to first answer.
fn e5_time_to_insight(scale: ScaleName) {
    let dir = scale_repo(scale);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (label, sql) in [
        ("metadata browse", METADATA_QUERY),
        ("Figure-1 Q1", FIGURE1_Q1),
        ("Figure-1 Q2", FIGURE1_Q2),
    ] {
        let (lazy, t_lload) = time(|| Warehouse::open_lazy(&dir, base_config()).unwrap());
        let (_, t_lq) = time(|| lazy.query(sql).unwrap());
        let (eager, t_eload) = time(|| Warehouse::open_eager(&dir, base_config()).unwrap());
        let (_, t_eq) = time(|| eager.query(sql).unwrap());
        rows.push(vec![
            label.to_string(),
            fmt_dur(t_eload + t_eq),
            fmt_dur(t_lload + t_lq),
            format!(
                "{:.1}x",
                (t_eload + t_eq).as_secs_f64() / (t_lload + t_lq).as_secs_f64().max(1e-9)
            ),
        ]);
        json_rows.push(Json::obj([
            ("query", Json::str(label)),
            (
                "eager_total_us",
                Json::Int((t_eload + t_eq).as_micros() as i64),
            ),
            (
                "lazy_total_us",
                Json::Int((t_lload + t_lq).as_micros() as i64),
            ),
            ("eager_load_us", Json::Int(t_eload.as_micros() as i64)),
            ("lazy_load_us", Json::Int(t_lload.as_micros() as i64)),
            ("eager_query_us", Json::Int(t_eq.as_micros() as i64)),
            ("lazy_query_us", Json::Int(t_lq.as_micros() as i64)),
        ]));
    }
    print_table(
        &format!(
            "E5 — Time from source availability to first answer ({} scale)",
            scale.label()
        ),
        &[
            "first query",
            "eager load+query",
            "lazy load+query",
            "lazy advantage",
        ],
        &rows,
    );
    emit_json("e5", scale, json_rows);
}

/// E12: concurrent clients against one shared warehouse — throughput,
/// latency percentiles and cache hit rate, swept over shard counts.
fn e12_concurrent(scale: ScaleName) {
    let dir = scale_repo(scale);
    let run_cfg = ConcurrentConfig::default();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let wh = Arc::new(
            Warehouse::open_lazy(
                &dir,
                WarehouseConfig {
                    cache_shards: shards,
                    auto_refresh: false,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        // Cold storm populates the cache; warm storm measures the shared
        // steady state the shard sweep is about.
        let cold = run_concurrent_mix(&wh, &run_cfg);
        let warm = run_concurrent_mix(&wh, &run_cfg);
        rows.push(vec![
            shards.to_string(),
            run_cfg.threads.to_string(),
            format!("{:.0}", warm.throughput_qps),
            fmt_dur(warm.p50),
            fmt_dur(warm.p99),
            format!("{:.0}%", 100.0 * warm.cache_hit_rate),
            cold.records_extracted.to_string(),
            warm.records_extracted.to_string(),
        ]);
        for (phase, r) in [("cold", &cold), ("warm", &warm)] {
            json_rows.push(Json::obj([
                ("shards", Json::Int(shards as i64)),
                ("threads", Json::Int(run_cfg.threads as i64)),
                ("phase", Json::str(phase)),
                ("total_queries", Json::Int(r.total_queries as i64)),
                ("elapsed_us", Json::Int(r.elapsed.as_micros() as i64)),
                ("throughput_qps", Json::Num(r.throughput_qps)),
                ("p50_us", Json::Int(r.p50.as_micros() as i64)),
                ("p99_us", Json::Int(r.p99.as_micros() as i64)),
                ("max_us", Json::Int(r.max.as_micros() as i64)),
                ("cache_hit_rate", Json::Num(r.cache_hit_rate)),
                ("records_extracted", Json::Int(r.records_extracted as i64)),
            ]));
        }
    }
    print_table(
        &format!(
            "E12 — Concurrent clients ({} scale): {} threads x Figure-1 mix, warm storm vs shard count",
            scale.label(),
            run_cfg.threads
        ),
        &[
            "shards", "threads", "qps", "p50", "p99",
            "hit rate", "cold extractions", "warm extractions",
        ],
        &rows,
    );
    emit_json("e12", scale, json_rows);
}

/// E13: warm restart — cold open vs. reopen-from-snapshot over the
/// Figure-1 mix; the durable save path's headline numbers.
fn e13_warm_restart(scale: ScaleName) {
    use lazyetl_bench::warm_restart::run_warm_restart;
    let dir = scale_repo(scale);
    let r = run_warm_restart(&dir, &base_config());
    let warm_beats_cold = r.warm.time_to_first_insight() < r.cold.time_to_first_insight();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (phase, p) in [("cold", &r.cold), ("warm", &r.warm)] {
        rows.push(vec![
            phase.to_string(),
            fmt_dur(p.open),
            fmt_dur(p.first_query),
            fmt_dur(p.time_to_first_insight()),
            fmt_dur(p.mix_total),
            format!("{:.0}%", 100.0 * p.hit_rate()),
            p.records_extracted.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("phase", Json::str(phase)),
            ("open_us", Json::Int(p.open.as_micros() as i64)),
            (
                "first_query_us",
                Json::Int(p.first_query.as_micros() as i64),
            ),
            (
                "tti_us",
                Json::Int(p.time_to_first_insight().as_micros() as i64),
            ),
            ("mix_total_us", Json::Int(p.mix_total.as_micros() as i64)),
            ("cache_hit_rate", Json::Num(p.hit_rate())),
            ("records_extracted", Json::Int(p.records_extracted as i64)),
            ("save_us", Json::Int(r.save.as_micros() as i64)),
            ("saved_bytes", Json::Int(r.saved_bytes as i64)),
            ("segments", Json::Int(r.segments as i64)),
            ("warm_beats_cold", Json::Bool(warm_beats_cold)),
        ]));
    }
    print_table(
        &format!(
            "E13 — Warm restart ({} scale): save {} / {} in {} segments; warm TTI beats cold: {}",
            scale.label(),
            fmt_dur(r.save),
            fmt_bytes(r.saved_bytes),
            r.segments,
            warm_beats_cold
        ),
        &[
            "restart",
            "open",
            "first query",
            "time-to-first-insight",
            "mix total",
            "hit rate",
            "records extracted",
        ],
        &rows,
    );
    emit_json("e13", scale, json_rows);
}

/// E14: served traffic — K TCP clients through the wire protocol against
/// one in-process server, swept over worker-pool sizes. The serving
/// layer's headline numbers: throughput, tail latency, busy-rejection
/// rate, cache hit rate.
fn e14_served(scale: ScaleName) {
    use lazyetl_bench::served::{run_served_mix, ServedConfig};
    let dir = scale_repo(scale);
    let wh = Arc::new(
        Warehouse::open_lazy(
            &dir,
            WarehouseConfig {
                // Serving benches measure the pool, not the rescan; the
                // server's production default keeps auto-refresh on.
                auto_refresh: false,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut push_json =
        |phase: &str, cfg: &ServedConfig, r: &lazyetl_bench::served::ServedRunResult| {
            json_rows.push(Json::obj([
                ("phase", Json::str(phase)),
                ("workers", Json::Int(cfg.workers as i64)),
                ("clients", Json::Int(cfg.clients as i64)),
                ("queue_depth", Json::Int(cfg.queue_depth as i64)),
                ("delay_ms", Json::Int(cfg.delay_ms as i64)),
                ("total_queries", Json::Int(r.total_queries as i64)),
                ("busy_rejections", Json::Int(r.busy_rejections as i64)),
                ("busy_rate", Json::Num(r.busy_rate())),
                ("elapsed_us", Json::Int(r.elapsed.as_micros() as i64)),
                ("throughput_qps", Json::Num(r.throughput_qps)),
                ("p50_us", Json::Int(r.p50.as_micros() as i64)),
                ("p99_us", Json::Int(r.p99.as_micros() as i64)),
                ("max_us", Json::Int(r.max.as_micros() as i64)),
                ("cache_hit_rate", Json::Num(r.cache_hit_rate)),
                ("records_extracted", Json::Int(r.records_extracted as i64)),
                ("cursors_opened", Json::Int(r.server.cursors_opened as i64)),
                (
                    "batches_streamed",
                    Json::Int(r.server.batches_streamed as i64),
                ),
                ("credit_stalls", Json::Int(r.server.credit_stalls as i64)),
            ]));
        };

    // Cold storm: first served traffic pays the lazy extraction.
    let cold_cfg = ServedConfig {
        workers: 2,
        ..Default::default()
    };
    let cold = run_served_mix(&wh, &cold_cfg);
    push_json("cold", &cold_cfg, &cold);
    rows.push(vec![
        "cold".into(),
        cold_cfg.workers.to_string(),
        cold_cfg.clients.to_string(),
        format!("{:.0}", cold.throughput_qps),
        fmt_dur(cold.p50),
        fmt_dur(cold.p99),
        format!("{:.1}%", 100.0 * cold.busy_rate()),
        format!("{:.0}%", 100.0 * cold.cache_hit_rate),
        cold.records_extracted.to_string(),
    ]);

    // Warm sweep over the worker pool: steady-state serving throughput.
    // The 25ms server-side think time makes service time sleep-dominated
    // (mean warm CPU per mix query is ~9ms, almost all of it Q2), so
    // throughput ≈ min(workers, clients)/service_time and the sweep
    // measures the pool, not the host: worker sleeps overlap even on a
    // single core, giving the acceptance bar — monotone non-decreasing
    // throughput 1→4 workers — ~2x margin per step on any machine.
    // Best-of-2 damps scheduler noise on shared runners.
    for workers in [1usize, 2, 4] {
        let cfg = ServedConfig {
            workers,
            queries_per_client: 12,
            delay_ms: 25,
            ..Default::default()
        };
        let mut best: Option<lazyetl_bench::served::ServedRunResult> = None;
        for _ in 0..2 {
            let r = run_served_mix(&wh, &cfg);
            if best
                .as_ref()
                .is_none_or(|b| r.throughput_qps > b.throughput_qps)
            {
                best = Some(r);
            }
        }
        let r = best.expect("two runs happened");
        push_json("warm", &cfg, &r);
        rows.push(vec![
            "warm".into(),
            workers.to_string(),
            cfg.clients.to_string(),
            format!("{:.0}", r.throughput_qps),
            fmt_dur(r.p50),
            fmt_dur(r.p99),
            format!("{:.1}%", 100.0 * r.busy_rate()),
            format!("{:.0}%", 100.0 * r.cache_hit_rate),
            r.records_extracted.to_string(),
        ]);
    }

    // Admission-control demonstration: 4 clients racing a depth-1 queue
    // behind 1 worker with think time — BUSY frames must fire.
    let tight_cfg = ServedConfig {
        workers: 1,
        queue_depth: 1,
        delay_ms: 5,
        queries_per_client: 6,
        ..Default::default()
    };
    let tight = run_served_mix(&wh, &tight_cfg);
    push_json("admission", &tight_cfg, &tight);
    rows.push(vec![
        "admission".into(),
        tight_cfg.workers.to_string(),
        tight_cfg.clients.to_string(),
        format!("{:.0}", tight.throughput_qps),
        fmt_dur(tight.p50),
        fmt_dur(tight.p99),
        format!("{:.1}%", 100.0 * tight.busy_rate()),
        format!("{:.0}%", 100.0 * tight.cache_hit_rate),
        tight.records_extracted.to_string(),
    ]);

    // Connection sweep: hundreds of warm clients against a 2-worker pool.
    // The event-driven poller owns every connection on one thread, so the
    // connection count is a memory knob, not a thread count — the sweep's
    // question is how p99 degrades as connections pile onto the same pool.
    for clients in [50usize, 100, 200] {
        let cfg = ServedConfig {
            clients,
            queries_per_client: 2,
            workers: 2,
            queue_depth: 4096,
            delay_ms: 0,
        };
        let r = run_served_mix(&wh, &cfg);
        push_json("connsweep", &cfg, &r);
        rows.push(vec![
            "connsweep".into(),
            cfg.workers.to_string(),
            clients.to_string(),
            format!("{:.0}", r.throughput_qps),
            fmt_dur(r.p50),
            fmt_dur(r.p99),
            format!("{:.1}%", 100.0 * r.busy_rate()),
            format!("{:.0}%", 100.0 * r.cache_hit_rate),
            r.records_extracted.to_string(),
        ]);
    }

    // Memory ceiling: one reader stalls mid-stream on a large scan; the
    // credit window and outbuf ceiling must hold server memory at
    // O(batch) where whole-frame serving would buffer the O(result)
    // reply. `ceiling_ok` is the acceptance bar (gated by bench_gate).
    let mc_cfg = lazyetl_bench::served::MemCeilConfig::default();
    let mc = lazyetl_bench::served::run_memory_ceiling(&wh, &mc_cfg);
    json_rows.push(Json::obj([
        ("phase", Json::str("memceil")),
        ("batch_rows", Json::Int(mc_cfg.batch_rows as i64)),
        ("initial_credit", Json::Int(mc_cfg.initial_credit as i64)),
        (
            "max_outbuf_bytes",
            Json::Int(mc_cfg.max_outbuf_bytes as i64),
        ),
        ("rows", Json::Int(mc.rows as i64)),
        ("batches_streamed", Json::Int(mc.batches_streamed as i64)),
        ("credit_stalls", Json::Int(mc.credit_stalls as i64)),
        ("outbuf_hwm_bytes", Json::Int(mc.outbuf_hwm_bytes as i64)),
        ("ceiling_bytes", Json::Int(mc.ceiling_bytes as i64)),
        ("ceiling_ok", Json::Bool(mc.ceiling_ok)),
        ("elapsed_us", Json::Int(mc.elapsed.as_micros() as i64)),
    ]));
    rows.push(vec![
        "memceil".into(),
        "1".into(),
        "1".into(),
        format!("{} rows", mc.rows),
        format!("hwm {}B", mc.outbuf_hwm_bytes),
        format!("cap {}B", mc.ceiling_bytes),
        format!("{} stalls", mc.credit_stalls),
        if mc.ceiling_ok {
            "ok".into()
        } else {
            "BLOWN".into()
        },
        mc.batches_streamed.to_string(),
    ]);

    print_table(
        &format!(
            "E14 — Served traffic ({} scale): TCP clients through the wire protocol, one shared warehouse",
            scale.label()
        ),
        &[
            "phase", "workers", "clients", "qps", "p50", "p99",
            "busy rate", "hit rate", "extracted",
        ],
        &rows,
    );
    emit_json("e14", scale, json_rows);
}

/// E15: kernel throughput — the identical plan through the row
/// interpreter vs the typed kernels, plus the zone-map short-circuit.
/// The acceptance bar (vectorized ≥2x at tiny scale, `rows_pruned` > 0)
/// is enforced by CI via `tools/bench_gate.py` over `BENCH_e15.json`.
fn e15_kernels(scale: ScaleName) {
    use lazyetl_bench::kernels::{bench_rows, run_kernel_bench, run_parallel_sweep};
    let rows = bench_rows(scale);
    let r = run_kernel_bench(rows, 3);
    let mut table_rows = Vec::new();
    let mut json_rows = Vec::new();
    for k in &r.kernels {
        table_rows.push(vec![
            k.kernel.to_string(),
            rows.to_string(),
            k.out_rows.to_string(),
            fmt_dur(k.scalar),
            fmt_dur(k.vectorized),
            format!("{:.1}x", k.speedup()),
            format!("{:.1}M", k.rows_per_sec(k.vectorized) / 1e6),
            k.results_match.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("kernel", Json::str(k.kernel)),
            ("rows", Json::Int(k.rows as i64)),
            ("out_rows", Json::Int(k.out_rows as i64)),
            ("scalar_us", Json::Int(k.scalar.as_micros() as i64)),
            ("vectorized_us", Json::Int(k.vectorized.as_micros() as i64)),
            ("speedup", Json::Num(k.speedup())),
            ("rows_per_sec_scalar", Json::Num(k.rows_per_sec(k.scalar))),
            (
                "rows_per_sec_vectorized",
                Json::Num(k.rows_per_sec(k.vectorized)),
            ),
            ("results_match", Json::Bool(k.results_match)),
        ]));
    }
    let z = &r.zone_map;
    table_rows.push(vec![
        "zonemap".to_string(),
        rows.to_string(),
        "0".to_string(),
        fmt_dur(z.unpruned),
        fmt_dur(z.pruned),
        format!(
            "{:.0}x",
            z.unpruned.as_secs_f64() / z.pruned.as_secs_f64().max(1e-9)
        ),
        format!("pruned {}", z.rows_pruned),
        z.results_match.to_string(),
    ]);
    json_rows.push(Json::obj([
        ("kernel", Json::str("zonemap")),
        ("rows", Json::Int(z.rows as i64)),
        ("rows_pruned", Json::Int(z.rows_pruned as i64)),
        ("pruned_us", Json::Int(z.pruned.as_micros() as i64)),
        ("unpruned_us", Json::Int(z.unpruned.as_micros() as i64)),
        ("results_match", Json::Bool(z.results_match)),
    ]));
    // Cores-vs-speedup sweep: the aggregate kernel at 1/2/4 execution
    // workers. `cores` rides along so the gate can skip the scaling
    // floor on single-core hosts (speedup there is meaningless).
    for p in run_parallel_sweep(rows, 3) {
        table_rows.push(vec![
            "agg_parallel".to_string(),
            rows.to_string(),
            p.workers.to_string(),
            fmt_dur(p.elapsed),
            String::new(),
            format!("{:.2}x", p.speedup),
            format!("{} cores", p.cores),
            p.results_match.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("kernel", Json::str("agg_parallel")),
            ("rows", Json::Int(p.rows as i64)),
            ("workers", Json::Int(p.workers as i64)),
            ("elapsed_us", Json::Int(p.elapsed.as_micros() as i64)),
            ("parallel_speedup", Json::Num(p.speedup)),
            ("cores", Json::Int(p.cores as i64)),
            ("results_match", Json::Bool(p.results_match)),
        ]));
    }
    print_table(
        &format!(
            "E15 — Kernel throughput ({} scale, {} rows): scalar interpreter vs typed kernels; \
             zonemap row = provably-empty filter with pruning off vs on",
            scale.label(),
            rows
        ),
        &[
            "kernel",
            "rows",
            "out rows",
            "scalar",
            "vectorized",
            "speedup",
            "Mrows/s vec",
            "match",
        ],
        &table_rows,
    );
    emit_json("e15", scale, json_rows);
}

/// E16: federated lazy extraction — three disjoint sources (local mSEED
/// archive, CSV survey drop, latency-injected simulated remote) behind
/// one warehouse; the federated answer must equal the eager union, the
/// warm re-query must extract nothing, and per-source accounting is the
/// acceptance bar CI gates via `tools/bench_gate.py` over `BENCH_e16.json`.
fn e16_federated(scale: ScaleName) {
    use lazyetl_bench::federated::run_federated;
    let r = run_federated(scale, true);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for s in &r.sources {
        let st = &s.stats;
        rows.push(vec![
            st.name.clone(),
            st.kind.to_string(),
            st.files.to_string(),
            st.files_extracted.to_string(),
            st.records_extracted.to_string(),
            fmt_bytes(st.bytes_read),
            st.fetch_requests.to_string(),
            fmt_dur(st.simulated_io),
            s.warm_files_extracted.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("source", Json::str(st.name.clone())),
            ("kind", Json::str(st.kind)),
            ("files", Json::Int(st.files as i64)),
            ("files_extracted", Json::Int(st.files_extracted as i64)),
            ("records_extracted", Json::Int(st.records_extracted as i64)),
            ("samples_extracted", Json::Int(st.samples_extracted as i64)),
            ("bytes_read", Json::Int(st.bytes_read as i64)),
            (
                "simulated_io_us",
                Json::Int(st.simulated_io.as_micros() as i64),
            ),
            ("fetch_requests", Json::Int(st.fetch_requests as i64)),
            ("fetched_bytes", Json::Int(st.fetched_bytes as i64)),
            (
                "warm_files_extracted",
                Json::Int(s.warm_files_extracted as i64),
            ),
        ]));
    }
    json_rows.push(Json::obj([
        ("source", Json::str("_query")),
        ("rows", Json::Int(r.rows as i64)),
        ("union_matches", Json::Bool(r.union_matches)),
        (
            "federated_open_us",
            Json::Int(r.federated_open.as_micros() as i64),
        ),
        ("union_open_us", Json::Int(r.union_open.as_micros() as i64)),
        ("cold_us", Json::Int(r.cold.as_micros() as i64)),
        ("warm_us", Json::Int(r.warm.as_micros() as i64)),
        (
            "union_query_us",
            Json::Int(r.union_query.as_micros() as i64),
        ),
        (
            "warm_records_extracted",
            Json::Int(r.warm_records_extracted as i64),
        ),
        ("warm_cache_hits", Json::Int(r.warm_cache_hits as i64)),
    ]));
    print_table(
        &format!(
            "E16 — Federated lazy extraction ({} scale): open {} (vs eager union {}), \
             cold {} / warm {} (union query {}), {} rows, union match: {}",
            scale.label(),
            fmt_dur(r.federated_open),
            fmt_dur(r.union_open),
            fmt_dur(r.cold),
            fmt_dur(r.warm),
            fmt_dur(r.union_query),
            r.rows,
            r.union_matches,
        ),
        &[
            "mount",
            "kind",
            "files",
            "extracted",
            "records",
            "bytes",
            "fetches",
            "sim IO",
            "warm re-extractions",
        ],
        &rows,
    );
    emit_json("e16", scale, json_rows);
}

/// E17: cost-based planner & ordered time index — the same window-query
/// mix under the full pipeline, the linear-sweep ablation and the
/// heuristic (no-cost) ablation. Equal answers, strictly fewer index
/// entries examined under the seek, and estimate accounting are the
/// acceptance bars CI gates via `tools/bench_gate.py` over `BENCH_e17.json`.
fn e17_planner(scale: ScaleName) {
    use lazyetl_bench::planner::run_planner_bench;
    let dir = scale_repo(scale);
    let results = run_planner_bench(&dir);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.config.to_string(),
            r.queries.to_string(),
            fmt_dur(r.cold),
            r.index_seeks.to_string(),
            r.entries_examined.to_string(),
            r.fetched_pairs.to_string(),
            r.pruned_pairs.to_string(),
            r.plans_estimated.to_string(),
            r.estimate_abs_error.to_string(),
            r.results_match.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("config", Json::str(r.config)),
            ("queries", Json::Int(r.queries as i64)),
            ("rows", Json::Int(r.rows as i64)),
            ("cold_us", Json::Int(r.cold.as_micros() as i64)),
            ("index_seeks", Json::Int(r.index_seeks as i64)),
            ("entries_examined", Json::Int(r.entries_examined as i64)),
            ("fetched_pairs", Json::Int(r.fetched_pairs as i64)),
            ("pruned_pairs", Json::Int(r.pruned_pairs as i64)),
            ("plans_estimated", Json::Int(r.plans_estimated as i64)),
            ("estimate_abs_error", Json::Int(r.estimate_abs_error as i64)),
            ("results_match", Json::Bool(r.results_match)),
        ]));
    }
    print_table(
        &format!(
            "E17 — Cost-based planning & time index ({} scale): window mix under seek / linear sweep / heuristic planner",
            scale.label()
        ),
        &[
            "config", "queries", "cold mix", "index seeks", "entries examined",
            "fetched", "pruned", "plans estimated", "abs error", "match",
        ],
        &rows,
    );
    emit_json("e17", scale, json_rows);
}

/// Write `BENCH_<experiment>.json` and tell the operator where it went.
fn emit_json(experiment: &str, scale: ScaleName, rows: Vec<Json>) {
    match write_bench_file(experiment, scale.label(), rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_{experiment}.json: {e}"),
    }
}

/// E6: repository updates — cost of staying fresh.
fn e6_updates(scale: ScaleName) {
    let src = scale_repo(scale);
    let mut rows = Vec::new();
    for (label, n_changes) in [("1 file appended", 1usize), ("4 files appended", 4)] {
        let dir = mutable_copy(&src, &format!("e6_{n_changes}"));
        let cfg = WarehouseConfig {
            auto_refresh: true,
            ..Default::default()
        };
        let lazy = Warehouse::open_lazy(&dir, cfg.clone()).unwrap();
        let eager = Warehouse::open_eager(&dir, cfg).unwrap();
        // Warm both with a metadata query.
        lazy.query(METADATA_QUERY).unwrap();
        eager.query(METADATA_QUERY).unwrap();

        let mut repo = Repository::open(&dir).unwrap();
        let uris: Vec<String> = repo
            .files()
            .iter()
            .filter(|f| f.uri.contains("BHZ"))
            .take(n_changes)
            .map(|f| f.uri.clone())
            .collect();
        for (i, uri) in uris.iter().enumerate() {
            updates::append_records(&mut repo, uri, 30, 1000 + i as u64).unwrap();
        }
        // The next query pays the refresh; measure it.
        let (_, t_lazy) = time(|| lazy.query(METADATA_QUERY).unwrap());
        let (_, t_eager) = time(|| eager.query(METADATA_QUERY).unwrap());
        // Baseline: full reload from scratch.
        let (_, t_reload) = time(|| Warehouse::open_eager(&dir, base_config()).unwrap());
        rows.push(vec![
            label.to_string(),
            fmt_dur(t_lazy),
            fmt_dur(t_eager),
            fmt_dur(t_reload),
        ]);
        std::fs::remove_dir_all(&dir).ok();
    }
    print_table(
        &format!(
            "E6 — Update handling ({} scale): next-query cost after repository changes",
            scale.label()
        ),
        &[
            "change",
            "lazy refresh+query",
            "eager refresh+query",
            "eager full reload",
        ],
        &rows,
    );
}

/// E7: cache behaviour under budget pressure.
fn e7_cache(scale: ScaleName) {
    let dir = scale_repo(scale);
    let mut rows = Vec::new();
    // Working set: all five stations' BHZ channels.
    let sql = selectivity_query(5);
    for (label, budget) in [
        ("unbounded (256 MiB)", 256usize << 20),
        ("50% of working set", 0usize), // filled below
        ("10% of working set", 1),
    ] {
        // First pass with big budget to size the working set.
        let budget = match label {
            "unbounded (256 MiB)" => budget,
            _ => {
                let probe = Warehouse::open_lazy(
                    &dir,
                    WarehouseConfig {
                        auto_refresh: false,
                        ..Default::default()
                    },
                )
                .unwrap();
                probe.query(&sql).unwrap();
                let ws = probe.cache_snapshot().used_bytes;
                if label.starts_with("50%") {
                    ws / 2
                } else {
                    ws / 10
                }
            }
        };
        let wh = Warehouse::open_lazy(
            &dir,
            WarehouseConfig {
                cache_budget_bytes: budget,
                auto_refresh: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (_, t_cold) = time(|| wh.query(&sql).unwrap());
        let (o2, t_warm) = time(|| wh.query(&sql).unwrap());
        let snap = wh.cache_snapshot();
        rows.push(vec![
            label.to_string(),
            fmt_bytes(budget as u64),
            fmt_dur(t_cold),
            fmt_dur(t_warm),
            format!(
                "{:.0}%",
                100.0 * o2.report.cache_hits as f64
                    / (o2.report.cache_hits + o2.report.cache_misses).max(1) as f64
            ),
            snap.stats.evictions.to_string(),
        ]);
    }
    print_table(
        &format!(
            "E7 — Recycling cache under budget pressure ({} scale)",
            scale.label()
        ),
        &[
            "budget",
            "bytes",
            "cold query",
            "repeat query",
            "repeat hit rate",
            "evictions",
        ],
        &rows,
    );
}

/// E9: STA/LTA event mining end to end.
fn e9_sta_lta(scale: ScaleName) {
    let dir = scale_repo(scale);
    let cfg = lazyetl_core::StaLtaConfig {
        threshold: 3.5,
        ..Default::default()
    };
    let mut rows = Vec::new();
    let (lazy, t_lload) = time(|| Warehouse::open_lazy(&dir, base_config()).unwrap());
    let (hunt_l, t_lq) = time(|| {
        lazyetl_core::hunt_events(
            &lazy,
            "ISK",
            "BHE",
            "2010-01-12T22:00:00",
            "2010-01-12T23:00:00",
            &cfg,
        )
        .unwrap()
    });
    let (eager, t_eload) = time(|| Warehouse::open_eager(&dir, base_config()).unwrap());
    let (hunt_e, t_eq) = time(|| {
        lazyetl_core::hunt_events(
            &eager,
            "ISK",
            "BHE",
            "2010-01-12T22:00:00",
            "2010-01-12T23:00:00",
            &cfg,
        )
        .unwrap()
    });
    assert_eq!(hunt_l.detections.len(), hunt_e.detections.len());
    rows.push(vec![
        "lazy".into(),
        fmt_dur(t_lload),
        fmt_dur(t_lq),
        fmt_dur(t_lload + t_lq),
        hunt_l.samples.to_string(),
        hunt_l.detections.len().to_string(),
    ]);
    rows.push(vec![
        "eager".into(),
        fmt_dur(t_eload),
        fmt_dur(t_eq),
        fmt_dur(t_eload + t_eq),
        hunt_e.samples.to_string(),
        hunt_e.detections.len().to_string(),
    ]);
    print_table(
        &format!(
            "E9 — STA/LTA event hunt on KO.ISK BHE, one hour ({} scale)",
            scale.label()
        ),
        &[
            "mode",
            "load",
            "hunt",
            "total",
            "samples scanned",
            "detections",
        ],
        &rows,
    );
}

/// E10: parallel lazy extraction — wall clock vs worker threads on an
/// extraction-bound sweep (one record from every file).
fn e10_parallel(scale: ScaleName) {
    let dir = scale_repo(scale);
    let sweep = "SELECT COUNT(D.sample_value) FROM mseed.dataview WHERE R.seq_no = 1";
    let mut rows = Vec::new();
    let mut base = Duration::ZERO;
    for threads in [1usize, 2, 4, 8] {
        let wh = Warehouse::open_lazy(
            &dir,
            WarehouseConfig {
                auto_refresh: false,
                use_cache: false,
                extraction_threads: threads,
                ..Default::default()
            },
        )
        .unwrap();
        // Median of three runs.
        let mut times: Vec<Duration> = (0..3)
            .map(|_| time(|| wh.query(sweep).unwrap()).1)
            .collect();
        times.sort();
        let t = times[1];
        if threads == 1 {
            base = t;
        }
        let out = wh.query(sweep).unwrap();
        rows.push(vec![
            threads.to_string(),
            fmt_dur(t),
            format!("{:.2}x", base.as_secs_f64() / t.as_secs_f64().max(1e-9)),
            out.report.files_extracted.len().to_string(),
            out.report.records_extracted.to_string(),
        ]);
    }
    print_table(
        &format!(
            "E10 — Parallel lazy extraction ({} scale): decode+materialize overlap; \
             sequential join/aggregate bounds the speedup (Amdahl)",
            scale.label()
        ),
        &["threads", "cold query", "speedup", "files", "records"],
        &rows,
    );
}

/// E11: the two recycler levels — record cache vs whole-result recycler.
fn e11_recycling(scale: ScaleName) {
    let dir = scale_repo(scale);
    let mut rows = Vec::new();
    let variants: [(&str, WarehouseConfig); 3] = [
        (
            "no caching (re-extract every run)",
            WarehouseConfig {
                auto_refresh: false,
                use_cache: false,
                ..Default::default()
            },
        ),
        (
            "record cache (paper's recycler)",
            WarehouseConfig {
                auto_refresh: false,
                ..Default::default()
            },
        ),
        (
            "result recycler (end result of the view)",
            WarehouseConfig {
                auto_refresh: false,
                recycle_query_results: true,
                ..Default::default()
            },
        ),
    ];
    for (label, cfg) in variants {
        let wh = Warehouse::open_lazy(&dir, cfg).unwrap();
        let (_, t_cold) = time(|| wh.query(FIGURE1_Q2).unwrap());
        let mut warms: Vec<Duration> = (0..3)
            .map(|_| time(|| wh.query(FIGURE1_Q2).unwrap()).1)
            .collect();
        warms.sort();
        let out = wh.query(FIGURE1_Q2).unwrap();
        rows.push(vec![
            label.to_string(),
            fmt_dur(t_cold),
            fmt_dur(warms[1]),
            out.report.records_extracted.to_string(),
            if out.report.result_recycled {
                "whole result".into()
            } else if out.report.cache_hits > 0 {
                "record payloads".into()
            } else {
                "nothing".into()
            },
        ]);
    }
    print_table(
        &format!(
            "E11 — Recycler levels on Figure-1 Q2 ({} scale): warm repeats",
            scale.label()
        ),
        &[
            "configuration",
            "cold query",
            "warm query",
            "warm re-extractions",
            "reused",
        ],
        &rows,
    );
}

/// E8 appears as integration tests + the explain_lazy example; here we
/// print the plans once for the record.
fn e8_observability(scale: ScaleName) {
    let dir = scale_repo(scale);
    let wh = Warehouse::open_lazy(&dir, base_config()).unwrap();
    let out = wh.query(FIGURE1_Q1).unwrap();
    println!(
        "\n### E8 — Plan observability (Figure-1 Q1, {} scale)\n",
        scale.label()
    );
    for (stage, plan) in &out.report.stages {
        println!("--- {stage} ---\n{plan}");
    }
    let r = out.report.rewrite.as_ref().unwrap();
    println!(
        "metadata rows: {}, candidates: {}, pruned: {}, fetched: {}",
        r.metadata_rows, r.candidate_pairs, r.pruned_pairs, r.fetched_pairs
    );
    println!("files extracted: {:?}", out.report.files_extracted);
}

/// Every experiment the harness knows, in run order.
/// E18: fresh-data polling — a steady update stream under K pollers,
/// incremental result maintenance vs drop-and-recompute.
fn e18_fresh(scale: ScaleName) {
    use lazyetl_bench::fresh::{run_fresh_bench, FreshConfig, FRESH_QUERIES};
    let src = scale_repo(scale);
    let cfg = FreshConfig::default();
    let (incr, recomp, results_match) = run_fresh_bench(&src, &cfg);
    let speedup = recomp.total().as_secs_f64() / incr.total().as_secs_f64().max(1e-9);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for r in [&incr, &recomp] {
        rows.push(vec![
            r.mode.to_string(),
            r.rounds.to_string(),
            r.pollers.to_string(),
            r.polls.to_string(),
            fmt_dur(r.refresh_total),
            fmt_dur(r.poll_total),
            fmt_dur(r.total()),
            r.recycler.results_patched.to_string(),
            r.recycler.patch_rows_applied.to_string(),
            r.recycler.recompute_fallbacks.to_string(),
            r.recycler.bytes_saved_estimate.to_string(),
            results_match.to_string(),
        ]);
        json_rows.push(Json::obj([
            ("mode", Json::str(r.mode)),
            ("rounds", Json::Int(r.rounds as i64)),
            ("pollers", Json::Int(r.pollers as i64)),
            ("polls", Json::Int(r.polls as i64)),
            ("refresh_us", Json::Int(r.refresh_total.as_micros() as i64)),
            ("poll_us", Json::Int(r.poll_total.as_micros() as i64)),
            ("total_us", Json::Int(r.total().as_micros() as i64)),
            (
                "results_patched",
                Json::Int(r.recycler.results_patched as i64),
            ),
            (
                "patch_rows_applied",
                Json::Int(r.recycler.patch_rows_applied as i64),
            ),
            (
                "recompute_fallbacks",
                Json::Int(r.recycler.recompute_fallbacks as i64),
            ),
            (
                "bytes_saved_estimate",
                Json::Int(r.recycler.bytes_saved_estimate as i64),
            ),
            ("recycler_hits", Json::Int(r.recycler.hits as i64)),
            ("results_match", Json::Bool(results_match)),
        ]));
    }
    print_table(
        &format!(
            "E18 — Fresh-data polling ({} scale): {} update rounds, {} pollers x {} queries; incremental maintenance vs recompute ({speedup:.1}x)",
            scale.label(),
            cfg.rounds,
            cfg.pollers,
            FRESH_QUERIES.len(),
        ),
        &[
            "mode", "rounds", "pollers", "polls", "refresh", "poll", "total",
            "patched", "patch rows", "fallbacks", "bytes saved", "match",
        ],
        &rows,
    );
    emit_json("e18", scale, json_rows);
}

const KNOWN_EXPERIMENTS: [&str; 18] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ScaleName::Small;
    let mut wanted: Vec<String> = Vec::new();
    for a in &args {
        if let Some(s) = ScaleName::parse(a) {
            scale = s;
        } else {
            wanted.push(a.clone());
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = KNOWN_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    // Validate up front: CI gates depend on a bad experiment name being a
    // hard failure, not a warning scrolled past 500 lines of tables.
    let unknown: Vec<&String> = wanted
        .iter()
        .filter(|w| !KNOWN_EXPERIMENTS.contains(&w.as_str()))
        .collect();
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment(s) {unknown:?}\nvalid experiments: {} or 'all'\nvalid scales: tiny small medium large",
            KNOWN_EXPERIMENTS.join(" ")
        );
        std::process::exit(2);
    }
    println!("# Lazy ETL experiment harness — scale: {}", scale.label());
    for w in &wanted {
        match w.as_str() {
            "e1" => e1_initial_load(),
            "e2" => e2_storage(scale),
            "e3" => e3_figure1(scale),
            "e4" => e4_selectivity(scale),
            "e5" => e5_time_to_insight(scale),
            "e6" => e6_updates(scale),
            "e7" => e7_cache(scale),
            "e8" => e8_observability(scale),
            "e9" => e9_sta_lta(scale),
            "e10" => e10_parallel(scale),
            "e11" => e11_recycling(scale),
            "e12" => e12_concurrent(scale),
            "e13" => e13_warm_restart(scale),
            "e14" => e14_served(scale),
            "e15" => e15_kernels(scale),
            "e16" => e16_federated(scale),
            "e17" => e17_planner(scale),
            "e18" => e18_fresh(scale),
            _ => unreachable!("validated above"),
        }
    }
}
