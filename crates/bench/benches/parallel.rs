//! E10: parallel lazy extraction — wall-clock speedup of decoding
//! independent files concurrently, with results proven byte-identical by
//! `tests/parallel_extraction.rs`.
//!
//! The workload is extraction-bound: one record from *every* file of the
//! repository (a calibration sweep, in seismology terms), so per-query
//! time is dominated by per-file decode + materialize work that the
//! thread pool can overlap. The cache is disabled so each iteration
//! re-extracts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazyetl_bench::{scale_repo, ScaleName};
use lazyetl_core::warehouse::{Warehouse, WarehouseConfig};
use std::hint::black_box;

/// Touches every file (seq_no 1 exists in each) but keeps the result and
/// the downstream join/aggregate small.
const SWEEP: &str = "SELECT COUNT(D.sample_value) FROM mseed.dataview WHERE R.seq_no = 1";

fn bench_parallel(c: &mut Criterion) {
    let repo = scale_repo(ScaleName::Medium);
    let mut group = c.benchmark_group("parallel_extraction");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let wh = Warehouse::open_lazy(
            &repo,
            WarehouseConfig {
                auto_refresh: false,
                use_cache: false,
                extraction_threads: threads,
                ..Default::default()
            },
        )
        .expect("attach");
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                let out = wh.query(black_box(SWEEP)).expect("query");
                black_box(out.report.samples_extracted)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
