//! E4b ablations: what each §3.1 mechanism buys.
//!
//! The same selective query (Figure-1 Q1) runs with individual lazy-ETL
//! mechanisms disabled. Caching is off throughout so every iteration pays
//! the true extraction cost of its configuration:
//!
//! * `full`              — metadata-predicates-first + record pruning;
//! * `no-metadata-first` — compile-time pushdown disabled: the rewriter
//!   sees no metadata join it can execute early, degenerating to a
//!   full-repository extraction (the paper's worst case);
//! * `no-record-pruning` — file-level selection only: every record of the
//!   qualifying files is decoded, including those outside the two-second
//!   sample window.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyetl_bench::{scale_repo, ScaleName, FIGURE1_Q1};
use lazyetl_core::warehouse::{Warehouse, WarehouseConfig};
use std::hint::black_box;

fn config(metadata_first: bool, pruning: bool) -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        use_cache: false,
        metadata_predicate_first: metadata_first,
        record_level_pruning: pruning,
        ..Default::default()
    }
}

fn bench_ablations(c: &mut Criterion) {
    let repo = scale_repo(ScaleName::Small);
    let mut group = c.benchmark_group("ablation_q1");
    group.sample_size(10);
    for (label, meta_first, pruning) in [
        ("full", true, true),
        ("no-metadata-first", false, true),
        ("no-record-pruning", true, false),
    ] {
        let wh = Warehouse::open_lazy(&repo, config(meta_first, pruning)).expect("attach");
        group.bench_function(label, |b| {
            b.iter(|| {
                let out = wh.query(black_box(FIGURE1_Q1)).expect("query");
                black_box(out.report.records_extracted)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
