//! E1 — Initial loading: eager vs lazy across repository sizes.
//!
//! The paper's headline: lazy initial loading touches only metadata, so it
//! is orders of magnitude cheaper and nearly independent of payload size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazyetl_bench::{scale_repo, ScaleName};
use lazyetl_core::{Warehouse, WarehouseConfig};

fn cfg() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

fn bench_initial_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("initial_load");
    group.sample_size(10);
    for scale in [ScaleName::Tiny, ScaleName::Small, ScaleName::Medium] {
        let dir = scale_repo(scale);
        group.bench_with_input(BenchmarkId::new("lazy", scale.label()), &dir, |b, dir| {
            b.iter(|| Warehouse::open_lazy(dir, cfg()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("eager", scale.label()), &dir, |b, dir| {
            b.iter(|| Warehouse::open_eager(dir, cfg()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_initial_load);
criterion_main!(benches);
