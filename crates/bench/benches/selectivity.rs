//! E4 — Selectivity sweep: lazy cold-query cost as the touched fraction of
//! the repository grows (1 of 5 stations .. all 5), against the eager
//! resident query. Shows the §3.1 worst case: at selectivity 1 lazy
//! degenerates toward eager-load cost.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lazyetl_bench::{scale_repo, selectivity_query, ScaleName};
use lazyetl_core::{Warehouse, WarehouseConfig};

fn cfg() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

fn bench_selectivity(c: &mut Criterion) {
    let dir = scale_repo(ScaleName::Small);
    let mut group = c.benchmark_group("selectivity");
    group.sample_size(10);
    let eager = Warehouse::open_eager(&dir, cfg()).unwrap();
    for k in [1usize, 2, 3, 4, 5] {
        let sql = selectivity_query(k);
        group.bench_with_input(
            BenchmarkId::new("lazy_cold", format!("{k}of5")),
            &sql,
            |b, sql| {
                b.iter_batched(
                    || Warehouse::open_lazy(&dir, cfg()).unwrap(),
                    |wh| wh.query(sql).unwrap(),
                    BatchSize::PerIteration,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("eager_resident", format!("{k}of5")),
            &sql,
            |b, sql| b.iter(|| eager.query(sql).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selectivity);
criterion_main!(benches);
