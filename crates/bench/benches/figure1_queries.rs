//! E3 — The paper's Figure-1 queries: eager resident vs lazy cold vs lazy
//! warm.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lazyetl_bench::{scale_repo, ScaleName, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl_core::{Warehouse, WarehouseConfig};

fn cfg() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

fn bench_figure1(c: &mut Criterion) {
    let dir = scale_repo(ScaleName::Small);
    let mut group = c.benchmark_group("figure1");
    group.sample_size(10);
    for (name, sql) in [("q1", FIGURE1_Q1), ("q2", FIGURE1_Q2)] {
        // Eager: load once outside the measurement, query repeatedly.
        let eager = Warehouse::open_eager(&dir, cfg()).unwrap();
        group.bench_with_input(BenchmarkId::new("eager_resident", name), &sql, |b, sql| {
            b.iter(|| eager.query(sql).unwrap())
        });
        // Lazy cold: fresh warehouse per iteration (cache empty), metadata
        // load excluded via iter_batched setup.
        group.bench_with_input(BenchmarkId::new("lazy_cold", name), &sql, |b, sql| {
            b.iter_batched(
                || Warehouse::open_lazy(&dir, cfg()).unwrap(),
                |wh| wh.query(sql).unwrap(),
                BatchSize::PerIteration,
            )
        });
        // Lazy warm: one warehouse, cache populated by a warm-up query.
        let warm = Warehouse::open_lazy(&dir, cfg()).unwrap();
        warm.query(sql).unwrap();
        group.bench_with_input(BenchmarkId::new("lazy_warm", name), &sql, |b, sql| {
            b.iter(|| warm.query(sql).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
