//! E6 — Update handling: next-query cost after a repository change, lazy
//! refresh vs eager re-extraction.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use lazyetl_bench::{mutable_copy, scale_repo, ScaleName, METADATA_QUERY};
use lazyetl_core::{Warehouse, WarehouseConfig};
use lazyetl_repo::{updates, Repository};
use std::path::PathBuf;

fn cfg() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: true,
        ..Default::default()
    }
}

/// One benchmark iteration's state: a warehouse attached to a mutable repo
/// copy in which one file was just appended to.
struct Prepared {
    wh: Warehouse,
    dir: PathBuf,
}

fn prepare(src: &PathBuf, eager: bool, round: &mut u64) -> Prepared {
    *round += 1;
    let dir = mutable_copy(
        src,
        &format!("bench_{}_{round}", if eager { "e" } else { "l" }),
    );
    let wh = if eager {
        Warehouse::open_eager(&dir, cfg()).unwrap()
    } else {
        Warehouse::open_lazy(&dir, cfg()).unwrap()
    };
    wh.query(METADATA_QUERY).unwrap();
    let mut repo = Repository::open(&dir).unwrap();
    let uri = repo
        .files()
        .iter()
        .find(|f| f.uri.contains("BHZ"))
        .unwrap()
        .uri
        .clone();
    updates::append_records(&mut repo, &uri, 30, *round).unwrap();
    Prepared { wh, dir }
}

fn bench_updates(c: &mut Criterion) {
    let src = scale_repo(ScaleName::Tiny);
    let mut group = c.benchmark_group("updates");
    group.sample_size(10);
    let mut round = 0u64;
    group.bench_function(BenchmarkId::new("refresh_query", "lazy"), |b| {
        b.iter_batched(
            || prepare(&src, false, &mut round),
            |p| {
                let out = p.wh.query(METADATA_QUERY).unwrap();
                std::fs::remove_dir_all(&p.dir).ok();
                out
            },
            BatchSize::PerIteration,
        )
    });
    let mut round = 1_000_000u64;
    group.bench_function(BenchmarkId::new("refresh_query", "eager"), |b| {
        b.iter_batched(
            || prepare(&src, true, &mut round),
            |p| {
                let out = p.wh.query(METADATA_QUERY).unwrap();
                std::fs::remove_dir_all(&p.dir).ok();
                out
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
