//! Microbenchmarks of the Steim codecs and plain encodings — the cost
//! eager ETL pays per payload and lazy ETL defers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lazyetl_mseed::encoding::{decode, encode, DataEncoding, SamplesRef};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn waveform(n: usize) -> Vec<i32> {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut v = Vec::with_capacity(n);
    let mut noise = 0.0f64;
    for i in 0..n {
        noise = 0.92 * noise + rng.gen_range(-40.0..40.0);
        let event = if i > n / 2 {
            let t = (i - n / 2) as f64 / 40.0;
            2000.0 * (-t / 5.0).exp() * (8.0 * t).sin()
        } else {
            0.0
        };
        v.push((noise + event) as i32);
    }
    v
}

fn bench_codecs(c: &mut Criterion) {
    let samples = waveform(100_000);
    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    group.throughput(Throughput::Elements(samples.len() as u64));
    for enc in [
        DataEncoding::Steim1,
        DataEncoding::Steim2,
        DataEncoding::Int32,
    ] {
        group.bench_with_input(BenchmarkId::new("encode", enc.name()), &enc, |b, &enc| {
            b.iter(|| encode(enc, &SamplesRef::Ints(black_box(&samples)), 0, 1 << 22).unwrap())
        });
        let encoded = encode(enc, &SamplesRef::Ints(&samples), 0, 1 << 22).unwrap();
        assert_eq!(encoded.samples_encoded, samples.len());
        group.bench_with_input(BenchmarkId::new("decode", enc.name()), &enc, |b, &enc| {
            b.iter(|| decode(enc, black_box(&encoded.bytes), samples.len()).unwrap())
        });
    }
    group.finish();

    // Compression ratios as a side effect worth printing once.
    for enc in [DataEncoding::Steim1, DataEncoding::Steim2] {
        let encoded = encode(enc, &SamplesRef::Ints(&samples), 0, 1 << 22).unwrap();
        eprintln!(
            "[info] {} compresses {} samples to {} bytes ({:.2} bits/sample)",
            enc.name(),
            samples.len(),
            encoded.bytes.len(),
            encoded.bytes.len() as f64 * 8.0 / samples.len() as f64
        );
    }
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
