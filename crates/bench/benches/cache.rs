//! E7 — Recycling-cache behaviour: warm-query latency as the byte budget
//! shrinks below the working set, plus raw cache op throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazyetl_bench::{scale_repo, selectivity_query, ScaleName};
use lazyetl_core::{RecyclingCache, Warehouse, WarehouseConfig};
use lazyetl_mseed::Timestamp;
use lazyetl_store::{Column, ColumnData, DataType, Field, Schema, Table};
use std::sync::Arc;

fn bench_cache_budgets(c: &mut Criterion) {
    let dir = scale_repo(ScaleName::Small);
    let sql = selectivity_query(3);
    // Size the working set once.
    let probe = Warehouse::open_lazy(
        &dir,
        WarehouseConfig {
            auto_refresh: false,
            ..Default::default()
        },
    )
    .unwrap();
    probe.query(&sql).unwrap();
    let working_set = probe.cache_snapshot().used_bytes;
    drop(probe);

    let mut group = c.benchmark_group("cache_budget");
    group.sample_size(10);
    for (label, budget) in [
        ("fits", working_set * 2),
        ("half", working_set / 2),
        ("tenth", working_set / 10),
    ] {
        let wh = Warehouse::open_lazy(
            &dir,
            WarehouseConfig {
                cache_budget_bytes: budget,
                auto_refresh: false,
                ..Default::default()
            },
        )
        .unwrap();
        wh.query(&sql).unwrap(); // populate
        group.bench_with_input(BenchmarkId::new("warm_query", label), &sql, |b, sql| {
            b.iter(|| wh.query(sql).unwrap())
        });
    }
    group.finish();
}

fn bench_cache_ops(c: &mut Criterion) {
    // Raw insert/get/evict throughput on synthetic entries.
    let schema = Schema::new(vec![Field::new("v", DataType::Float64)]).unwrap();
    let entry_rows = 1000usize;
    let table = Arc::new(
        Table::new(
            schema,
            vec![Column::new(ColumnData::Float64(vec![1.0; entry_rows]))],
        )
        .unwrap(),
    );
    let entry_bytes = table.byte_size();
    let mt = Timestamp(1);
    let mut group = c.benchmark_group("cache_ops");
    group.sample_size(20);
    group.bench_function("insert_evict_cycle", |b| {
        // Budget of 100 entries: every insert past 100 evicts one.
        let cache = RecyclingCache::new(entry_bytes * 100);
        let mut i = 0i64;
        b.iter(|| {
            cache.insert((i, 0), table.clone(), mt);
            i += 1;
        })
    });
    group.bench_function("hit", |b| {
        let cache = RecyclingCache::new(entry_bytes * 100);
        for i in 0..100i64 {
            cache.insert((i, 0), table.clone(), mt);
        }
        let mut i = 0i64;
        b.iter(|| {
            let r = cache.get((i % 100, 0), mt);
            i += 1;
            r
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache_budgets, bench_cache_ops);
criterion_main!(benches);
