//! E9 — The demo's analysis workload: STA/LTA event hunting end to end,
//! plus the raw detector throughput.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use lazyetl_bench::{scale_repo, ScaleName};
use lazyetl_core::{hunt_events, sta_lta, StaLtaConfig, Warehouse, WarehouseConfig};
use std::hint::black_box;

fn cfg() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

fn bench_hunt(c: &mut Criterion) {
    let dir = scale_repo(ScaleName::Tiny);
    let detector = StaLtaConfig {
        threshold: 3.5,
        ..Default::default()
    };
    let mut group = c.benchmark_group("sta_lta_hunt");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("end_to_end", "lazy_cold"), |b| {
        b.iter_batched(
            || Warehouse::open_lazy(&dir, cfg()).unwrap(),
            |wh| {
                hunt_events(
                    &wh,
                    "ISK",
                    "BHE",
                    "2010-01-12T22:00:00",
                    "2010-01-12T23:00:00",
                    &detector,
                )
                .unwrap()
            },
            BatchSize::PerIteration,
        )
    });
    let warm = Warehouse::open_lazy(&dir, cfg()).unwrap();
    hunt_events(
        &warm,
        "ISK",
        "BHE",
        "2010-01-12T22:00:00",
        "2010-01-12T23:00:00",
        &detector,
    )
    .unwrap();
    group.bench_function(BenchmarkId::new("end_to_end", "lazy_warm"), |b| {
        b.iter(|| {
            hunt_events(
                &warm,
                "ISK",
                "BHE",
                "2010-01-12T22:00:00",
                "2010-01-12T23:00:00",
                &detector,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_detector(c: &mut Criterion) {
    // Pure detector throughput on an in-memory signal.
    let n = 1_000_000usize;
    let rate = 40.0;
    let samples: Vec<(i64, f64)> = (0..n)
        .map(|i| {
            let noise = ((i * 2_654_435_761) % 1000) as f64 / 50.0 - 10.0;
            (i as i64 * 25_000, noise)
        })
        .collect();
    let cfg = StaLtaConfig::default();
    let mut group = c.benchmark_group("sta_lta_detector");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("1M_samples", |b| {
        b.iter(|| sta_lta(black_box(&samples), rate, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_hunt, bench_detector);
criterion_main!(benches);
