//! E5 — Time from source-data availability to first query answer:
//! (load + first query) for eager vs lazy. The paper's "significant
//! reduction of the overall time from source data availability to query
//! answer".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazyetl_bench::{scale_repo, ScaleName, FIGURE1_Q1, METADATA_QUERY};
use lazyetl_core::{Warehouse, WarehouseConfig};

fn cfg() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

fn bench_time_to_insight(c: &mut Criterion) {
    let dir = scale_repo(ScaleName::Small);
    let mut group = c.benchmark_group("time_to_insight");
    group.sample_size(10);
    for (name, sql) in [("metadata", METADATA_QUERY), ("figure1_q1", FIGURE1_Q1)] {
        group.bench_with_input(BenchmarkId::new("lazy", name), &sql, |b, sql| {
            b.iter(|| {
                let wh = Warehouse::open_lazy(&dir, cfg()).unwrap();
                wh.query(sql).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("eager", name), &sql, |b, sql| {
            b.iter(|| {
                let wh = Warehouse::open_eager(&dir, cfg()).unwrap();
                wh.query(sql).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_time_to_insight);
criterion_main!(benches);
