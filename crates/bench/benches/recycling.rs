//! E11: the two recycler levels of §3.3 compared on a warm repeated query.
//!
//! * `cold`           — no caching at all: every run re-extracts;
//! * `record-cache`   — the paper's recycler: extracted record payloads
//!   are reused, but transformation + query execution re-run;
//! * `result-recycler` — the "end result of a view" level: the final
//!   table is served directly from the plan-fingerprint cache.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyetl_bench::{scale_repo, ScaleName, FIGURE1_Q2};
use lazyetl_core::warehouse::{Warehouse, WarehouseConfig};
use std::hint::black_box;

fn bench_recycling(c: &mut Criterion) {
    let repo = scale_repo(ScaleName::Small);
    let mut group = c.benchmark_group("recycling_q2");
    group.sample_size(10);

    let variants: [(&str, WarehouseConfig); 3] = [
        (
            "cold",
            WarehouseConfig {
                auto_refresh: false,
                use_cache: false,
                ..Default::default()
            },
        ),
        (
            "record-cache",
            WarehouseConfig {
                auto_refresh: false,
                ..Default::default()
            },
        ),
        (
            "result-recycler",
            WarehouseConfig {
                auto_refresh: false,
                recycle_query_results: true,
                ..Default::default()
            },
        ),
    ];
    for (label, cfg) in variants {
        let wh = Warehouse::open_lazy(&repo, cfg).expect("attach");
        // Warm both cache levels before measuring.
        wh.query(FIGURE1_Q2).expect("warmup");
        group.bench_function(label, |b| {
            b.iter(|| {
                let out = wh.query(black_box(FIGURE1_Q2)).expect("query");
                black_box(out.report.rows)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recycling);
criterion_main!(benches);
