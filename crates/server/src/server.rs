//! The query server: an event-driven connection layer multiplexing all
//! clients onto one shared [`Warehouse`] behind a bounded worker pool.
//!
//! # Architecture
//!
//! ```text
//!                        poller thread (owns listener + every connection)
//!   nonblocking accept ──▶ per-conn read buffer ──incremental parse──▶ frames
//!        │                                                              │
//!        │                 admission control (queue depth + est. cost)  │
//!        │                              │ admitted                      ▼ Busy/Error
//!        │                              ▼                         per-conn outbound
//!        │                  bounded queue (≤ queue_depth)         queue (credit-gated
//!        │                              │ pop                     batch frames)
//!        │                              ▼                               ▲
//!        │                   worker pool (N threads)                    │
//!        │                      Warehouse::query (&self)                │
//!        │                              │                               │
//!        └───────◀─ completions ◀───────┘───────────────────────────────┘
//! ```
//!
//! One **poller thread** owns the nonblocking listener and every live
//! connection: it accepts, reads whatever bytes are ready into
//! per-connection buffers, parses frames incrementally
//! ([`crate::protocol::decode_frame`]), runs admission control, and
//! writes queued outbound bytes back until the socket would block. No
//! thread ever blocks on a socket, so connection count is bounded by file
//! descriptors and memory — not by threads. The bounded resource remains
//! the **worker pool**, the only thing that touches the warehouse;
//! workers post finished queries to a completion list the poller drains.
//!
//! # Streamed cursors and backpressure (protocol v2)
//!
//! A v2 connection's query result never materializes on the wire as one
//! frame. The poller holds the result table behind an `Arc` and slices
//! `batch_rows`-row [`Frame::ResultBatch`]es from it on demand — but only
//! while the cursor has **credit** (each batch spends one; the client
//! replenishes with [`Frame::Credit`] as it consumes) and only while the
//! connection's outbound queue is under `max_outbuf_bytes`. A slow or
//! stalled reader therefore *suspends its cursor* — server memory for the
//! encoded stream is `O(connections × batch)`, never
//! `O(connections × result)`. (The result table itself is a single
//! shared `Arc`, usually aliasing the warehouse's result-recycler entry.)
//! [`Frame::Cancel`] frees a cursor mid-stream; if the query is still
//! queued, a cancel flag makes the worker skip it entirely.
//!
//! v1 clients (no [`Frame::Hello`] handshake) are still served
//! whole-frame results, bit-compatible with the previous protocol.
//!
//! # Admission control
//!
//! Admission happens at frame-handling time on the poller: when the
//! queue already holds `queue_depth` jobs the client gets an immediate
//! [`Frame::Busy`]. With `cost_budget_rows` configured, admission also
//! consults the planner: the query is costed with
//! [`Warehouse::estimate_query_rows`] (statistics-backed, no execution),
//! and a query whose estimate would push the *currently admitted* total
//! over the budget is rejected with a `Busy` frame carrying the estimate
//! and the budget — clients back off proportionally instead of blind. A
//! query too big for the budget on its own still runs when the server is
//! otherwise idle (admission never starves a query forever), and queries
//! the planner cannot estimate admit on queue depth alone.
//!
//! # Graceful shutdown
//!
//! [`Server::stop`] (or a [`Frame::Shutdown`] request, or SIGTERM in the
//! `lazyetl-serve` binary) runs the drain sequence:
//!
//! 1. the shutdown flag flips: the poller drops the listener (new
//!    connects are refused), new queries get a `server.shutdown` error;
//! 2. workers drain every admitted job and post the completions, then
//!    exit;
//! 3. the poller keeps serving until open cursors finish streaming and
//!    outbound buffers flush (bounded by a drain deadline), then closes
//!    every connection;
//! 4. once quiesced, the warehouse is persisted to `save_dir` (when
//!    configured) via [`Warehouse::save_to`] — the hot record cache goes
//!    into the snapshot, so the next boot warm-restarts.

use crate::protocol::{decode_frame, frame_bytes, Frame, WireMetrics};
use lazyetl_core::persistence::SaveReport;
use lazyetl_core::{EtlError, Warehouse};
use lazyetl_store::Table;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries against the shared warehouse.
    pub workers: usize,
    /// Jobs the admission queue holds before new queries get
    /// [`Frame::Busy`]. In-flight queries (already popped by a worker) do
    /// not count; `0` rejects every query — the chaos-testing extreme.
    pub queue_depth: usize,
    /// Cap on request payloads; larger frames are rejected with a
    /// `proto.oversize` error and the connection closes.
    pub max_request_bytes: u32,
    /// Rows per [`Frame::ResultBatch`] on v2 connections. The default
    /// matches the executor's morsel size, so streamed batch boundaries
    /// line up with parallel-execution partitions.
    pub batch_rows: u32,
    /// Batches a fresh cursor may stream before the client must grant
    /// [`Frame::Credit`].
    pub initial_credit: u32,
    /// Ceiling on one connection's encoded-but-unsent outbound bytes;
    /// cursor pumping pauses above it (v1 whole-frame replies are exempt
    /// — that is precisely the O(result) behavior v2 exists to replace).
    pub max_outbuf_bytes: usize,
    /// Cost-based admission budget in estimated result rows; `None`
    /// admits on queue depth alone.
    pub cost_budget_rows: Option<u64>,
    /// Snapshot directory for the graceful-shutdown save; `None` skips
    /// the save.
    pub save_dir: Option<PathBuf>,
    /// Poll the repository for changes this often ([`Warehouse::refresh`]
    /// on the serving side), waking live-tail subscriptions when the
    /// warehouse generation moves. `None` disables server-driven refresh
    /// — subscriptions then only advance when a query triggers
    /// auto-refresh.
    pub refresh_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            max_request_bytes: crate::protocol::DEFAULT_MAX_REQUEST,
            batch_rows: 4096,
            initial_credit: 4,
            max_outbuf_bytes: 256 * 1024,
            cost_budget_rows: None,
            save_dir: None,
            refresh_interval: None,
        }
    }
}

/// Cumulative serving counters (monotone except the `cursors_open`
/// gauge; snapshot via [`Server::stats`] or the wire `Stats` frame).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
    busy_rejections: AtomicU64,
    cost_rejections: AtomicU64,
    proto_errors: AtomicU64,
    dropped_replies: AtomicU64,
    queue_wait_us: AtomicU64,
    exec_us: AtomicU64,
    records_extracted: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cursors_opened: AtomicU64,
    cursors_open: AtomicU64,
    batches_streamed: AtomicU64,
    credit_stalls: AtomicU64,
    outbuf_hwm_bytes: AtomicU64,
    subscriptions_opened: AtomicU64,
    sub_updates_pushed: AtomicU64,
    refreshes_applied: AtomicU64,
}

/// Point-in-time copy of the serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Queries answered with a result frame (or a streamed cursor).
    pub queries_ok: u64,
    /// Queries answered with an error frame.
    pub queries_err: u64,
    /// Queries rejected with a busy frame (queue depth + cost together).
    pub busy_rejections: u64,
    /// Busy rejections due to the estimated-cost budget specifically.
    pub cost_rejections: u64,
    /// Connections dropped for protocol violations.
    pub proto_errors: u64,
    /// Replies computed but undeliverable (client disconnected mid-query).
    pub dropped_replies: u64,
    /// Total admission-queue wait across all queries.
    pub queue_wait_us: u64,
    /// Total execution time across all queries.
    pub exec_us: u64,
    /// Records decoded across all queries.
    pub records_extracted: u64,
    /// Record-cache hits across all queries.
    pub cache_hits: u64,
    /// Record-cache misses across all queries.
    pub cache_misses: u64,
    /// Streamed cursors opened (v2 queries that produced a result).
    pub cursors_opened: u64,
    /// Cursors currently live (gauge; 0 on a quiesced server).
    pub cursors_open: u64,
    /// `ResultBatch` frames streamed.
    pub batches_streamed: u64,
    /// Times a cursor ran out of credit with rows still pending — each
    /// is a slow reader suspended instead of buffered.
    pub credit_stalls: u64,
    /// High-water mark of any single connection's encoded-but-unsent
    /// outbound bytes — the memory-ceiling observable: with v2 streaming
    /// it stays `O(batch)` no matter how large the result.
    pub outbuf_hwm_bytes: u64,
    /// Live-tail subscriptions opened (v2.1 `Subscribe` frames that
    /// produced a result).
    pub subscriptions_opened: u64,
    /// `SubUpdate` frames pushed — one per result revision delivered to
    /// a subscriber (the initial snapshot included).
    pub sub_updates_pushed: u64,
    /// Server-driven [`Warehouse::refresh`] rounds that folded at least
    /// one repository change in.
    pub refreshes_applied: u64,
}

impl ServerStats {
    /// Aggregate cache hit rate over every served query.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Ceiling on the client-supplied per-query think time. `delay_ms` is a
/// load-generation knob, not a scheduling primitive: uncapped, one cheap
/// frame could pin a worker (and therefore graceful drain) for up to
/// `u32::MAX` milliseconds.
const MAX_QUERY_DELAY_MS: u32 = 10_000;

/// How long the drain sequence waits for open cursors to finish
/// streaming and outbound buffers to flush before closing connections
/// anyway (a reader that stays stalled must not pin shutdown forever).
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Poller sleep when a full tick made no progress: short enough that
/// queue-admission and first-byte latency stay sub-millisecond, long
/// enough that an idle server burns no CPU.
const IDLE_TICK: Duration = Duration::from_micros(500);

/// One admitted query: what the worker needs, plus where the completion
/// goes. `token` names the connection (tokens are never reused, so a
/// completion can never be delivered to a successor connection).
struct Job {
    sql: String,
    delay_ms: u32,
    enqueued: Instant,
    token: u64,
    /// `Some` = v2 streamed cursor; `None` = v1 whole-frame reply.
    cursor: Option<u32>,
    /// This job (re-)runs a v2.1 live-tail subscription: its completion
    /// opens (or refreshes) a long-lived cursor instead of a one-shot one.
    subscribe: bool,
    /// Set by `Cancel` (or connection death on v2): the worker skips the
    /// query entirely if it has not started yet.
    cancel: Arc<AtomicBool>,
    /// Estimated rows charged against the admission cost budget;
    /// released when the completion posts.
    cost: u64,
}

/// What a worker produced for one job.
enum Done {
    Ok {
        metrics: WireMetrics,
        table: Arc<Table>,
        /// Warehouse generation observed **before** execution — the
        /// conservative watermark for subscription wakeups (a refresh
        /// racing the query re-triggers a push instead of being missed).
        generation: u64,
    },
    Err {
        code: String,
        message: String,
    },
    /// The job was cancelled before execution started.
    Skipped,
}

struct Completion {
    token: u64,
    cursor: Option<u32>,
    /// The SQL of a subscription job (`None` for one-shot queries) — kept
    /// so the poller can re-run the subscription on later refreshes.
    subscribe_sql: Option<String>,
    done: Done,
}

struct Shared {
    wh: Arc<Warehouse>,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Jobs popped by a worker but not yet posted as completions
    /// (incremented under the queue lock, so `queue empty ∧ running == 0`
    /// is a consistent quiescence check).
    running: AtomicU64,
    /// Estimated rows of every currently admitted (queued or running)
    /// costed query.
    admitted_cost: AtomicU64,
    shutdown: AtomicBool,
    counters: Counters,
}

/// What the drain sequence produced.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final serving counters.
    pub stats: ServerStats,
    /// The graceful snapshot, when `save_dir` was configured.
    pub save: Option<SaveReport>,
}

/// A running server. Dropping without [`Server::stop`] aborts ungracefully
/// (threads are detached); call `stop` for the drain + snapshot sequence.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    poller: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `wh` with `cfg`. Returns once the listener is live;
    /// [`Server::addr`] reports the bound address.
    pub fn start(
        wh: Arc<Warehouse>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            wh,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            running: AtomicU64::new(0),
            admitted_cost: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lazyetl-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let poller = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lazyetl-poller".into())
                .spawn(move || poller_loop(listener, &shared))
                .expect("spawn poller")
        };
        Ok(Server {
            shared,
            addr,
            poller: Some(poller),
            workers,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a shutdown was requested (by [`Server::stop`], a wire
    /// `Shutdown` frame, or the serve binary's signal handler).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Request shutdown without waiting (idempotent).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.job_ready.notify_all();
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").len()
    }

    /// Graceful shutdown: stop accepting, drain admitted queries, finish
    /// streaming open cursors (bounded by the drain deadline), join every
    /// thread, then persist the warehouse to `save_dir` (when
    /// configured). Returns the final counters and the save report.
    pub fn stop(mut self) -> Result<ShutdownReport, EtlError> {
        self.request_shutdown();
        if let Some(h) = self.poller.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let stats = self.shared.snapshot();
        let save = match &self.shared.cfg.save_dir {
            Some(dir) => Some(self.shared.wh.save_to(dir)?),
            None => None,
        };
        Ok(ShutdownReport { stats, save })
    }
}

impl Shared {
    fn snapshot(&self) -> ServerStats {
        let c = &self.counters;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServerStats {
            connections: g(&c.connections),
            queries_ok: g(&c.queries_ok),
            queries_err: g(&c.queries_err),
            busy_rejections: g(&c.busy_rejections),
            cost_rejections: g(&c.cost_rejections),
            proto_errors: g(&c.proto_errors),
            dropped_replies: g(&c.dropped_replies),
            queue_wait_us: g(&c.queue_wait_us),
            exec_us: g(&c.exec_us),
            records_extracted: g(&c.records_extracted),
            cache_hits: g(&c.cache_hits),
            cache_misses: g(&c.cache_misses),
            cursors_opened: g(&c.cursors_opened),
            cursors_open: g(&c.cursors_open),
            batches_streamed: g(&c.batches_streamed),
            credit_stalls: g(&c.credit_stalls),
            outbuf_hwm_bytes: g(&c.outbuf_hwm_bytes),
            subscriptions_opened: g(&c.subscriptions_opened),
            sub_updates_pushed: g(&c.sub_updates_pushed),
            refreshes_applied: g(&c.refreshes_applied),
        }
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Render server + warehouse stats as the wire `key=value` text.
    fn stats_text(&self) -> String {
        let s = self.snapshot();
        let w = self.wh.stats_snapshot();
        let mut out = String::new();
        for (k, v) in [
            ("server.connections", s.connections),
            ("server.queries_ok", s.queries_ok),
            ("server.queries_err", s.queries_err),
            ("server.busy_rejections", s.busy_rejections),
            ("server.cost_rejections", s.cost_rejections),
            ("server.proto_errors", s.proto_errors),
            ("server.dropped_replies", s.dropped_replies),
            ("server.queue_wait_us", s.queue_wait_us),
            ("server.exec_us", s.exec_us),
            ("server.records_extracted", s.records_extracted),
            ("server.cache_hits", s.cache_hits),
            ("server.cache_misses", s.cache_misses),
            ("server.cursors_opened", s.cursors_opened),
            ("server.cursors_open", s.cursors_open),
            ("server.batches_streamed", s.batches_streamed),
            ("server.credit_stalls", s.credit_stalls),
            ("server.outbuf_hwm_bytes", s.outbuf_hwm_bytes),
            ("server.subscriptions_opened", s.subscriptions_opened),
            ("server.sub_updates_pushed", s.sub_updates_pushed),
            ("server.refreshes_applied", s.refreshes_applied),
            ("server.workers", self.cfg.workers as u64),
            ("server.queue_depth", self.cfg.queue_depth as u64),
            ("server.batch_rows", self.cfg.batch_rows as u64),
            ("server.initial_credit", self.cfg.initial_credit as u64),
            (
                "server.cost_budget_rows",
                self.cfg.cost_budget_rows.unwrap_or(0),
            ),
            ("warehouse.files", w.files as u64),
            ("warehouse.records", w.records as u64),
            ("warehouse.resident_bytes", w.resident_bytes as u64),
            ("warehouse.generation", w.generation),
            ("warehouse.queries", w.queries),
            ("warehouse.cache_entries", w.cache_entries as u64),
            ("warehouse.cache_used_bytes", w.cache_used_bytes as u64),
            ("warehouse.cache_hits", w.cache.hits),
            ("warehouse.cache_misses", w.cache.misses),
            ("warehouse.cache_stale_drops", w.cache.stale_drops),
            ("warehouse.cache_evictions", w.cache.evictions),
            ("warehouse.segments_loaded", w.cache.segments_loaded),
            ("warehouse.pending_segments", w.pending_segments as u64),
            ("warehouse.recycler_entries", w.recycler_entries as u64),
            ("warehouse.recycler_hits", w.recycler.hits),
            ("warehouse.recycler_misses", w.recycler.misses),
            (
                "warehouse.recycler_results_patched",
                w.recycler.results_patched,
            ),
            (
                "warehouse.recycler_patch_rows_applied",
                w.recycler.patch_rows_applied,
            ),
            (
                "warehouse.recycler_recompute_fallbacks",
                w.recycler.recompute_fallbacks,
            ),
            (
                "warehouse.recycler_bytes_saved_estimate",
                w.recycler.bytes_saved_estimate,
            ),
            ("warehouse.recycler_results_kept", w.recycler.results_kept),
            ("warehouse.rows_scanned", w.exec.rows_scanned),
            ("warehouse.rows_pruned", w.exec.rows_pruned),
            ("warehouse.vectorized_batches", w.exec.vectorized_batches),
            ("warehouse.scalar_fallbacks", w.exec.scalar_fallbacks),
            ("warehouse.morsels_dispatched", w.exec.morsels_dispatched),
            ("warehouse.parallel_pipelines", w.exec.parallel_pipelines),
            ("warehouse.merge_ns", w.exec.merge_ns),
            ("warehouse.index_seeks", w.exec.index_seeks),
            ("warehouse.index_rows_examined", w.exec.index_rows_examined),
            ("warehouse.plans_estimated", w.exec.plans_estimated),
            ("warehouse.estimated_rows", w.exec.estimated_rows),
            ("warehouse.actual_rows", w.exec.actual_rows),
            ("warehouse.estimate_abs_error", w.exec.estimate_abs_error),
        ] {
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "server.cache_hit_rate={:.6}\n",
            s.cache_hit_rate()
        ));
        out.push_str(&format!(
            "warehouse.mode={}\n",
            match w.mode {
                lazyetl_core::Mode::Lazy => "lazy",
                lazyetl_core::Mode::Eager => "eager",
            }
        ));
        // Per-mount extraction accounting (one block per lazy source).
        for src in &w.sources {
            out.push_str(&format!("source.{}.kind={}\n", src.name, src.kind));
            for (k, v) in [
                ("files", src.files as u64),
                ("files_extracted", src.files_extracted),
                ("records_extracted", src.records_extracted),
                ("samples_extracted", src.samples_extracted),
                ("bytes_read", src.bytes_read),
                ("simulated_io_us", src.simulated_io.as_micros() as u64),
                ("fetch_requests", src.fetch_requests),
                ("fetched_bytes", src.fetched_bytes),
            ] {
                out.push_str(&format!("source.{}.{k}={v}\n", src.name));
            }
        }
        out
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    // Counted under the queue lock so the poller's
                    // quiescence check (`queue empty ∧ running == 0`)
                    // never sees the gap between pop and increment.
                    shared.running.fetch_add(1, Ordering::SeqCst);
                    break job;
                }
                // Drain semantics: exit only once the queue is empty AND
                // shutdown was requested — admitted queries always finish.
                if shared.is_shutdown() {
                    return;
                }
                let (guard, _) = shared
                    .job_ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("queue poisoned");
                q = guard;
            }
        };
        let done = run_job(shared, &job);
        shared
            .completions
            .lock()
            .expect("completions poisoned")
            .push(Completion {
                token: job.token,
                cursor: job.cursor,
                subscribe_sql: job.subscribe.then(|| job.sql.clone()),
                done,
            });
        if job.cost > 0 {
            shared.admitted_cost.fetch_sub(job.cost, Ordering::SeqCst);
        }
        // Order matters: the completion is visible before `running`
        // drops, so quiescence implies every completion was posted.
        shared.running.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_job(shared: &Shared, job: &Job) -> Done {
    if job.cancel.load(Ordering::Acquire) {
        return Done::Skipped;
    }
    let queue_wait = job.enqueued.elapsed();
    if job.delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(
            job.delay_ms.min(MAX_QUERY_DELAY_MS) as u64
        ));
        // A cancel that lands during the think time still spares the
        // warehouse the execution.
        if job.cancel.load(Ordering::Acquire) {
            return Done::Skipped;
        }
    }
    let t0 = Instant::now();
    let c = &shared.counters;
    // Read the generation before executing: a refresh landing mid-query
    // makes the watermark stale, which re-pushes a subscription once too
    // often — never too rarely.
    let generation = shared.wh.generation();
    match shared.wh.query(&job.sql) {
        Ok(out) => {
            let exec = t0.elapsed();
            let metrics = WireMetrics {
                queue_wait_us: queue_wait.as_micros() as u64,
                exec_us: exec.as_micros() as u64,
                rows: out.table.num_rows() as u64,
                records_extracted: out.report.records_extracted as u64,
                cache_hits: out.report.cache_hits as u64,
                cache_misses: out.report.cache_misses as u64,
                result_recycled: out.report.result_recycled,
            };
            c.queries_ok.fetch_add(1, Ordering::Relaxed);
            c.queue_wait_us
                .fetch_add(metrics.queue_wait_us, Ordering::Relaxed);
            c.exec_us.fetch_add(metrics.exec_us, Ordering::Relaxed);
            c.records_extracted
                .fetch_add(metrics.records_extracted, Ordering::Relaxed);
            c.cache_hits
                .fetch_add(metrics.cache_hits, Ordering::Relaxed);
            c.cache_misses
                .fetch_add(metrics.cache_misses, Ordering::Relaxed);
            Done::Ok {
                metrics,
                table: out.table,
                generation,
            }
        }
        Err(e) => {
            c.queries_err.fetch_add(1, Ordering::Relaxed);
            Done::Err {
                code: e.code().to_string(),
                message: e.to_string(),
            }
        }
    }
}

/// A live streamed cursor: the materialized result (one shared `Arc`)
/// plus the read position and remaining credit.
struct Cursor {
    table: Arc<Table>,
    next_row: usize,
    credit: u32,
    seq: u32,
    /// True while suspended on zero credit (so one stall counts once).
    stalled: bool,
    /// `Some` = long-lived v2.1 subscription; the cursor survives the end
    /// of each result revision and re-runs when the generation moves.
    sub: Option<SubState>,
}

/// The long-lived half of a subscription cursor.
struct SubState {
    /// The SQL re-run on every refresh (a recycler hit — O(delta) when
    /// the resident result was patched incrementally).
    sql: String,
    /// Next revision sequence number for the `SubUpdate` boundary frame.
    update: u32,
    /// Warehouse generation the current revision reflects.
    generation: u64,
    /// The current revision streamed fully; waiting for the generation to
    /// move before re-running.
    drained: bool,
}

/// A v2 query admitted but not yet completed by a worker.
struct Inflight {
    cancel: Arc<AtomicBool>,
    /// The client cancelled while the query was queued/running; the
    /// completion turns into a cancelled `ResultEnd`.
    cancelled: bool,
    /// The cancel was already answered with a `ResultEnd` (an open
    /// subscription cursor cancelled while its refresh re-run was in
    /// flight); the completion is discarded silently.
    cancel_acked: bool,
}

/// Per-connection outbound queue: encoded frames waiting for the socket
/// to accept them. `bytes` is the backpressure observable.
#[derive(Default)]
struct OutQueue {
    frames: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    front_off: usize,
    /// Total unsent bytes across all queued frames.
    bytes: usize,
}

/// Everything the poller knows about one connection. Owned exclusively
/// by the poller thread — no locks anywhere in the per-connection state.
struct Conn {
    stream: TcpStream,
    /// Negotiated protocol version; 1 until a `Hello` upgrades it.
    version: u8,
    rbuf: Vec<u8>,
    out: OutQueue,
    cursors: HashMap<u32, Cursor>,
    inflight: HashMap<u32, Inflight>,
    /// Flush the outbound queue, then close (protocol error or
    /// shutdown-ack); no further reads.
    closing: bool,
}

enum ReadOutcome {
    /// Bytes arrived (or none were ready); connection healthy.
    Open { progress: bool },
    /// EOF or transport error — parse what is buffered, then drop.
    Closed { progress: bool },
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            version: 1,
            rbuf: Vec::new(),
            out: OutQueue::default(),
            cursors: HashMap::new(),
            inflight: HashMap::new(),
            closing: false,
        }
    }

    /// Queue one frame for writing. Encoding failures (pathological —
    /// a table that cannot serialize) close the connection.
    fn push(&mut self, frame: &Frame, counters: &Counters) {
        match frame_bytes(frame) {
            Ok(bytes) => {
                self.out.bytes += bytes.len();
                self.out.frames.push_back(bytes);
                counters
                    .outbuf_hwm_bytes
                    .fetch_max(self.out.bytes as u64, Ordering::Relaxed);
            }
            Err(_) => self.closing = true,
        }
    }

    /// Drain whatever the socket has ready into the read buffer.
    fn read_ready(&mut self) -> ReadOutcome {
        let mut chunk = [0u8; 16 * 1024];
        let mut progress = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Closed { progress },
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadOutcome::Closed { progress },
            }
        }
        ReadOutcome::Open { progress }
    }

    /// Write queued outbound bytes until the socket would block.
    /// Returns `(progress, dead)`.
    fn write_ready(&mut self) -> (bool, bool) {
        let mut progress = false;
        while let Some(front) = self.out.frames.front() {
            match self.stream.write(&front[self.out.front_off..]) {
                Ok(0) => return (progress, true),
                Ok(n) => {
                    progress = true;
                    self.out.front_off += n;
                    self.out.bytes -= n;
                    if self.out.front_off == front.len() {
                        self.out.frames.pop_front();
                        self.out.front_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return (progress, true),
            }
        }
        (progress, false)
    }
}

fn poller_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut drain_deadline: Option<Instant> = None;
    let mut last_refresh = Instant::now();
    loop {
        let mut progress = false;
        let draining = shared.is_shutdown();
        if draining {
            // Refuse new connects the moment drain starts: dropping the
            // listener resets anything still in the accept backlog.
            if listener.take().is_some() {
                progress = true;
            }
            if drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + DRAIN_DEADLINE);
            }
            // Subscriptions never exhaust on their own; drain ends them
            // with a cancelled ResultEnd so the quiescence check can pass.
            for conn in conns.values_mut() {
                let subs: Vec<u32> = conn
                    .cursors
                    .iter()
                    .filter(|(_, c)| c.sub.is_some())
                    .map(|(&id, _)| id)
                    .collect();
                for id in subs {
                    let cur = conn.cursors.remove(&id).expect("cursor vanished");
                    shared.counters.cursors_open.fetch_sub(1, Ordering::Relaxed);
                    conn.push(
                        &Frame::ResultEnd {
                            cursor: id,
                            batches: cur.seq,
                            rows: cur.next_row as u64,
                            cancelled: true,
                        },
                        &shared.counters,
                    );
                    // A refresh re-run still in flight must not reopen
                    // the cursor when its completion posts.
                    if let Some(inflight) = conn.inflight.get_mut(&id) {
                        inflight.cancel.store(true, Ordering::Release);
                        inflight.cancelled = true;
                        inflight.cancel_acked = true;
                    }
                    progress = true;
                }
            }
        }

        // 1. Accept everything ready.
        if let Some(l) = &listener {
            loop {
                match l.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                        conns.insert(next_token, Conn::new(stream));
                        next_token += 1;
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // 2. Read + parse + handle, per connection.
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            if conn.closing {
                continue;
            }
            let (read_progress, eof) = match conn.read_ready() {
                ReadOutcome::Open { progress } => (progress, false),
                ReadOutcome::Closed { progress } => (progress, true),
            };
            progress |= read_progress;
            // Parse every complete frame — including frames that raced
            // ahead of an EOF (a client may legally send a query and
            // close its write side in one burst).
            loop {
                match decode_frame(&conn.rbuf, shared.cfg.max_request_bytes) {
                    Ok(Some((frame, used))) => {
                        conn.rbuf.drain(..used);
                        progress = true;
                        handle_frame(shared, token, conn, frame, draining);
                        if conn.closing {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Protocol violation: answer with the code, then
                        // close — the stream cannot be resynchronized.
                        shared.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                        conn.push(
                            &Frame::Error {
                                code: e.code().to_string(),
                                message: e.to_string(),
                            },
                            &shared.counters,
                        );
                        conn.closing = true;
                        break;
                    }
                }
            }
            if eof {
                dead.push(token);
            }
        }

        // 3. Deliver worker completions.
        let finished: Vec<Completion> = {
            let mut c = shared.completions.lock().expect("completions poisoned");
            std::mem::take(&mut *c)
        };
        for comp in finished {
            progress = true;
            match conns.get_mut(&comp.token) {
                Some(conn) => deliver_completion(shared, conn, comp),
                None => {
                    // The connection vanished while its query ran. The
                    // computed-but-undeliverable answer is worth counting
                    // (a skipped job produced nothing to drop).
                    if !matches!(comp.done, Done::Skipped) {
                        shared
                            .counters
                            .dropped_replies
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        // 3b. Server-driven refresh + subscription wakeups. The refresh
        // runs inline on the poller (it is the only writer the serving
        // side has); subscriptions whose revision is behind the new
        // generation re-enqueue their SQL — a recycler hit whose resident
        // result was patched incrementally, i.e. O(delta) per subscriber.
        if !draining {
            if let Some(interval) = shared.cfg.refresh_interval {
                if last_refresh.elapsed() >= interval {
                    last_refresh = Instant::now();
                    if let Ok(summary) = shared.wh.refresh() {
                        if !summary.is_noop() {
                            shared
                                .counters
                                .refreshes_applied
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            let gen_now = shared.wh.generation();
            for (&token, conn) in conns.iter_mut() {
                let mut wake: Vec<(u32, String)> = Vec::new();
                for (&id, cur) in conn.cursors.iter() {
                    if conn.inflight.contains_key(&id) {
                        continue; // re-run already queued/running
                    }
                    if let Some(sub) = cur.sub.as_ref() {
                        if sub.drained && sub.generation < gen_now {
                            wake.push((id, sub.sql.clone()));
                        }
                    }
                }
                for (id, sql) in wake {
                    let cancel = Arc::new(AtomicBool::new(false));
                    let enqueued = {
                        let mut q = shared.queue.lock().expect("queue poisoned");
                        // Same invariant as try_admit: push only while a
                        // worker is guaranteed alive to drain it.
                        if shared.is_shutdown() {
                            false
                        } else {
                            q.push_back(Job {
                                sql,
                                delay_ms: 0,
                                enqueued: Instant::now(),
                                token,
                                cursor: Some(id),
                                subscribe: true,
                                cancel: Arc::clone(&cancel),
                                cost: 0,
                            });
                            true
                        }
                    };
                    if enqueued {
                        shared.job_ready.notify_one();
                        conn.inflight.insert(
                            id,
                            Inflight {
                                cancel,
                                cancelled: false,
                                cancel_acked: false,
                            },
                        );
                        progress = true;
                    }
                }
            }
        }

        // 4. Pump cursors (credit- and outbuf-gated), then flush sockets.
        for (&token, conn) in conns.iter_mut() {
            pump_cursors(shared, conn);
            let (write_progress, write_dead) = conn.write_ready();
            progress |= write_progress;
            if write_dead || (conn.closing && conn.out.bytes == 0) {
                dead.push(token);
            }
        }

        // 5. Reap dead connections: free their cursors, flag their
        // still-queued queries so workers skip them.
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                let open = conn.cursors.len() as u64;
                if open > 0 {
                    shared
                        .counters
                        .cursors_open
                        .fetch_sub(open, Ordering::Relaxed);
                }
                for inflight in conn.inflight.values() {
                    inflight.cancel.store(true, Ordering::Release);
                }
                progress = true;
            }
        }

        // 6. Drain-exit check: every admitted job completed and
        // delivered, every cursor finished, every outbound byte flushed
        // — or the deadline passed (a stalled reader cannot pin
        // shutdown).
        if draining {
            let quiesced = {
                let q = shared.queue.lock().expect("queue poisoned");
                let queue_empty = q.is_empty();
                drop(q);
                let running = shared.running.load(Ordering::SeqCst);
                let completions_empty = shared
                    .completions
                    .lock()
                    .expect("completions poisoned")
                    .is_empty();
                queue_empty
                    && running == 0
                    && completions_empty
                    && conns
                        .values()
                        .all(|c| c.out.bytes == 0 && c.cursors.is_empty() && c.inflight.is_empty())
            };
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if quiesced || expired {
                return; // conns drop here, closing every socket
            }
        }

        if !progress {
            std::thread::sleep(IDLE_TICK);
        }
    }
}

/// Admission verdict for one query frame.
enum Admit {
    Admitted,
    Busy {
        queued: u32,
        estimated_rows: u64,
        by_cost: bool,
    },
    Draining,
}

/// Admission control: queue depth first, then the estimated-cost budget.
/// On `Admitted` the job is already queued and a worker notified.
fn try_admit(
    shared: &Shared,
    token: u64,
    cursor: Option<u32>,
    sql: String,
    delay_ms: u32,
    subscribe: bool,
    cancel: Arc<AtomicBool>,
) -> Admit {
    // Cost the query before taking the queue lock (planning is pure
    // CPU but not free). Unestimable queries admit on depth alone —
    // including unparseable ones, which must reach a worker so the
    // client gets its `query.parse` error rather than a nonsense BUSY.
    let estimate = match shared.cfg.cost_budget_rows {
        Some(_) => shared
            .wh
            .estimate_query_rows(&sql)
            .ok()
            .flatten()
            .unwrap_or(0),
        None => 0,
    };
    let mut q = shared.queue.lock().expect("queue poisoned");
    // Re-checked under the queue lock: workers only exit after observing
    // (empty queue ∧ shutdown) under this same lock, so a job admitted
    // here while the flag is still down is guaranteed a live worker.
    if shared.is_shutdown() {
        return Admit::Draining;
    }
    if q.len() >= shared.cfg.queue_depth {
        return Admit::Busy {
            queued: q.len() as u32,
            estimated_rows: estimate,
            by_cost: false,
        };
    }
    let mut cost = 0;
    if let Some(budget) = shared.cfg.cost_budget_rows {
        if estimate > 0 {
            let admitted = shared.admitted_cost.load(Ordering::SeqCst);
            // A query over budget on its own still runs when nothing
            // else is admitted — admission must never starve forever.
            if admitted > 0 && admitted.saturating_add(estimate) > budget {
                return Admit::Busy {
                    queued: q.len() as u32,
                    estimated_rows: estimate,
                    by_cost: true,
                };
            }
            shared.admitted_cost.fetch_add(estimate, Ordering::SeqCst);
            cost = estimate;
        }
    }
    q.push_back(Job {
        sql,
        delay_ms,
        enqueued: Instant::now(),
        token,
        cursor,
        subscribe,
        cancel,
        cost,
    });
    drop(q);
    shared.job_ready.notify_one();
    Admit::Admitted
}

/// React to one parsed frame on the poller thread. Queries go through
/// admission; everything else is answered inline (stats and pings must
/// work even when the pool is saturated — that is when an operator needs
/// them most).
fn handle_frame(shared: &Shared, token: u64, conn: &mut Conn, frame: Frame, draining: bool) {
    let counters = &shared.counters;
    match frame {
        Frame::Hello { max_version } => {
            conn.version = max_version.clamp(1, crate::protocol::MAX_VERSION);
            conn.push(
                &Frame::HelloAck {
                    version: conn.version,
                    batch_rows: shared.cfg.batch_rows,
                    initial_credit: shared.cfg.initial_credit,
                },
                counters,
            );
        }
        Frame::Query { delay_ms, sql } => {
            admit_or_reject(shared, token, conn, None, sql, delay_ms, false, draining)
        }
        Frame::QueryV2 {
            cursor,
            delay_ms,
            sql,
        } => {
            if conn.version < 2 {
                conn.push(
                    &Frame::Error {
                        code: "proto.unexpected".into(),
                        message: "QueryV2 before a v2 Hello handshake".into(),
                    },
                    counters,
                );
            } else if conn.cursors.contains_key(&cursor) || conn.inflight.contains_key(&cursor) {
                conn.push(
                    &Frame::Error {
                        code: "server.cursor".into(),
                        message: format!("cursor {cursor} is already in use"),
                    },
                    counters,
                );
            } else {
                admit_or_reject(
                    shared,
                    token,
                    conn,
                    Some(cursor),
                    sql,
                    delay_ms,
                    false,
                    draining,
                )
            }
        }
        Frame::Subscribe { cursor, sql } => {
            if conn.version < crate::protocol::VERSION_V2_1 {
                conn.push(
                    &Frame::Error {
                        code: "proto.unexpected".into(),
                        message: "Subscribe before a v2.1 Hello handshake".into(),
                    },
                    counters,
                );
            } else if conn.cursors.contains_key(&cursor) || conn.inflight.contains_key(&cursor) {
                conn.push(
                    &Frame::Error {
                        code: "server.cursor".into(),
                        message: format!("cursor {cursor} is already in use"),
                    },
                    counters,
                );
            } else {
                admit_or_reject(shared, token, conn, Some(cursor), sql, 0, true, draining)
            }
        }
        Frame::Credit { cursor, n } => {
            if let Some(cur) = conn.cursors.get_mut(&cursor) {
                cur.credit = cur.credit.saturating_add(n);
                cur.stalled = false;
            }
            // Unknown cursor: the grant raced the stream's end — ignore.
        }
        Frame::Cancel { cursor } => {
            if let Some(cur) = conn.cursors.remove(&cursor) {
                counters.cursors_open.fetch_sub(1, Ordering::Relaxed);
                conn.push(
                    &Frame::ResultEnd {
                        cursor,
                        batches: cur.seq,
                        rows: cur.next_row as u64,
                        cancelled: true,
                    },
                    counters,
                );
                // A subscription's refresh re-run may still be in flight;
                // flag it so the completion is discarded (the cancel is
                // answered right here).
                if cur.sub.is_some() {
                    if let Some(inflight) = conn.inflight.get_mut(&cursor) {
                        inflight.cancel.store(true, Ordering::Release);
                        inflight.cancelled = true;
                        inflight.cancel_acked = true;
                    }
                }
            } else if let Some(inflight) = conn.inflight.get_mut(&cursor) {
                // Queued or executing: flag it (a queued job is skipped
                // outright) and acknowledge when the completion posts.
                inflight.cancel.store(true, Ordering::Release);
                inflight.cancelled = true;
            }
            // Unknown cursor: the cancel raced the stream's end — ignore.
        }
        Frame::Stats => conn.push(
            &Frame::StatsReply {
                text: shared.stats_text(),
            },
            counters,
        ),
        Frame::Ping => conn.push(&Frame::Pong, counters),
        Frame::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            shared.job_ready.notify_all();
            conn.push(&Frame::ShutdownAck, counters);
            conn.closing = true;
        }
        // Response frames arriving at the server are a client bug.
        other => conn.push(
            &Frame::Error {
                code: "proto.unexpected".into(),
                message: format!("server cannot handle frame {other:?}"),
            },
            counters,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn admit_or_reject(
    shared: &Shared,
    token: u64,
    conn: &mut Conn,
    cursor: Option<u32>,
    sql: String,
    delay_ms: u32,
    subscribe: bool,
    draining: bool,
) {
    let counters = &shared.counters;
    if draining {
        conn.push(
            &Frame::Error {
                code: "server.shutdown".into(),
                message: "server is draining; no new queries".into(),
            },
            counters,
        );
        return;
    }
    let cancel = Arc::new(AtomicBool::new(false));
    match try_admit(
        shared,
        token,
        cursor,
        sql,
        delay_ms,
        subscribe,
        Arc::clone(&cancel),
    ) {
        Admit::Admitted => {
            if let Some(id) = cursor {
                conn.inflight.insert(
                    id,
                    Inflight {
                        cancel,
                        cancelled: false,
                        cancel_acked: false,
                    },
                );
            }
        }
        Admit::Busy {
            queued,
            estimated_rows,
            by_cost,
        } => {
            counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
            if by_cost {
                counters.cost_rejections.fetch_add(1, Ordering::Relaxed);
            }
            conn.push(
                &Frame::Busy {
                    queue_depth: shared.cfg.queue_depth as u32,
                    queued,
                    estimated_rows,
                    cost_budget: shared.cfg.cost_budget_rows.unwrap_or(0),
                },
                counters,
            );
        }
        Admit::Draining => conn.push(
            &Frame::Error {
                code: "server.shutdown".into(),
                message: "server is draining; no new queries".into(),
            },
            counters,
        ),
    }
}

/// Route one worker completion to its connection: v1 gets the whole
/// result frame, v2 opens a cursor (or acknowledges its cancellation),
/// a v2.1 subscription opens a long-lived cursor or — on a refresh
/// re-run — swaps the new revision into the live cursor.
fn deliver_completion(shared: &Shared, conn: &mut Conn, comp: Completion) {
    let counters = &shared.counters;
    match comp.cursor {
        None => match comp.done {
            Done::Ok { metrics, table, .. } => {
                conn.push(&Frame::Result { metrics, table }, counters)
            }
            Done::Err { code, message } => conn.push(&Frame::Error { code, message }, counters),
            Done::Skipped => {} // v1 jobs are never cancelled
        },
        Some(cursor) => {
            let (cancelled, cancel_acked) = match conn.inflight.remove(&cursor) {
                Some(f) => (
                    f.cancelled || f.cancel.load(Ordering::Acquire),
                    f.cancel_acked,
                ),
                None => (false, false),
            };
            match comp.done {
                _ if cancelled => {
                    // Cancelled while queued/executing: the result (if
                    // any) is discarded; acknowledge the cancel — unless
                    // the `Cancel` handler already did.
                    if !cancel_acked {
                        conn.push(
                            &Frame::ResultEnd {
                                cursor,
                                batches: 0,
                                rows: 0,
                                cancelled: true,
                            },
                            counters,
                        );
                    }
                }
                Done::Ok {
                    metrics,
                    table,
                    generation,
                } => {
                    if comp.subscribe_sql.is_some() && conn.cursors.contains_key(&cursor) {
                        // Refresh re-run landing on the live subscription
                        // cursor: swap the revision in and resume batching
                        // under the same cursor — no new ResultStart, the
                        // SubUpdate boundary frame delimits revisions.
                        let cur = conn.cursors.get_mut(&cursor).expect("checked above");
                        cur.table = table;
                        cur.next_row = 0;
                        if let Some(sub) = cur.sub.as_mut() {
                            sub.generation = generation;
                            sub.drained = false;
                        }
                        return;
                    }
                    // Schema travels on ResultStart as a zero-row slice,
                    // so even an empty result tells the client its shape.
                    let schema = match table.slice(0, 0) {
                        Ok(t) => Arc::new(t),
                        Err(_) => {
                            conn.push(
                                &Frame::Error {
                                    code: "server.internal".into(),
                                    message: "result schema slice failed".into(),
                                },
                                counters,
                            );
                            return;
                        }
                    };
                    counters.cursors_opened.fetch_add(1, Ordering::Relaxed);
                    counters.cursors_open.fetch_add(1, Ordering::Relaxed);
                    let sub = comp.subscribe_sql.map(|sql| {
                        counters
                            .subscriptions_opened
                            .fetch_add(1, Ordering::Relaxed);
                        SubState {
                            sql,
                            update: 0,
                            generation,
                            drained: false,
                        }
                    });
                    conn.push(
                        &Frame::ResultStart {
                            cursor,
                            metrics,
                            schema,
                        },
                        counters,
                    );
                    conn.cursors.insert(
                        cursor,
                        Cursor {
                            table,
                            next_row: 0,
                            credit: shared.cfg.initial_credit,
                            seq: 0,
                            stalled: false,
                            sub,
                        },
                    );
                }
                Done::Err { code, message } => {
                    conn.push(&Frame::Error { code, message }, counters);
                    // An erroring refresh re-run ends the subscription:
                    // the cursor cannot advance past a failed revision.
                    if let Some(cur) = conn.cursors.remove(&cursor) {
                        counters.cursors_open.fetch_sub(1, Ordering::Relaxed);
                        conn.push(
                            &Frame::ResultEnd {
                                cursor,
                                batches: cur.seq,
                                rows: cur.next_row as u64,
                                cancelled: true,
                            },
                            counters,
                        );
                    }
                }
                Done::Skipped => {
                    // Skipped without a recorded cancel only happens when
                    // the connection died and was reborn — impossible
                    // (tokens are unique) — or a cancel raced delivery;
                    // either way a cancelled end is the honest answer.
                    if !cancel_acked {
                        conn.push(
                            &Frame::ResultEnd {
                                cursor,
                                batches: 0,
                                rows: 0,
                                cancelled: true,
                            },
                            counters,
                        );
                    }
                }
            }
        }
    }
}

/// Stream batches for every cursor that has credit, stopping at the
/// outbound-buffer ceiling — the mechanism that bounds per-connection
/// memory by `O(batch)` instead of `O(result)`.
fn pump_cursors(shared: &Shared, conn: &mut Conn) {
    let counters = &shared.counters;
    let batch_rows = shared.cfg.batch_rows.max(1) as usize;
    let ids: Vec<u32> = conn.cursors.keys().copied().collect();
    for id in ids {
        // Take the cursor out for the duration of the pump so batches
        // can be queued (updating `out.bytes`) as they are sliced — the
        // ceiling check must see every byte already produced this tick.
        let mut cur = conn.cursors.remove(&id).expect("cursor vanished");
        if cur.sub.as_ref().is_some_and(|s| s.drained) {
            // Fully-streamed subscription revision: parked until the
            // warehouse generation moves and the wakeup re-runs it.
            conn.cursors.insert(id, cur);
            continue;
        }
        let mut finished = false;
        loop {
            let total = cur.table.num_rows();
            if cur.next_row >= total {
                if let Some(sub) = cur.sub.as_mut() {
                    // A subscription revision ends with SubUpdate, not
                    // ResultEnd: the cursor stays open for the next one.
                    conn.push(
                        &Frame::SubUpdate {
                            cursor: id,
                            update: sub.update,
                            rows: cur.next_row as u64,
                        },
                        counters,
                    );
                    sub.update += 1;
                    sub.drained = true;
                    counters.sub_updates_pushed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                conn.push(
                    &Frame::ResultEnd {
                        cursor: id,
                        batches: cur.seq,
                        rows: cur.next_row as u64,
                        cancelled: false,
                    },
                    counters,
                );
                finished = true;
                break;
            }
            if cur.credit == 0 {
                if !cur.stalled {
                    cur.stalled = true;
                    counters.credit_stalls.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            if conn.out.bytes >= shared.cfg.max_outbuf_bytes {
                break; // socket backlogged; resume next tick
            }
            let len = batch_rows.min(total - cur.next_row);
            match cur.table.slice(cur.next_row, len) {
                Ok(batch) => {
                    conn.push(
                        &Frame::ResultBatch {
                            cursor: id,
                            seq: cur.seq,
                            table: Arc::new(batch),
                        },
                        counters,
                    );
                    cur.seq += 1;
                    cur.next_row += len;
                    cur.credit -= 1;
                    counters.batches_streamed.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    conn.push(
                        &Frame::ResultEnd {
                            cursor: id,
                            batches: cur.seq,
                            rows: cur.next_row as u64,
                            cancelled: true,
                        },
                        counters,
                    );
                    finished = true;
                    break;
                }
            }
        }
        if finished {
            counters.cursors_open.fetch_sub(1, Ordering::Relaxed);
        } else {
            conn.cursors.insert(id, cur);
        }
    }
}
