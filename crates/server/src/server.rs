//! The query server: one shared [`Warehouse`] behind a bounded worker
//! pool with admission control.
//!
//! # Architecture
//!
//! ```text
//!            accept loop (non-blocking poll, exits on shutdown)
//!                 │ spawns one lightweight I/O thread per connection
//!                 ▼
//!   connection threads ──try_enqueue──▶ bounded queue (≤ queue_depth)
//!        │    ▲                              │ pop
//!        │    │ BUSY frame when full         ▼
//!        │    └───────────────────    worker pool (N threads)
//!        │                                   │ Warehouse::query (&self)
//!        └──◀── reply channel ◀──────────────┘
//! ```
//!
//! Connection threads only do I/O (cheap, blocked on the socket); the
//! bounded resource is the **worker pool**, which is the only thing that
//! touches the warehouse. Admission control happens at enqueue time: when
//! the queue already holds `queue_depth` jobs, the connection thread
//! answers with a [`Frame::Busy`] backpressure frame immediately instead
//! of piling more work onto the pool — the client decides whether to
//! retry, and the accept loop never stalls.
//!
//! # Graceful shutdown
//!
//! [`Server::stop`] (or a [`Frame::Shutdown`] request, or SIGTERM in the
//! `lazyetl-serve` binary) runs the drain sequence:
//!
//! 1. the shutdown flag flips: the accept loop stops accepting, new
//!    queries get a `server.shutdown` error frame;
//! 2. workers drain every job already admitted to the queue and deliver
//!    the replies, then exit;
//! 3. connection threads notice the flag (their reads time-slice) and
//!    close;
//! 4. once quiesced, the warehouse is persisted to `save_dir` (when
//!    configured) via [`Warehouse::save_to`] — the hot record cache goes
//!    into the snapshot, so the next boot warm-restarts.

use crate::protocol::{read_frame, write_frame, Frame, ProtoError, WireMetrics};
use lazyetl_core::persistence::SaveReport;
use lazyetl_core::{EtlError, Warehouse};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing queries against the shared warehouse.
    pub workers: usize,
    /// Jobs the admission queue holds before new queries get
    /// [`Frame::Busy`]. In-flight queries (already popped by a worker) do
    /// not count; `0` rejects every query — the chaos-testing extreme.
    pub queue_depth: usize,
    /// Cap on request payloads; larger frames are rejected with a
    /// `proto.oversize` error and the connection closes.
    pub max_request_bytes: u32,
    /// Snapshot directory for the graceful-shutdown save; `None` skips
    /// the save.
    pub save_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            max_request_bytes: crate::protocol::DEFAULT_MAX_REQUEST,
            save_dir: None,
        }
    }
}

/// Cumulative serving counters (all monotone; snapshot via
/// [`Server::stats`] or the wire `Stats` frame).
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
    busy_rejections: AtomicU64,
    proto_errors: AtomicU64,
    dropped_replies: AtomicU64,
    queue_wait_us: AtomicU64,
    exec_us: AtomicU64,
    records_extracted: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// Point-in-time copy of the serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Queries answered with a result frame.
    pub queries_ok: u64,
    /// Queries answered with an error frame.
    pub queries_err: u64,
    /// Queries rejected with a busy frame.
    pub busy_rejections: u64,
    /// Connections dropped for protocol violations.
    pub proto_errors: u64,
    /// Replies computed but undeliverable (client disconnected mid-query).
    pub dropped_replies: u64,
    /// Total admission-queue wait across all queries.
    pub queue_wait_us: u64,
    /// Total execution time across all queries.
    pub exec_us: u64,
    /// Records decoded across all queries.
    pub records_extracted: u64,
    /// Record-cache hits across all queries.
    pub cache_hits: u64,
    /// Record-cache misses across all queries.
    pub cache_misses: u64,
}

impl ServerStats {
    /// Aggregate cache hit rate over every served query.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Budget for receiving one frame once its first byte has arrived: long
/// enough for slow links, short enough that a stalled sender cannot pin
/// a connection thread (and graceful shutdown) indefinitely.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Ceiling on the client-supplied per-query think time. `delay_ms` is a
/// load-generation knob, not a scheduling primitive: uncapped, one cheap
/// frame could pin a worker (and therefore graceful drain) for up to
/// `u32::MAX` milliseconds.
const MAX_QUERY_DELAY_MS: u32 = 10_000;

/// One admitted query: what the worker needs, plus the reply channel back
/// to the connection thread.
struct Job {
    sql: String,
    delay_ms: u32,
    enqueued: Instant,
    reply: SyncSender<Frame>,
}

struct Shared {
    wh: Arc<Warehouse>,
    cfg: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

/// What the drain sequence produced.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final serving counters.
    pub stats: ServerStats,
    /// The graceful snapshot, when `save_dir` was configured.
    pub save: Option<SaveReport>,
}

/// A running server. Dropping without [`Server::stop`] aborts ungracefully
/// (threads are detached); call `stop` for the drain + snapshot sequence.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `wh` with `cfg`. Returns once the listener is live;
    /// [`Server::addr`] reports the bound address.
    pub fn start(
        wh: Arc<Warehouse>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            wh,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lazyetl-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lazyetl-accept".into())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a shutdown was requested (by [`Server::stop`], a wire
    /// `Shutdown` frame, or the serve binary's signal handler).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Request shutdown without waiting (idempotent).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.job_ready.notify_all();
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").len()
    }

    /// Graceful shutdown: stop accepting, drain admitted queries, join
    /// every thread, then persist the warehouse to `save_dir` (when
    /// configured). Returns the final counters and the save report.
    pub fn stop(mut self) -> Result<ShutdownReport, EtlError> {
        self.request_shutdown();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let stats = self.shared.snapshot();
        let save = match &self.shared.cfg.save_dir {
            Some(dir) => Some(self.shared.wh.save_to(dir)?),
            None => None,
        };
        Ok(ShutdownReport { stats, save })
    }
}

impl Shared {
    fn snapshot(&self) -> ServerStats {
        let c = &self.counters;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServerStats {
            connections: g(&c.connections),
            queries_ok: g(&c.queries_ok),
            queries_err: g(&c.queries_err),
            busy_rejections: g(&c.busy_rejections),
            proto_errors: g(&c.proto_errors),
            dropped_replies: g(&c.dropped_replies),
            queue_wait_us: g(&c.queue_wait_us),
            exec_us: g(&c.exec_us),
            records_extracted: g(&c.records_extracted),
            cache_hits: g(&c.cache_hits),
            cache_misses: g(&c.cache_misses),
        }
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Render server + warehouse stats as the wire `key=value` text.
    fn stats_text(&self) -> String {
        let s = self.snapshot();
        let w = self.wh.stats_snapshot();
        let mut out = String::new();
        for (k, v) in [
            ("server.connections", s.connections),
            ("server.queries_ok", s.queries_ok),
            ("server.queries_err", s.queries_err),
            ("server.busy_rejections", s.busy_rejections),
            ("server.proto_errors", s.proto_errors),
            ("server.dropped_replies", s.dropped_replies),
            ("server.queue_wait_us", s.queue_wait_us),
            ("server.exec_us", s.exec_us),
            ("server.records_extracted", s.records_extracted),
            ("server.cache_hits", s.cache_hits),
            ("server.cache_misses", s.cache_misses),
            ("server.workers", self.cfg.workers as u64),
            ("server.queue_depth", self.cfg.queue_depth as u64),
            ("warehouse.files", w.files as u64),
            ("warehouse.records", w.records as u64),
            ("warehouse.resident_bytes", w.resident_bytes as u64),
            ("warehouse.generation", w.generation),
            ("warehouse.queries", w.queries),
            ("warehouse.cache_entries", w.cache_entries as u64),
            ("warehouse.cache_used_bytes", w.cache_used_bytes as u64),
            ("warehouse.cache_hits", w.cache.hits),
            ("warehouse.cache_misses", w.cache.misses),
            ("warehouse.cache_stale_drops", w.cache.stale_drops),
            ("warehouse.cache_evictions", w.cache.evictions),
            ("warehouse.segments_loaded", w.cache.segments_loaded),
            ("warehouse.pending_segments", w.pending_segments as u64),
            ("warehouse.rows_scanned", w.exec.rows_scanned),
            ("warehouse.rows_pruned", w.exec.rows_pruned),
            ("warehouse.vectorized_batches", w.exec.vectorized_batches),
            ("warehouse.scalar_fallbacks", w.exec.scalar_fallbacks),
            ("warehouse.morsels_dispatched", w.exec.morsels_dispatched),
            ("warehouse.parallel_pipelines", w.exec.parallel_pipelines),
            ("warehouse.merge_ns", w.exec.merge_ns),
            ("warehouse.index_seeks", w.exec.index_seeks),
            ("warehouse.index_rows_examined", w.exec.index_rows_examined),
            ("warehouse.plans_estimated", w.exec.plans_estimated),
            ("warehouse.estimated_rows", w.exec.estimated_rows),
            ("warehouse.actual_rows", w.exec.actual_rows),
            ("warehouse.estimate_abs_error", w.exec.estimate_abs_error),
        ] {
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "server.cache_hit_rate={:.6}\n",
            s.cache_hit_rate()
        ));
        out.push_str(&format!(
            "warehouse.mode={}\n",
            match w.mode {
                lazyetl_core::Mode::Lazy => "lazy",
                lazyetl_core::Mode::Eager => "eager",
            }
        ));
        // Per-mount extraction accounting (one block per lazy source).
        for src in &w.sources {
            out.push_str(&format!("source.{}.kind={}\n", src.name, src.kind));
            for (k, v) in [
                ("files", src.files as u64),
                ("files_extracted", src.files_extracted),
                ("records_extracted", src.records_extracted),
                ("samples_extracted", src.samples_extracted),
                ("bytes_read", src.bytes_read),
                ("simulated_io_us", src.simulated_io.as_micros() as u64),
                ("fetch_requests", src.fetch_requests),
                ("fetched_bytes", src.fetched_bytes),
            ] {
                out.push_str(&format!("source.{}.{k}={v}\n", src.name));
            }
        }
        out
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                // Drain semantics: exit only once the queue is empty AND
                // shutdown was requested — admitted queries always finish.
                if shared.is_shutdown() {
                    return;
                }
                let (guard, _) = shared
                    .job_ready
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("queue poisoned");
                q = guard;
            }
        };
        let queue_wait = job.enqueued.elapsed();
        if job.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(
                job.delay_ms.min(MAX_QUERY_DELAY_MS) as u64
            ));
        }
        let t0 = Instant::now();
        let c = &shared.counters;
        let reply = match shared.wh.query(&job.sql) {
            Ok(out) => {
                let exec = t0.elapsed();
                let metrics = WireMetrics {
                    queue_wait_us: queue_wait.as_micros() as u64,
                    exec_us: exec.as_micros() as u64,
                    rows: out.table.num_rows() as u64,
                    records_extracted: out.report.records_extracted as u64,
                    cache_hits: out.report.cache_hits as u64,
                    cache_misses: out.report.cache_misses as u64,
                    result_recycled: out.report.result_recycled,
                };
                c.queries_ok.fetch_add(1, Ordering::Relaxed);
                c.queue_wait_us
                    .fetch_add(metrics.queue_wait_us, Ordering::Relaxed);
                c.exec_us.fetch_add(metrics.exec_us, Ordering::Relaxed);
                c.records_extracted
                    .fetch_add(metrics.records_extracted, Ordering::Relaxed);
                c.cache_hits
                    .fetch_add(metrics.cache_hits, Ordering::Relaxed);
                c.cache_misses
                    .fetch_add(metrics.cache_misses, Ordering::Relaxed);
                Frame::Result {
                    metrics,
                    table: out.table,
                }
            }
            Err(e) => {
                c.queries_err.fetch_add(1, Ordering::Relaxed);
                Frame::Error {
                    code: e.code().to_string(),
                    message: e.to_string(),
                }
            }
        };
        // The connection thread may have vanished with its client; a
        // failed send must not take the worker down with it.
        if job.reply.send(reply).is_err() {
            c.dropped_replies.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                match std::thread::Builder::new()
                    .name("lazyetl-conn".into())
                    .spawn(move || serve_connection(stream, &shared))
                {
                    Ok(h) => conns.push(h),
                    Err(_) => { /* thread spawn failed; connection drops */ }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        // Reap finished connection threads so long-lived servers don't
        // accumulate handles.
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Read frames off one connection until EOF, protocol violation, or
/// shutdown. Queries go through admission control; everything else is
/// answered inline (stats and pings must work even when the pool is
/// saturated — that is when an operator needs them most).
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut peek_buf = [0u8; 1];
    loop {
        // Wait for the next frame with `peek` so a timeout never consumes
        // partial header bytes (read_exact after a successful peek only
        // blocks while the frame is in flight).
        match stream.peek(&mut peek_buf) {
            Ok(0) => return, // clean EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.is_shutdown() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // The 100ms timeout exists so the idle peek loop can poll the
        // shutdown flag; a frame in flight gets a much longer budget so a
        // slow link's legitimate request is not dropped mid-transfer —
        // but not an unbounded one, or a stalled sender could pin this
        // thread (and therefore graceful shutdown) forever.
        let _ = stream.set_read_timeout(Some(FRAME_READ_TIMEOUT));
        let frame = read_frame(&mut (&stream), shared.cfg.max_request_bytes);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        let frame = match frame {
            Ok(f) => f,
            Err(ProtoError::Io(_)) => return, // disconnect mid-frame
            Err(e) => {
                // Protocol violation: answer with the code, then close —
                // the stream cannot be resynchronized.
                shared.counters.proto_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    &mut (&stream),
                    &Frame::Error {
                        code: e.code().to_string(),
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let response = match frame {
            Frame::Query { delay_ms, sql } => match try_enqueue(shared, sql, delay_ms) {
                Admission::Admitted(rx) => match rx.recv() {
                    Ok(reply) => reply,
                    Err(_) => Frame::Error {
                        code: "server.internal".into(),
                        message: "worker dropped the query".into(),
                    },
                },
                Admission::Busy { queued } => {
                    shared
                        .counters
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    Frame::Busy {
                        queue_depth: shared.cfg.queue_depth as u32,
                        queued,
                    }
                }
                Admission::Draining => Frame::Error {
                    code: "server.shutdown".into(),
                    message: "server is draining; no new queries".into(),
                },
            },
            Frame::Stats => Frame::StatsReply {
                text: shared.stats_text(),
            },
            Frame::Ping => Frame::Pong,
            Frame::Shutdown => {
                shared.shutdown.store(true, Ordering::Release);
                shared.job_ready.notify_all();
                let _ = write_frame(&mut (&stream), &Frame::ShutdownAck);
                return;
            }
            // Response frames arriving at the server are a client bug.
            other => Frame::Error {
                code: "proto.unexpected".into(),
                message: format!("server cannot handle frame {other:?}"),
            },
        };
        // A client that vanished while its query ran must not poison the
        // pool — but the undelivered answer is worth counting. The probe
        // is needed because the first write after a peer's close often
        // lands in the kernel buffer and only a later write sees the RST.
        let query_reply = matches!(response, Frame::Result { .. } | Frame::Error { .. });
        if query_reply && peer_closed(&stream) {
            shared
                .counters
                .dropped_replies
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        if write_frame(&mut (&stream), &response).is_err() {
            if query_reply {
                shared
                    .counters
                    .dropped_replies
                    .fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
    }
}

/// Non-blocking probe: has the peer fully closed the connection? A
/// read-side EOF is the signal (the protocol never half-closes, so EOF
/// while a reply is pending means the client is gone).
fn peer_closed(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let gone = matches!(stream.peek(&mut [0u8; 1]), Ok(0));
    let _ = stream.set_nonblocking(false);
    gone
}

enum Admission {
    Admitted(std::sync::mpsc::Receiver<Frame>),
    Busy { queued: u32 },
    Draining,
}

fn try_enqueue(shared: &Shared, sql: String, delay_ms: u32) -> Admission {
    let (tx, rx) = sync_channel(1);
    let mut q = shared.queue.lock().expect("queue poisoned");
    // Re-checked under the queue lock: workers only exit after observing
    // (empty queue ∧ shutdown) under this same lock, so a job admitted
    // here while the flag is still down is guaranteed a live worker —
    // without this check, a flag flip between the connection thread's
    // lock-free check and the push could strand the job (and its blocked
    // reply channel) in a queue nobody drains.
    if shared.is_shutdown() {
        return Admission::Draining;
    }
    if q.len() >= shared.cfg.queue_depth {
        return Admission::Busy {
            queued: q.len() as u32,
        };
    }
    q.push_back(Job {
        sql,
        delay_ms,
        enqueued: Instant::now(),
        reply: tx,
    });
    drop(q);
    shared.job_ready.notify_one();
    Admission::Admitted(rx)
}
