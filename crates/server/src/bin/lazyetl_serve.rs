//! `lazyetl-serve` — boot a warehouse and serve it over TCP.
//!
//! ```sh
//! lazyetl-serve --root /data/mseed --addr 127.0.0.1:7744 \
//!     --workers 4 --queue-depth 32 --save-dir /var/lib/lazyetl/snap
//! ```
//!
//! When `--save-dir` holds a snapshot from a previous graceful shutdown,
//! the warehouse **warm-restarts** from it (metadata and the hot record
//! cache come back without rescanning); otherwise it cold-opens from
//! `--root`. SIGTERM (or SIGINT, or a wire `Shutdown` frame) triggers the
//! drain→snapshot sequence and the process exits 0 — so a supervisor
//! restart loop gets warmer every cycle.
//!
//! `--ready-file PATH` writes the bound address to `PATH` once the
//! listener is live (how scripts wait for boot without parsing logs).

use lazyetl_core::{Mode, Warehouse, WarehouseBuilder, WarehouseConfig};
use lazyetl_repo::{CsvSource, LazySource, RemoteSource, Repository};
use lazyetl_server::{Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; polled by the main loop.
static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handler() {
    // `signal(2)` via the C runtime every Rust binary already links —
    // the container policy is no new crates, and std exposes no signal
    // API. The handler only flips an atomic (async-signal-safe).
    extern "C" fn on_signal(_sig: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handler() {}

struct Args {
    root: PathBuf,
    mounts: Vec<(String, String)>,
    addr: String,
    workers: usize,
    queue_depth: usize,
    parallelism: usize,
    batch_rows: u32,
    initial_credit: u32,
    max_outbuf_kib: usize,
    cost_budget_rows: Option<u64>,
    save_dir: Option<PathBuf>,
    ready_file: Option<PathBuf>,
    eager: bool,
    no_auto_refresh: bool,
    refresh_ms: Option<u64>,
    recycle_results: bool,
}

fn usage() -> &'static str {
    "usage: lazyetl-serve (--root DIR | --mount NAME=SPEC ...) [options]\n\
     \n\
     options:\n\
       --root DIR         repository to serve (single local mount)\n\
       --mount NAME=SPEC  mount a named lazy source; repeatable. SPEC is\n\
                          DIR (local), csv:DIR (CSV waveforms only) or\n\
                          remote:DIR (simulated remote, range fetches)\n\
       --addr HOST:PORT   listen address (default 127.0.0.1:7744; port 0 = ephemeral)\n\
       --workers N        query worker threads (default 4)\n\
       --queue-depth N    admission queue depth before BUSY (default 32)\n\
       --parallelism N    worker threads per query's execution pipelines\n\
                          (default 1 = serial executor)\n\
       --batch-rows N     rows per streamed v2 result batch (default 4096)\n\
       --initial-credit N batches a cursor streams before the client must\n\
                          grant credit (default 4)\n\
       --max-outbuf-kib N per-connection outbound buffer ceiling in KiB\n\
                          (default 256); cursor pumping pauses above it\n\
       --cost-budget N    admission cost budget in estimated rows\n\
                          (default off = queue-depth admission only)\n\
       --save-dir DIR     snapshot dir: warm-restart from it when present,\n\
                          write it on graceful shutdown\n\
       --ready-file PATH  write the bound address here once listening\n\
       --eager            open the warehouse eagerly (baseline mode)\n\
       --no-auto-refresh  skip the per-query repository rescan\n\
       --refresh-ms N     poll the repository every N ms server-side and\n\
                          push updated results to live-tail subscribers\n\
                          (default off)\n\
       --recycle-results  keep finished query results resident and patch\n\
                          them in place from refresh deltas (the O(delta)\n\
                          path behind live-tail pushes; default off)"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::new(),
        mounts: Vec::new(),
        addr: "127.0.0.1:7744".into(),
        workers: 4,
        queue_depth: 32,
        parallelism: 1,
        batch_rows: 4096,
        initial_credit: 4,
        max_outbuf_kib: 256,
        cost_budget_rows: None,
        save_dir: None,
        ready_file: None,
        eager: false,
        no_auto_refresh: false,
        refresh_ms: None,
        recycle_results: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--root" => {
                args.root = PathBuf::from(value(&argv, i, "--root")?);
                i += 2;
            }
            "--mount" => {
                let spec = value(&argv, i, "--mount")?;
                let (name, src) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--mount wants NAME=SPEC, got {spec:?}"))?;
                args.mounts.push((name.to_string(), src.to_string()));
                i += 2;
            }
            "--addr" => {
                args.addr = value(&argv, i, "--addr")?;
                i += 2;
            }
            "--workers" => {
                args.workers = value(&argv, i, "--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
                i += 2;
            }
            "--queue-depth" => {
                args.queue_depth = value(&argv, i, "--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer".to_string())?;
                i += 2;
            }
            "--parallelism" => {
                args.parallelism = value(&argv, i, "--parallelism")?
                    .parse()
                    .map_err(|_| "--parallelism needs an integer".to_string())?;
                i += 2;
            }
            "--batch-rows" => {
                args.batch_rows = value(&argv, i, "--batch-rows")?
                    .parse()
                    .map_err(|_| "--batch-rows needs an integer".to_string())?;
                i += 2;
            }
            "--initial-credit" => {
                args.initial_credit = value(&argv, i, "--initial-credit")?
                    .parse()
                    .map_err(|_| "--initial-credit needs an integer".to_string())?;
                i += 2;
            }
            "--max-outbuf-kib" => {
                args.max_outbuf_kib = value(&argv, i, "--max-outbuf-kib")?
                    .parse()
                    .map_err(|_| "--max-outbuf-kib needs an integer".to_string())?;
                i += 2;
            }
            "--cost-budget" => {
                args.cost_budget_rows = Some(
                    value(&argv, i, "--cost-budget")?
                        .parse()
                        .map_err(|_| "--cost-budget needs an integer".to_string())?,
                );
                i += 2;
            }
            "--save-dir" => {
                args.save_dir = Some(PathBuf::from(value(&argv, i, "--save-dir")?));
                i += 2;
            }
            "--ready-file" => {
                args.ready_file = Some(PathBuf::from(value(&argv, i, "--ready-file")?));
                i += 2;
            }
            "--eager" => {
                args.eager = true;
                i += 1;
            }
            "--no-auto-refresh" => {
                args.no_auto_refresh = true;
                i += 1;
            }
            "--refresh-ms" => {
                args.refresh_ms = Some(
                    value(&argv, i, "--refresh-ms")?
                        .parse()
                        .map_err(|_| "--refresh-ms needs an integer".to_string())?,
                );
                i += 2;
            }
            "--recycle-results" => {
                args.recycle_results = true;
                i += 1;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.root.as_os_str().is_empty() && args.mounts.is_empty() {
        return Err(format!("--root or --mount is required\n{}", usage()));
    }
    if !args.root.as_os_str().is_empty() && !args.mounts.is_empty() {
        return Err(format!("--root and --mount are exclusive\n{}", usage()));
    }
    Ok(args)
}

/// Build the lazy source a `--mount` SPEC names.
fn open_source(spec: &str) -> Result<Box<dyn LazySource>, lazyetl_repo::RepoError> {
    Ok(match spec.split_once(':') {
        Some(("csv", dir)) => Box::new(CsvSource::open(dir)?),
        Some(("remote", dir)) => Box::new(RemoteSource::open(dir)?),
        Some(("local", dir)) => Box::new(Repository::open(dir)?),
        _ => Box::new(Repository::open(spec)?),
    })
}

/// A snapshot directory is usable when its manifest commit point exists.
fn has_snapshot(dir: &Path) -> bool {
    dir.join(lazyetl_core::MANIFEST_NAME).exists()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    install_signal_handler();

    let config = WarehouseConfig {
        auto_refresh: !args.no_auto_refresh,
        parallelism: args.parallelism.max(1),
        recycle_query_results: args.recycle_results,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let warm_from = args
        .save_dir
        .as_deref()
        .filter(|d| has_snapshot(d))
        .map(Path::to_path_buf);
    // A snapshot fixes the warehouse mode; booting it under the other
    // mode's flag must fail loudly, not silently serve the wrong mode.
    if let Some(snap) = &warm_from {
        let requested = if args.eager { Mode::Eager } else { Mode::Lazy };
        match lazyetl_core::saved_mode(snap) {
            Ok(saved) if saved != requested => {
                eprintln!(
                    "lazyetl-serve: snapshot at {} was saved in {saved:?} mode but \
                     {requested:?} was requested; clear the snapshot directory or \
                     drop the conflicting flag",
                    snap.display()
                );
                return ExitCode::from(2);
            }
            _ => {}
        }
    }
    let wh = if args.mounts.is_empty() {
        // Classic single-root serving: the builder shims, bare URIs.
        match &warm_from {
            Some(snap) => Warehouse::open_saved(&args.root, snap, config),
            None if args.eager => Warehouse::open_eager(&args.root, config),
            None => Warehouse::open_lazy(&args.root, config),
        }
    } else {
        // Federated serving: every --mount becomes a named source.
        let mut builder = WarehouseBuilder::new().config(config).mode(if args.eager {
            Mode::Eager
        } else {
            Mode::Lazy
        });
        let mut failed = None;
        for (name, spec) in &args.mounts {
            match open_source(spec) {
                Ok(src) => builder = builder.source(name.clone(), src),
                Err(e) => {
                    failed = Some(format!("mount {name}={spec}: {e}"));
                    break;
                }
            }
        }
        match failed {
            Some(msg) => {
                eprintln!("lazyetl-serve: cannot open warehouse: {msg}");
                return ExitCode::FAILURE;
            }
            None => match &warm_from {
                Some(snap) => builder.open_saved(snap),
                None => builder.open(),
            },
        }
    };
    let wh = match wh {
        Ok(w) => Arc::new(w),
        Err(e) => {
            eprintln!("lazyetl-serve: cannot open warehouse: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = wh.stats_snapshot();
    println!(
        "lazyetl-serve: mode={} files={} records={} open={:?} warm={} segments_attachable={}",
        match stats.mode {
            Mode::Lazy => "lazy",
            Mode::Eager => "eager",
        },
        stats.files,
        stats.records,
        t0.elapsed(),
        warm_from.is_some(),
        stats.pending_segments,
    );

    let server = match Server::start(
        Arc::clone(&wh),
        args.addr.as_str(),
        ServerConfig {
            workers: args.workers,
            queue_depth: args.queue_depth,
            batch_rows: args.batch_rows.max(1),
            initial_credit: args.initial_credit.max(1),
            max_outbuf_bytes: args.max_outbuf_kib.max(1) * 1024,
            cost_budget_rows: args.cost_budget_rows,
            save_dir: args.save_dir.clone(),
            refresh_interval: args.refresh_ms.map(Duration::from_millis),
            ..Default::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lazyetl-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", server.addr());
    if let Some(path) = &args.ready_file {
        if let Err(e) = std::fs::write(path, server.addr().to_string()) {
            eprintln!("lazyetl-serve: cannot write ready file: {e}");
        }
    }

    // Serve until a signal or a wire shutdown request.
    while !TERMINATE.load(Ordering::SeqCst) && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("lazyetl-serve: shutting down (drain + snapshot)");
    match server.stop() {
        Ok(report) => {
            println!(
                "lazyetl-serve: served ok={} err={} busy={} dropped={} cursors={} batches={} stalls={}",
                report.stats.queries_ok,
                report.stats.queries_err,
                report.stats.busy_rejections,
                report.stats.dropped_replies,
                report.stats.cursors_opened,
                report.stats.batches_streamed,
                report.stats.credit_stalls,
            );
            if let Some(save) = report.save {
                println!(
                    "SNAPSHOT epoch={} bytes={} tables={} segments={}",
                    save.epoch,
                    save.bytes,
                    save.tables.len(),
                    save.segments.len()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lazyetl-serve: shutdown failed: {e}");
            ExitCode::FAILURE
        }
    }
}
