//! `lazyetl-cli` — talk to a running `lazyetl-serve` from a shell.
//!
//! ```sh
//! lazyetl-cli --addr 127.0.0.1:7744 query "SELECT COUNT(*) FROM mseed.files"
//! lazyetl-cli --addr-file /tmp/srv.addr mix --expect 1,4,5
//! lazyetl-cli --addr 127.0.0.1:7744 stats
//! lazyetl-cli --addr 127.0.0.1:7744 shutdown
//! ```
//!
//! Exit codes: 0 success, 1 server/transport error, 2 usage error,
//! 3 assertion mismatch (`mix --expect`).

use lazyetl_core::{FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY};
use lazyetl_server::{Client, QueryReply, ServerReply, SubscribeReply};
use std::process::ExitCode;
use std::time::Duration;

/// The Figure-1 interactive mix — the same constants the bench harness
/// and the integration tests use (`lazyetl_core::schema`).
const MIX: [(&str, &str); 3] = [
    ("q1", FIGURE1_Q1),
    ("q2", FIGURE1_Q2),
    ("metadata", METADATA_QUERY),
];

fn usage() -> &'static str {
    "usage: lazyetl-cli (--addr HOST:PORT | --addr-file PATH) COMMAND\n\
     \n\
     commands:\n\
       query \"SQL\" [--delay-ms N]   run one query, print rows + metrics\n\
       follow \"SQL\" [--updates N]   subscribe (live tail): print the\n\
                                    result now and again on every server\n\
                                    refresh; stop after N revisions\n\
                                    (default: run until the server ends\n\
                                    the subscription)\n\
       mix [--rounds N] [--expect A,B,C]\n\
                                    run the Figure-1 mix; --expect asserts\n\
                                    the q1,q2,metadata row counts\n\
       stats                        print the server stats snapshot\n\
       ping                         liveness probe\n\
       shutdown                     graceful drain + snapshot + exit"
}

fn connect(addr: &str) -> Result<Client, String> {
    Client::connect_timeout(addr, Duration::from_secs(5))
        .map_err(|e| format!("cannot connect to {addr}: {e}"))
}

fn run() -> Result<(), (u8, String)> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                addr = Some(
                    argv.get(i + 1)
                        .cloned()
                        .ok_or((2, "--addr needs a value".to_string()))?,
                );
                i += 2;
            }
            "--addr-file" => {
                let path = argv
                    .get(i + 1)
                    .cloned()
                    .ok_or((2, "--addr-file needs a value".to_string()))?;
                addr = Some(
                    std::fs::read_to_string(&path)
                        .map_err(|e| (2, format!("cannot read {path}: {e}")))?
                        .trim()
                        .to_string(),
                );
                i += 2;
            }
            "--help" | "-h" => return Err((2, usage().to_string())),
            _ => {
                rest.push(argv[i].clone());
                i += 1;
            }
        }
    }
    let addr = addr.ok_or((2, format!("--addr or --addr-file required\n{}", usage())))?;
    let command = rest.first().cloned().unwrap_or_default();
    match command.as_str() {
        "query" => {
            let sql = rest
                .get(1)
                .cloned()
                .ok_or((2, "query needs SQL".to_string()))?;
            let delay_ms = match rest.iter().position(|a| a == "--delay-ms") {
                Some(p) => rest
                    .get(p + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or((2, "--delay-ms needs an integer".to_string()))?,
                None => 0,
            };
            let mut client = connect(&addr).map_err(|m| (1, m))?;
            let reply = client
                .query_with_delay(&sql, delay_ms)
                .map_err(|e| (1, e.to_string()))?;
            let outcome = match reply {
                QueryReply::Stream(mut stream) => {
                    // Stream batches as they arrive — time-to-first-row
                    // is the point, so rows print before the query's
                    // tail has even been produced.
                    let mut printed = 0usize;
                    const PRINT_CAP: usize = 50;
                    loop {
                        match stream.next_batch() {
                            Ok(Some(batch)) => {
                                if printed < PRINT_CAP {
                                    let show = (PRINT_CAP - printed).min(batch.num_rows());
                                    println!("{}", batch.to_ascii(show));
                                    printed += show;
                                }
                            }
                            Ok(None) => break,
                            Err(e) => return Err((1, e.to_string())),
                        }
                    }
                    let m = stream.metrics();
                    println!(
                        "rows={} batches={} queue_wait_us={} exec_us={} extracted={} hits={} misses={} recycled={}",
                        stream.rows(),
                        stream.batches(),
                        m.queue_wait_us,
                        m.exec_us,
                        m.records_extracted,
                        m.cache_hits,
                        m.cache_misses,
                        m.result_recycled,
                    );
                    Ok(())
                }
                QueryReply::Busy {
                    queue_depth,
                    queued,
                    estimated_rows,
                    ..
                } => Err((
                    1,
                    format!(
                        "server busy: {queued} queued (depth {queue_depth}, est {estimated_rows} rows)"
                    ),
                )),
                QueryReply::Error { code, message } => Err((1, format!("{code}: {message}"))),
            };
            outcome
        }
        "follow" => {
            let sql = rest
                .get(1)
                .cloned()
                .ok_or((2, "follow needs SQL".to_string()))?;
            let updates: Option<u32> = match rest.iter().position(|a| a == "--updates") {
                Some(p) => Some(
                    rest.get(p + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or((2, "--updates needs an integer".to_string()))?,
                ),
                None => None,
            };
            let mut client = connect(&addr).map_err(|m| (1, m))?;
            let mut sub = match client.subscribe(&sql).map_err(|e| (1, e.to_string()))? {
                SubscribeReply::Subscription(sub) => sub,
                SubscribeReply::Busy {
                    queue_depth,
                    queued,
                    ..
                } => {
                    return Err((
                        1,
                        format!("server busy: {queued} queued (depth {queue_depth})"),
                    ))
                }
                SubscribeReply::Error { code, message } => {
                    return Err((1, format!("{code}: {message}")))
                }
            };
            const PRINT_CAP: usize = 20;
            loop {
                match sub.next_update() {
                    Ok(Some(table)) => {
                        println!(
                            "update={} rows={}",
                            sub.updates().saturating_sub(1),
                            table.num_rows()
                        );
                        println!("{}", table.to_ascii(PRINT_CAP));
                        if updates.is_some_and(|n| sub.updates() >= n) {
                            sub.cancel().map_err(|e| (1, e.to_string()))?;
                            break;
                        }
                    }
                    Ok(None) => break, // server drain ended the tail
                    Err(e) => return Err((1, e.to_string())),
                }
            }
            Ok(())
        }
        "mix" => {
            let rounds: usize = match rest.iter().position(|a| a == "--rounds") {
                Some(p) => rest
                    .get(p + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or((2, "--rounds needs an integer".to_string()))?,
                None => 1,
            };
            let expect: Option<Vec<u64>> = match rest.iter().position(|a| a == "--expect") {
                Some(p) => Some(
                    rest.get(p + 1)
                        .map(|v| v.split(',').filter_map(|t| t.parse().ok()).collect())
                        .filter(|v: &Vec<u64>| v.len() == MIX.len())
                        .ok_or((2, "--expect needs A,B,C row counts".to_string()))?,
                ),
                None => None,
            };
            let mut client = connect(&addr).map_err(|m| (1, m))?;
            let mut mismatches = 0usize;
            for round in 0..rounds.max(1) {
                for (i, (name, sql)) in MIX.iter().enumerate() {
                    let (reply, busy) = client
                        .query_retrying(sql, 0, Duration::from_millis(5), 1000)
                        .map_err(|e| (1, e.to_string()))?;
                    match reply {
                        ServerReply::Result(r) => {
                            println!(
                                "mix round={round} {name} rows={} exec_us={} extracted={} busy_retries={busy}",
                                r.metrics.rows, r.metrics.exec_us, r.metrics.records_extracted,
                            );
                            if let Some(want) = &expect {
                                if r.metrics.rows != want[i] {
                                    eprintln!(
                                        "MISMATCH {name}: got {} rows, want {}",
                                        r.metrics.rows, want[i]
                                    );
                                    mismatches += 1;
                                }
                            }
                        }
                        ServerReply::Busy { .. } => {
                            return Err((1, format!("{name}: still busy after retries")))
                        }
                        ServerReply::Error { code, message } => {
                            return Err((1, format!("{name}: {code}: {message}")))
                        }
                    }
                }
            }
            if mismatches > 0 {
                return Err((3, format!("{mismatches} row-count mismatches")));
            }
            Ok(())
        }
        "stats" => {
            let mut client = connect(&addr).map_err(|m| (1, m))?;
            let stats = client.stats().map_err(|e| (1, e.to_string()))?;
            for (k, v) in stats {
                println!("{k}={v}");
            }
            Ok(())
        }
        "ping" => {
            let mut client = connect(&addr).map_err(|m| (1, m))?;
            client.ping().map_err(|e| (1, e.to_string()))?;
            println!("pong");
            Ok(())
        }
        "shutdown" => {
            let mut client = connect(&addr).map_err(|m| (1, m))?;
            client.shutdown().map_err(|e| (1, e.to_string()))?;
            println!("shutdown acknowledged");
            Ok(())
        }
        "" => Err((2, usage().to_string())),
        other => Err((2, format!("unknown command {other:?}\n{}", usage()))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => {
            eprintln!("{msg}");
            ExitCode::from(code)
        }
    }
}
