//! # lazyetl-server — serve the lazy warehouse over the wire
//!
//! The paper's pitch is time-to-first-insight for *one* analyst; the
//! roadmap's warehouse serves many. This crate turns the `Send + Sync`
//! [`lazyetl_core::Warehouse`] into a network service on plain
//! `std::net` — no async runtime, no external dependencies:
//!
//! * [`protocol`] — the length-prefixed, versioned, typed wire frames.
//!   Protocol **v2** streams results as credit-gated record-batch frames
//!   over client-chosen cursors (`Hello` handshake, `ResultStart` /
//!   `ResultBatch` / `ResultEnd` / `Credit` / `Cancel`); **v2.1** adds
//!   live-tail subscriptions (`Subscribe` / `SubUpdate`): a long-lived
//!   cursor whose result is re-pushed as a new revision whenever a
//!   repository refresh moves the warehouse generation — O(delta) per
//!   subscriber when the recycler patched the resident result. v1 peers
//!   are still served whole-frame results, bit for bit;
//! * [`server`] — an **event-driven connection layer**: one poller
//!   thread owns every connection on nonblocking sockets (connection
//!   count bounded by memory, not threads), parses frames incrementally,
//!   and multiplexes admitted queries onto the bounded worker pool.
//!   Admission control rejects with `BUSY` on queue depth **and** on
//!   estimated cost (the PR 8 cardinality estimates); credit-based
//!   backpressure bounds per-connection memory by `O(batch)` — a slow
//!   reader suspends its cursor instead of buffering its result.
//!   Graceful shutdown drains in-flight queries, finishes open cursors
//!   and snapshots the hot cache via the PR 3 durable save path;
//! * [`client`] — a blocking [`client::Client`] whose
//!   [`query`](client::Client::query) returns a
//!   [`client::QueryStream`]: batches on demand, `cancel()`, drop-aborts.
//!   [`query_all`](client::Client::query_all) keeps the old collect-to-a-
//!   table contract (see the [`client`] docs for the v1→v2 migration
//!   notes); [`connect_v1`](client::Client::connect_v1) speaks the
//!   original protocol.
//!
//! Two binaries ship with the crate:
//!
//! * `lazyetl-serve` — boot a warehouse (cold, or warm from a snapshot)
//!   and serve it; SIGTERM triggers the drain→snapshot sequence;
//! * `lazyetl-cli` — query / stats / ping / shutdown from a shell.
//!
//! ## Quick start
//!
//! ```no_run
//! use lazyetl_core::{Warehouse, WarehouseConfig};
//! use lazyetl_server::{Client, QueryReply, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let wh = Arc::new(Warehouse::open_lazy("/data/mseed", WarehouseConfig::default()).unwrap());
//! let server = Server::start(wh, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap(); // v2 handshake
//! match client.query("SELECT COUNT(*) FROM mseed.files").unwrap() {
//!     QueryReply::Stream(mut stream) => {
//!         // Batches arrive on demand; each pull grants the server one
//!         // credit. Stop pulling and the server suspends the cursor.
//!         while let Some(batch) = stream.next_batch().unwrap() {
//!             println!("{}", batch.to_ascii(10));
//!         }
//!     }
//!     QueryReply::Busy { estimated_rows, .. } => println!("busy (est {estimated_rows} rows)"),
//!     QueryReply::Error { code, message } => eprintln!("{code}: {message}"),
//! }
//!
//! let report = server.stop().unwrap(); // drain + optional snapshot
//! println!("served {} queries", report.stats.queries_ok);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{
    Client, ClientError, QueryReply, QueryStream, ServedResult, ServerReply, SubscribeReply,
    Subscription,
};
pub use protocol::{Frame, ProtoError, WireMetrics};
pub use server::{Server, ServerConfig, ServerStats, ShutdownReport};
