//! # lazyetl-server — serve the lazy warehouse over the wire
//!
//! The paper's pitch is time-to-first-insight for *one* analyst; the
//! roadmap's warehouse serves many. This crate turns the `Send + Sync`
//! [`lazyetl_core::Warehouse`] into a network service on plain
//! `std::net` — no async runtime, no external dependencies:
//!
//! * [`protocol`] — the length-prefixed, versioned, typed wire frames
//!   (query / result / error / busy / stats / ping / shutdown);
//! * [`server`] — the accept loop, the **bounded worker pool**, and the
//!   admission-control queue that answers `BUSY` instead of melting
//!   under load; graceful shutdown drains in-flight queries and
//!   snapshots the hot cache via the PR 3 durable save path;
//! * [`client`] — a blocking [`client::Client`] speaking the same
//!   protocol (used by the `lazyetl-cli` binary, the E14 loadgen and the
//!   e2e tests).
//!
//! Two binaries ship with the crate:
//!
//! * `lazyetl-serve` — boot a warehouse (cold, or warm from a snapshot)
//!   and serve it; SIGTERM triggers the drain→snapshot sequence;
//! * `lazyetl-cli` — query / stats / ping / shutdown from a shell.
//!
//! ## Quick start
//!
//! ```no_run
//! use lazyetl_core::{Warehouse, WarehouseConfig};
//! use lazyetl_server::{Client, Server, ServerConfig, ServerReply};
//! use std::sync::Arc;
//!
//! let wh = Arc::new(Warehouse::open_lazy("/data/mseed", WarehouseConfig::default()).unwrap());
//! let server = Server::start(wh, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! match client.query("SELECT COUNT(*) FROM mseed.files").unwrap() {
//!     ServerReply::Result(r) => println!("{}", r.table.to_ascii(10)),
//!     ServerReply::Busy { .. } => println!("server busy, retry"),
//!     ServerReply::Error { code, message } => eprintln!("{code}: {message}"),
//! }
//!
//! let report = server.stop().unwrap(); // drain + optional snapshot
//! println!("served {} queries", report.stats.queries_ok);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ServedResult, ServerReply};
pub use protocol::{Frame, ProtoError, WireMetrics};
pub use server::{Server, ServerConfig, ServerStats, ShutdownReport};
