//! The wire protocol: length-prefixed, versioned, typed frames.
//!
//! Every frame on the wire is one header plus one payload:
//!
//! ```text
//! +----------+---------+--------+----------------+=================+
//! | magic    | version | type   | payload length |     payload     |
//! | u16 (BE) | u8      | u8     | u32 (BE)       | `length` bytes  |
//! +----------+---------+--------+----------------+=================+
//!   0x4C5A      0x01     see below                 frame-specific
//! ```
//!
//! The magic (`"LZ"`) and version are checked on **every** frame, so a
//! desynchronized or incompatible peer is detected at the first header.
//! Payloads above the receiver's size limit are rejected before any
//! allocation ([`ProtoError::Oversize`]); the server answers with a
//! `proto.oversize` error frame and closes the connection, because a
//! stream that large cannot be resynchronized cheaply.
//!
//! # Frame types
//!
//! | type | frame          | direction | payload |
//! |------|----------------|-----------|---------|
//! | 0x01 | [`Frame::Query`]       | c → s | `u32` delay_ms, `u8` flags (reserved), SQL utf-8 |
//! | 0x02 | [`Frame::Result`]      | s → c | [`WireMetrics`] (49 bytes), then the result table in the `lazyetl-store` stream format |
//! | 0x03 | [`Frame::Error`]       | s → c | `u16` code len + code, `u32` message len + message |
//! | 0x04 | [`Frame::Busy`]        | s → c | `u32` configured queue depth, `u32` jobs queued at rejection |
//! | 0x05 | [`Frame::Stats`]       | c → s | empty |
//! | 0x06 | [`Frame::StatsReply`]  | s → c | utf-8 `key=value` lines |
//! | 0x07 | [`Frame::Ping`]        | c → s | empty |
//! | 0x08 | [`Frame::Pong`]        | s → c | empty |
//! | 0x09 | [`Frame::Shutdown`]    | c → s | empty (graceful shutdown request) |
//! | 0x0A | [`Frame::ShutdownAck`] | s → c | empty |
//!
//! All integers are big-endian. The protocol is symmetric enough that
//! both [`crate::server`] and [`crate::client`] use the same
//! [`read_frame`]/[`write_frame`] pair; direction is a convention, not a
//! mechanism.
//!
//! Error frames carry a **stable machine-readable code** (see
//! [`lazyetl_core::EtlError::code`] for warehouse errors and the
//! `proto.*` / `server.*` families defined by the serving layer) plus the
//! rendered human message. Clients dispatch on the code.

use lazyetl_store::persist::{read_table, write_table};
use lazyetl_store::Table;
use std::io::{Read, Write};
use std::sync::Arc;

/// `"LZ"` — first two bytes of every frame.
pub const MAGIC: u16 = 0x4C5A;
/// Protocol version carried (and checked) on every frame.
pub const VERSION: u8 = 1;
/// Bytes before the payload: magic + version + type + length.
pub const HEADER_LEN: usize = 8;
/// Default cap on a *request* payload accepted by the server.
pub const DEFAULT_MAX_REQUEST: u32 = 1 << 20;
/// Default cap on a *response* payload accepted by the client (result
/// tables are bigger than queries).
pub const DEFAULT_MAX_RESPONSE: u32 = 256 << 20;

const TYPE_QUERY: u8 = 0x01;
const TYPE_RESULT: u8 = 0x02;
const TYPE_ERROR: u8 = 0x03;
const TYPE_BUSY: u8 = 0x04;
const TYPE_STATS: u8 = 0x05;
const TYPE_STATS_REPLY: u8 = 0x06;
const TYPE_PING: u8 = 0x07;
const TYPE_PONG: u8 = 0x08;
const TYPE_SHUTDOWN: u8 = 0x09;
const TYPE_SHUTDOWN_ACK: u8 = 0x0A;

/// Per-request serving metrics, returned inside every result frame so
/// clients see what their query cost without a second round trip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Time the request waited in the admission queue.
    pub queue_wait_us: u64,
    /// Warehouse execution time (lazy extraction included).
    pub exec_us: u64,
    /// Result rows.
    pub rows: u64,
    /// Records decoded for this query.
    pub records_extracted: u64,
    /// Record-cache hits for this query.
    pub cache_hits: u64,
    /// Record-cache misses for this query.
    pub cache_misses: u64,
    /// Whole result served by the result recycler.
    pub result_recycled: bool,
}

const METRICS_LEN: usize = 6 * 8 + 1;

impl WireMetrics {
    /// Cache hit rate of this request (0 when it touched no records).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.queue_wait_us,
            self.exec_us,
            self.rows,
            self.records_extracted,
            self.cache_hits,
            self.cache_misses,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out.push(self.result_recycled as u8);
    }

    fn decode(bytes: &[u8]) -> Result<WireMetrics, ProtoError> {
        if bytes.len() < METRICS_LEN {
            return Err(ProtoError::Malformed("result frame too short".into()));
        }
        let u = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            u64::from_be_bytes(b)
        };
        Ok(WireMetrics {
            queue_wait_us: u(0),
            exec_us: u(1),
            rows: u(2),
            records_extracted: u(3),
            cache_hits: u(4),
            cache_misses: u(5),
            result_recycled: bytes[48] != 0,
        })
    }
}

/// One protocol frame (see the module docs for the wire layout).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Run a SQL query. `delay_ms` adds server-side think time before
    /// execution — the load-generation / admission-control test knob
    /// (the server clamps it to a few seconds; it is not a scheduler).
    Query {
        /// Milliseconds the worker sleeps before executing (0 = none).
        delay_ms: u32,
        /// The SQL text.
        sql: String,
    },
    /// A successful result: serving metrics plus the rows. The table is
    /// behind an `Arc` so the server serializes straight from the
    /// warehouse's (possibly cached/recycled) result without copying it.
    Result {
        /// What the request cost.
        metrics: WireMetrics,
        /// The result table.
        table: Arc<Table>,
    },
    /// A failure with a stable machine-readable code.
    Error {
        /// e.g. `query.parse`, `etl.internal`, `proto.oversize`.
        code: String,
        /// Rendered human-readable message.
        message: String,
    },
    /// Backpressure: the admission queue is full; retry later.
    Busy {
        /// The configured queue depth.
        queue_depth: u32,
        /// Jobs queued when the request was rejected.
        queued: u32,
    },
    /// Request the server's stats snapshot.
    Stats,
    /// Stats snapshot as utf-8 `key=value` lines.
    StatsReply {
        /// One `key=value` per line, keys stable once published.
        text: String,
    },
    /// Liveness probe.
    Ping,
    /// Liveness answer.
    Pong,
    /// Ask the server to drain in-flight queries, snapshot and exit.
    Shutdown,
    /// Shutdown acknowledged; the connection closes after this frame.
    ShutdownAck,
}

/// Protocol-level failures (distinct from in-band [`Frame::Error`]s).
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure (includes clean EOF as `UnexpectedEof`).
    Io(std::io::Error),
    /// First two bytes were not [`MAGIC`] — peer out of sync or foreign.
    BadMagic(u16),
    /// Version byte unknown to this build.
    BadVersion(u8),
    /// Unknown frame type byte.
    BadType(u8),
    /// Declared payload length exceeds the receiver's limit.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The receiver's limit.
        max: u32,
    },
    /// Payload did not decode as the declared frame type.
    Malformed(String),
}

impl ProtoError {
    /// Stable machine-readable code (what the server puts in the error
    /// frame it sends back before closing the connection).
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Io(_) => "proto.io",
            ProtoError::BadMagic(_) => "proto.magic",
            ProtoError::BadVersion(_) => "proto.version",
            ProtoError::BadType(_) => "proto.type",
            ProtoError::Oversize { .. } => "proto.oversize",
            ProtoError::Malformed(_) => "proto.malformed",
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::Oversize { len, max } => {
                write!(f, "payload of {len} bytes exceeds limit {max}")
            }
            ProtoError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

fn type_byte(frame: &Frame) -> u8 {
    match frame {
        Frame::Query { .. } => TYPE_QUERY,
        Frame::Result { .. } => TYPE_RESULT,
        Frame::Error { .. } => TYPE_ERROR,
        Frame::Busy { .. } => TYPE_BUSY,
        Frame::Stats => TYPE_STATS,
        Frame::StatsReply { .. } => TYPE_STATS_REPLY,
        Frame::Ping => TYPE_PING,
        Frame::Pong => TYPE_PONG,
        Frame::Shutdown => TYPE_SHUTDOWN,
        Frame::ShutdownAck => TYPE_SHUTDOWN_ACK,
    }
}

/// Serialize a frame to its full wire representation (header included).
pub fn frame_bytes(frame: &Frame) -> Result<Vec<u8>, ProtoError> {
    let mut payload = Vec::new();
    match frame {
        Frame::Query { delay_ms, sql } => {
            payload.extend_from_slice(&delay_ms.to_be_bytes());
            payload.push(0); // flags, reserved
            payload.extend_from_slice(sql.as_bytes());
        }
        Frame::Result { metrics, table } => {
            metrics.encode_into(&mut payload);
            write_table(table, &mut payload)
                .map_err(|e| ProtoError::Malformed(format!("table encode: {e}")))?;
        }
        Frame::Error { code, message } => {
            payload.extend_from_slice(&(code.len() as u16).to_be_bytes());
            payload.extend_from_slice(code.as_bytes());
            payload.extend_from_slice(&(message.len() as u32).to_be_bytes());
            payload.extend_from_slice(message.as_bytes());
        }
        Frame::Busy {
            queue_depth,
            queued,
        } => {
            payload.extend_from_slice(&queue_depth.to_be_bytes());
            payload.extend_from_slice(&queued.to_be_bytes());
        }
        Frame::StatsReply { text } => payload.extend_from_slice(text.as_bytes()),
        Frame::Stats | Frame::Ping | Frame::Pong | Frame::Shutdown | Frame::ShutdownAck => {}
    }
    // The length field is u32; a larger payload must fail loudly here,
    // not wrap and desynchronize the peer.
    let len = u32::try_from(payload.len()).map_err(|_| ProtoError::Oversize {
        len: u32::MAX,
        max: u32::MAX,
    })?;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.push(VERSION);
    out.push(type_byte(frame));
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Write one frame (single `write_all`, so frames never interleave even
/// on an unbuffered stream).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), ProtoError> {
    w.write_all(&frame_bytes(frame)?)?;
    w.flush()?;
    Ok(())
}

fn str_from(bytes: &[u8], what: &str) -> Result<String, ProtoError> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ProtoError::Malformed(format!("{what} is not utf-8")))
}

/// Read one frame, enforcing `max_payload` **before** allocating.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Frame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic = u16::from_be_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    if header[2] != VERSION {
        return Err(ProtoError::BadVersion(header[2]));
    }
    let ftype = header[3];
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_payload {
        return Err(ProtoError::Oversize {
            len,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    match ftype {
        TYPE_QUERY => {
            if payload.len() < 5 {
                return Err(ProtoError::Malformed("query frame too short".into()));
            }
            let delay_ms = u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]);
            // payload[4] is the reserved flags byte.
            let sql = str_from(&payload[5..], "sql")?;
            Ok(Frame::Query { delay_ms, sql })
        }
        TYPE_RESULT => {
            let metrics = WireMetrics::decode(&payload)?;
            let mut rest = &payload[METRICS_LEN..];
            let table = read_table(&mut rest)
                .map_err(|e| ProtoError::Malformed(format!("table decode: {e}")))?;
            Ok(Frame::Result {
                metrics,
                table: Arc::new(table),
            })
        }
        TYPE_ERROR => {
            if payload.len() < 2 {
                return Err(ProtoError::Malformed("error frame too short".into()));
            }
            let code_len = u16::from_be_bytes([payload[0], payload[1]]) as usize;
            if payload.len() < 2 + code_len + 4 {
                return Err(ProtoError::Malformed("error frame truncated".into()));
            }
            let code = str_from(&payload[2..2 + code_len], "error code")?;
            let off = 2 + code_len;
            let msg_len = u32::from_be_bytes([
                payload[off],
                payload[off + 1],
                payload[off + 2],
                payload[off + 3],
            ]) as usize;
            if payload.len() < off + 4 + msg_len {
                return Err(ProtoError::Malformed("error message truncated".into()));
            }
            let message = str_from(&payload[off + 4..off + 4 + msg_len], "error message")?;
            Ok(Frame::Error { code, message })
        }
        TYPE_BUSY => {
            if payload.len() < 8 {
                return Err(ProtoError::Malformed("busy frame too short".into()));
            }
            Ok(Frame::Busy {
                queue_depth: u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]),
                queued: u32::from_be_bytes([payload[4], payload[5], payload[6], payload[7]]),
            })
        }
        TYPE_STATS => Ok(Frame::Stats),
        TYPE_STATS_REPLY => Ok(Frame::StatsReply {
            text: str_from(&payload, "stats")?,
        }),
        TYPE_PING => Ok(Frame::Ping),
        TYPE_PONG => Ok(Frame::Pong),
        TYPE_SHUTDOWN => Ok(Frame::Shutdown),
        TYPE_SHUTDOWN_ACK => Ok(Frame::ShutdownAck),
        other => Err(ProtoError::BadType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{Column, DataType, Field, Schema, Value};

    fn roundtrip(frame: Frame) -> Frame {
        let bytes = frame_bytes(&frame).unwrap();
        read_frame(&mut bytes.as_slice(), DEFAULT_MAX_RESPONSE).unwrap()
    }

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("station", DataType::Utf8),
            Field::nullable("value", DataType::Float64),
        ])
        .unwrap();
        let cols = vec![
            Column::from_values(
                DataType::Utf8,
                &[Value::Utf8("HGN".into()), Value::Utf8("ISK".into())],
            )
            .unwrap(),
            Column::from_values(DataType::Float64, &[Value::Float64(1.5), Value::Null]).unwrap(),
        ];
        Table::new(schema, cols).unwrap()
    }

    #[test]
    fn every_frame_type_roundtrips() {
        let frames = vec![
            Frame::Query {
                delay_ms: 25,
                sql: "SELECT 1".into(),
            },
            Frame::Result {
                metrics: WireMetrics {
                    queue_wait_us: 1,
                    exec_us: 2,
                    rows: 2,
                    records_extracted: 3,
                    cache_hits: 4,
                    cache_misses: 5,
                    result_recycled: true,
                },
                table: Arc::new(sample_table()),
            },
            Frame::Error {
                code: "query.parse".into(),
                message: "boom".into(),
            },
            Frame::Busy {
                queue_depth: 4,
                queued: 4,
            },
            Frame::Stats,
            Frame::StatsReply {
                text: "a=1\nb=2\n".into(),
            },
            Frame::Ping,
            Frame::Pong,
            Frame::Shutdown,
            Frame::ShutdownAck,
        ];
        for f in frames {
            assert_eq!(roundtrip(f.clone()), f);
        }
    }

    #[test]
    fn bad_magic_version_type_detected() {
        let mut bytes = frame_bytes(&Frame::Ping).unwrap();
        bytes[0] = 0xFF;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), 1024),
            Err(ProtoError::BadMagic(_))
        ));
        let mut bytes = frame_bytes(&Frame::Ping).unwrap();
        bytes[2] = 99;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), 1024),
            Err(ProtoError::BadVersion(99))
        ));
        let mut bytes = frame_bytes(&Frame::Ping).unwrap();
        bytes[3] = 0x7F;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), 1024),
            Err(ProtoError::BadType(0x7F))
        ));
    }

    #[test]
    fn oversize_rejected_before_allocation() {
        let mut bytes = frame_bytes(&Frame::Stats).unwrap();
        // Claim a huge payload; nothing follows.
        bytes[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        match read_frame(&mut bytes.as_slice(), 1024) {
            Err(ProtoError::Oversize { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let bytes = frame_bytes(&Frame::Query {
            delay_ms: 0,
            sql: "SELECT 1".into(),
        })
        .unwrap();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            read_frame(&mut &cut[..], 1024),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn malformed_query_payload_detected() {
        // A query frame whose payload is shorter than the fixed prefix.
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(VERSION);
        out.push(0x01);
        out.extend_from_slice(&2u32.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        assert!(matches!(
            read_frame(&mut out.as_slice(), 1024),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn proto_error_codes_are_stable() {
        assert_eq!(ProtoError::BadMagic(0).code(), "proto.magic");
        assert_eq!(ProtoError::BadVersion(0).code(), "proto.version");
        assert_eq!(ProtoError::BadType(0).code(), "proto.type");
        assert_eq!(
            ProtoError::Oversize { len: 1, max: 0 }.code(),
            "proto.oversize"
        );
        assert_eq!(
            ProtoError::Malformed(String::new()).code(),
            "proto.malformed"
        );
    }
}
