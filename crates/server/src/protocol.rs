//! The wire protocol: length-prefixed, versioned, typed frames — v1
//! (whole-frame results) and v2 (streamed result cursors).
//!
//! Every frame on the wire is one header plus one payload:
//!
//! ```text
//! +----------+---------+--------+----------------+=================+
//! | magic    | version | type   | payload length |     payload     |
//! | u16 (BE) | u8      | u8     | u32 (BE)       | `length` bytes  |
//! +----------+---------+--------+----------------+=================+
//!   0x4C5A     1 or 2    see below                 frame-specific
//! ```
//!
//! The magic (`"LZ"`) is checked on **every** frame, so a desynchronized
//! or foreign peer is detected at the first header. The version byte
//! names the **minimum protocol revision that can parse the frame**:
//! every v1 frame still carries `1` (v1 peers keep working bit for bit),
//! the streaming frames introduced by protocol v2 carry `2`. Payloads
//! above the receiver's size limit are rejected before any allocation
//! ([`ProtoError::Oversize`], stable code `proto.oversize`) — **on both
//! sides**: the server guards its request cap, the client guards its
//! response cap, and [`frame_bytes_checked`] lets a sender refuse to emit
//! an oversized frame locally instead of surfacing a raw I/O error after
//! the peer slams the connection.
//!
//! # Frame types
//!
//! | type | frame          | dir   | since | payload |
//! |------|----------------|-------|-------|---------|
//! | 0x01 | [`Frame::Query`]       | c → s | v1 | `u32` delay_ms, `u8` flags (reserved), SQL utf-8 |
//! | 0x02 | [`Frame::Result`]      | s → c | v1 | [`WireMetrics`] (49 bytes), then the result table in the `lazyetl-store` stream format |
//! | 0x03 | [`Frame::Error`]       | s → c | v1 | `u16` code len + code, `u32` message len + message |
//! | 0x04 | [`Frame::Busy`]        | s → c | v1 | `u32` queue depth, `u32` queued; v2 appends `u64` estimated rows + `u64` cost budget (v1 decoders ignore the tail) |
//! | 0x05 | [`Frame::Stats`]       | c → s | v1 | empty |
//! | 0x06 | [`Frame::StatsReply`]  | s → c | v1 | utf-8 `key=value` lines |
//! | 0x07 | [`Frame::Ping`]        | c → s | v1 | empty |
//! | 0x08 | [`Frame::Pong`]        | s → c | v1 | empty |
//! | 0x09 | [`Frame::Shutdown`]    | c → s | v1 | empty (graceful shutdown request) |
//! | 0x0A | [`Frame::ShutdownAck`] | s → c | v1 | empty |
//! | 0x0B | [`Frame::Hello`]       | c → s | v2 | `u8` max protocol version the client speaks |
//! | 0x0C | [`Frame::HelloAck`]    | s → c | v2 | `u8` negotiated version, `u32` batch rows, `u32` initial credit |
//! | 0x0D | [`Frame::QueryV2`]     | c → s | v2 | `u32` cursor id, `u32` delay_ms, `u8` flags, SQL utf-8 |
//! | 0x0E | [`Frame::ResultStart`] | s → c | v2 | `u32` cursor, [`WireMetrics`], then an **empty** table carrying the result schema |
//! | 0x0F | [`Frame::ResultBatch`] | s → c | v2 | `u32` cursor, `u32` seq, then one record batch in the store stream format |
//! | 0x10 | [`Frame::ResultEnd`]   | s → c | v2 | `u32` cursor, `u32` batches, `u64` rows, `u8` cancelled |
//! | 0x11 | [`Frame::Credit`]      | c → s | v2 | `u32` cursor, `u32` batches granted |
//! | 0x12 | [`Frame::Cancel`]      | c → s | v2 | `u32` cursor |
//! | 0x13 | [`Frame::Subscribe`]   | c → s | v2.1 | `u32` cursor id, SQL utf-8 |
//! | 0x14 | [`Frame::SubUpdate`]   | s → c | v2.1 | `u32` cursor, `u32` update seq, `u64` rows in this revision |
//!
//! All integers are big-endian. Both [`crate::server`] and
//! [`crate::client`] use the same encode/decode pair; direction is a
//! convention, not a mechanism.
//!
//! # The v2 cursor lifecycle
//!
//! A v2 connection opens with `Hello`/`HelloAck` version negotiation (a
//! peer whose first frame is anything else is served protocol v1,
//! whole-frame results included — that is the compatibility path). A
//! `QueryV2` carries a **client-chosen cursor id**; the server answers
//! with exactly one of `Busy`, `Error`, or a `ResultStart` followed by
//! zero or more `ResultBatch` frames and one `ResultEnd`. Batches only
//! flow while the cursor has **credit**: the server spends one credit per
//! batch, the client replenishes with `Credit` as it consumes. A stalled
//! reader therefore suspends its cursor server-side instead of forcing
//! the server to buffer the encoded result — server memory per connection
//! is bounded by the outbound-buffer ceiling, not by result size.
//! `Cancel` ends a cursor early; the server acknowledges with a
//! `ResultEnd` whose `cancelled` flag is set (a cancel can race the
//! natural end of stream — a non-cancelled `ResultEnd` for the same
//! cursor is the benign outcome of that race).
//!
//! # Live-tail subscriptions (protocol v2.1)
//!
//! A v2.1 connection (both peers `Hello`-negotiated version ≥ 3) may open
//! a **long-lived cursor** with `Subscribe`. The server answers exactly
//! like a streamed query — `ResultStart` then credit-gated `ResultBatch`
//! frames — but ends each result *revision* with a [`Frame::SubUpdate`]
//! instead of `ResultEnd`, and keeps the cursor open. Whenever a
//! warehouse refresh lands (and the result recycler patched or recomputed
//! the underlying result — see `lazyetl_core::qcache`), the server
//! re-runs the subscription — an O(delta) recycler hit in the common
//! insert-only case — and pushes the updated result as another run of
//! `ResultBatch` frames closed by the next `SubUpdate`. Credit,
//! backpressure and `Cancel` are exactly the v2 machinery: a subscriber
//! that stops reading suspends its subscription server-side, and `Cancel`
//! (or connection close, or server drain) ends it with a cancelled
//! `ResultEnd`.
//!
//! Error frames carry a **stable machine-readable code** (see
//! [`lazyetl_core::EtlError::code`] for warehouse errors and the
//! `proto.*` / `server.*` families defined by the serving layer) plus the
//! rendered human message. Clients dispatch on the code.

use lazyetl_store::persist::{read_table, write_table};
use lazyetl_store::Table;
use std::io::{Read, Write};
use std::sync::Arc;

/// `"LZ"` — first two bytes of every frame.
pub const MAGIC: u16 = 0x4C5A;
/// Protocol version of the original whole-frame protocol. Carried on
/// every frame type that already existed in v1.
pub const VERSION: u8 = 1;
/// Protocol version that introduced streamed result cursors. Carried on
/// the v2-only frame types.
pub const VERSION_V2: u8 = 2;
/// Protocol version that introduced live-tail subscriptions
/// (`Subscribe`/`SubUpdate`). Carried on the v2.1-only frame types.
pub const VERSION_V2_1: u8 = 3;
/// Highest protocol revision this build speaks.
pub const MAX_VERSION: u8 = VERSION_V2_1;
/// Bytes before the payload: magic + version + type + length.
pub const HEADER_LEN: usize = 8;
/// Default cap on a *request* payload accepted by the server — and, since
/// the cap is symmetric, the default cap a [`crate::client::Client`]
/// enforces on its own outgoing requests.
pub const DEFAULT_MAX_REQUEST: u32 = 1 << 20;
/// Default cap on a *response* payload accepted by the client (v1 result
/// frames carry whole tables; v2 batches are far smaller).
pub const DEFAULT_MAX_RESPONSE: u32 = 256 << 20;

const TYPE_QUERY: u8 = 0x01;
const TYPE_RESULT: u8 = 0x02;
const TYPE_ERROR: u8 = 0x03;
const TYPE_BUSY: u8 = 0x04;
const TYPE_STATS: u8 = 0x05;
const TYPE_STATS_REPLY: u8 = 0x06;
const TYPE_PING: u8 = 0x07;
const TYPE_PONG: u8 = 0x08;
const TYPE_SHUTDOWN: u8 = 0x09;
const TYPE_SHUTDOWN_ACK: u8 = 0x0A;
const TYPE_HELLO: u8 = 0x0B;
const TYPE_HELLO_ACK: u8 = 0x0C;
const TYPE_QUERY_V2: u8 = 0x0D;
const TYPE_RESULT_START: u8 = 0x0E;
const TYPE_RESULT_BATCH: u8 = 0x0F;
const TYPE_RESULT_END: u8 = 0x10;
const TYPE_CREDIT: u8 = 0x11;
const TYPE_CANCEL: u8 = 0x12;
const TYPE_SUBSCRIBE: u8 = 0x13;
const TYPE_SUB_UPDATE: u8 = 0x14;

/// Per-request serving metrics, returned inside every result frame so
/// clients see what their query cost without a second round trip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Time the request waited in the admission queue.
    pub queue_wait_us: u64,
    /// Warehouse execution time (lazy extraction included).
    pub exec_us: u64,
    /// Result rows.
    pub rows: u64,
    /// Records decoded for this query.
    pub records_extracted: u64,
    /// Record-cache hits for this query.
    pub cache_hits: u64,
    /// Record-cache misses for this query.
    pub cache_misses: u64,
    /// Whole result served by the result recycler.
    pub result_recycled: bool,
}

const METRICS_LEN: usize = 6 * 8 + 1;

impl WireMetrics {
    /// Cache hit rate of this request (0 when it touched no records).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        for v in [
            self.queue_wait_us,
            self.exec_us,
            self.rows,
            self.records_extracted,
            self.cache_hits,
            self.cache_misses,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out.push(self.result_recycled as u8);
    }

    fn decode(bytes: &[u8]) -> Result<WireMetrics, ProtoError> {
        if bytes.len() < METRICS_LEN {
            return Err(ProtoError::Malformed("result frame too short".into()));
        }
        let u = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            u64::from_be_bytes(b)
        };
        Ok(WireMetrics {
            queue_wait_us: u(0),
            exec_us: u(1),
            rows: u(2),
            records_extracted: u(3),
            cache_hits: u(4),
            cache_misses: u(5),
            result_recycled: bytes[48] != 0,
        })
    }
}

/// One protocol frame (see the module docs for the wire layout).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Run a SQL query, v1 style: the whole result comes back in one
    /// `Result` frame. `delay_ms` adds server-side think time before
    /// execution — the load-generation / admission-control test knob
    /// (the server clamps it to a few seconds; it is not a scheduler).
    Query {
        /// Milliseconds the worker sleeps before executing (0 = none).
        delay_ms: u32,
        /// The SQL text.
        sql: String,
    },
    /// A successful v1 result: serving metrics plus the rows. The table
    /// is behind an `Arc` so the server serializes straight from the
    /// warehouse's (possibly cached/recycled) result without copying it.
    Result {
        /// What the request cost.
        metrics: WireMetrics,
        /// The result table.
        table: Arc<Table>,
    },
    /// A failure with a stable machine-readable code.
    Error {
        /// e.g. `query.parse`, `etl.internal`, `proto.oversize`.
        code: String,
        /// Rendered human-readable message.
        message: String,
    },
    /// Backpressure: admission control rejected the query; retry later.
    /// The estimate fields are meaningful on v2 connections with
    /// cost-based admission configured (0 = unknown/not costed) — they
    /// let a client back off proportionally to how expensive its query
    /// looked, instead of blind fixed backoff.
    Busy {
        /// The configured queue depth.
        queue_depth: u32,
        /// Jobs queued when the request was rejected.
        queued: u32,
        /// The planner's row estimate for the rejected query (0 = not
        /// estimated).
        estimated_rows: u64,
        /// The server's configured admission cost budget in estimated
        /// rows (0 = queue-depth-only admission).
        cost_budget: u64,
    },
    /// Request the server's stats snapshot.
    Stats,
    /// Stats snapshot as utf-8 `key=value` lines.
    StatsReply {
        /// One `key=value` per line, keys stable once published.
        text: String,
    },
    /// Liveness probe.
    Ping,
    /// Liveness answer.
    Pong,
    /// Ask the server to drain in-flight queries, snapshot and exit.
    Shutdown,
    /// Shutdown acknowledged; the connection closes after this frame.
    ShutdownAck,
    /// Version negotiation: the first frame a v2-capable client sends.
    Hello {
        /// Highest protocol version the client speaks.
        max_version: u8,
    },
    /// The server's half of negotiation: the agreed version plus the
    /// streaming parameters every cursor on this connection will use.
    HelloAck {
        /// Negotiated protocol version (min of both peers' maximums).
        version: u8,
        /// Rows per `ResultBatch` frame.
        batch_rows: u32,
        /// Batches the server will send per cursor before waiting for
        /// `Credit`.
        initial_credit: u32,
    },
    /// Run a SQL query on a v2 connection, opening a streamed cursor.
    QueryV2 {
        /// Client-chosen cursor id (unique among this connection's live
        /// cursors).
        cursor: u32,
        /// Milliseconds the worker sleeps before executing (0 = none).
        delay_ms: u32,
        /// The SQL text.
        sql: String,
    },
    /// The cursor opened: metrics plus an **empty** table carrying the
    /// result schema (so a zero-row result still tells the client its
    /// shape, and a collecting client has something to append into).
    ResultStart {
        /// The cursor this stream belongs to.
        cursor: u32,
        /// What the request cost.
        metrics: WireMetrics,
        /// Zero-row table with the result schema.
        schema: Arc<Table>,
    },
    /// One record batch of a streamed result.
    ResultBatch {
        /// The cursor this batch belongs to.
        cursor: u32,
        /// Batch sequence number, 0-based.
        seq: u32,
        /// The rows.
        table: Arc<Table>,
    },
    /// End of a streamed result (or the acknowledgement of a `Cancel`).
    ResultEnd {
        /// The cursor that ended.
        cursor: u32,
        /// Batches streamed before the end.
        batches: u32,
        /// Total rows streamed.
        rows: u64,
        /// True when the stream ended because of a `Cancel` (or the
        /// connection began closing), not because it was exhausted.
        cancelled: bool,
    },
    /// Flow control: grant the server `n` more batches on a cursor.
    Credit {
        /// The cursor being replenished.
        cursor: u32,
        /// Additional batches the server may send.
        n: u32,
    },
    /// Abort a cursor. The server frees it (and skips the query if it is
    /// still queued) and answers with a cancelled `ResultEnd`.
    Cancel {
        /// The cursor to abort.
        cursor: u32,
    },
    /// Open a long-lived subscription cursor (protocol v2.1): the server
    /// streams the current result, then pushes an updated result run
    /// whenever a warehouse refresh changes it, each revision closed by a
    /// [`Frame::SubUpdate`]. Ended by `Cancel` / connection close / drain.
    Subscribe {
        /// Client-chosen cursor id (same id space as `QueryV2` cursors).
        cursor: u32,
        /// The SQL text the subscription tails.
        sql: String,
    },
    /// End of one pushed result revision on a subscription cursor. The
    /// cursor stays open; the next revision starts with the next
    /// `ResultBatch`.
    SubUpdate {
        /// The subscription cursor.
        cursor: u32,
        /// Revision sequence number, 0-based (0 = the initial result).
        update: u32,
        /// Rows in this revision (the full refreshed result, not a diff).
        rows: u64,
    },
}

/// Protocol-level failures (distinct from in-band [`Frame::Error`]s).
#[derive(Debug)]
pub enum ProtoError {
    /// Transport failure (includes clean EOF as `UnexpectedEof`).
    Io(std::io::Error),
    /// First two bytes were not [`MAGIC`] — peer out of sync or foreign.
    BadMagic(u16),
    /// Version byte above anything this build speaks.
    BadVersion(u8),
    /// Unknown frame type byte.
    BadType(u8),
    /// Declared payload length exceeds the receiver's limit — or, on the
    /// send side, the frame a caller asked to emit exceeds the limit it
    /// configured for itself.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The receiver's (or sender's) limit.
        max: u32,
    },
    /// Payload did not decode as the declared frame type.
    Malformed(String),
}

impl ProtoError {
    /// Stable machine-readable code (what the server puts in the error
    /// frame it sends back before closing the connection, and what
    /// [`crate::client::ClientError::code`] reports for local failures).
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::Io(_) => "proto.io",
            ProtoError::BadMagic(_) => "proto.magic",
            ProtoError::BadVersion(_) => "proto.version",
            ProtoError::BadType(_) => "proto.type",
            ProtoError::Oversize { .. } => "proto.oversize",
            ProtoError::Malformed(_) => "proto.malformed",
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::Oversize { len, max } => {
                write!(f, "payload of {len} bytes exceeds limit {max}")
            }
            ProtoError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

fn type_byte(frame: &Frame) -> u8 {
    match frame {
        Frame::Query { .. } => TYPE_QUERY,
        Frame::Result { .. } => TYPE_RESULT,
        Frame::Error { .. } => TYPE_ERROR,
        Frame::Busy { .. } => TYPE_BUSY,
        Frame::Stats => TYPE_STATS,
        Frame::StatsReply { .. } => TYPE_STATS_REPLY,
        Frame::Ping => TYPE_PING,
        Frame::Pong => TYPE_PONG,
        Frame::Shutdown => TYPE_SHUTDOWN,
        Frame::ShutdownAck => TYPE_SHUTDOWN_ACK,
        Frame::Hello { .. } => TYPE_HELLO,
        Frame::HelloAck { .. } => TYPE_HELLO_ACK,
        Frame::QueryV2 { .. } => TYPE_QUERY_V2,
        Frame::ResultStart { .. } => TYPE_RESULT_START,
        Frame::ResultBatch { .. } => TYPE_RESULT_BATCH,
        Frame::ResultEnd { .. } => TYPE_RESULT_END,
        Frame::Credit { .. } => TYPE_CREDIT,
        Frame::Cancel { .. } => TYPE_CANCEL,
        Frame::Subscribe { .. } => TYPE_SUBSCRIBE,
        Frame::SubUpdate { .. } => TYPE_SUB_UPDATE,
    }
}

/// The version byte a frame carries: the minimum protocol revision that
/// can parse it. v1 peers never receive (or send) a frame stamped 2.
fn version_byte(frame: &Frame) -> u8 {
    match frame {
        Frame::Subscribe { .. } | Frame::SubUpdate { .. } => VERSION_V2_1,
        Frame::Hello { .. }
        | Frame::HelloAck { .. }
        | Frame::QueryV2 { .. }
        | Frame::ResultStart { .. }
        | Frame::ResultBatch { .. }
        | Frame::ResultEnd { .. }
        | Frame::Credit { .. }
        | Frame::Cancel { .. } => VERSION_V2,
        _ => VERSION,
    }
}

/// Serialize a frame to its full wire representation (header included).
pub fn frame_bytes(frame: &Frame) -> Result<Vec<u8>, ProtoError> {
    let mut payload = Vec::new();
    match frame {
        Frame::Query { delay_ms, sql } => {
            payload.extend_from_slice(&delay_ms.to_be_bytes());
            payload.push(0); // flags, reserved
            payload.extend_from_slice(sql.as_bytes());
        }
        Frame::Result { metrics, table } => {
            metrics.encode_into(&mut payload);
            write_table(table, &mut payload)
                .map_err(|e| ProtoError::Malformed(format!("table encode: {e}")))?;
        }
        Frame::Error { code, message } => {
            payload.extend_from_slice(&(code.len() as u16).to_be_bytes());
            payload.extend_from_slice(code.as_bytes());
            payload.extend_from_slice(&(message.len() as u32).to_be_bytes());
            payload.extend_from_slice(message.as_bytes());
        }
        Frame::Busy {
            queue_depth,
            queued,
            estimated_rows,
            cost_budget,
        } => {
            payload.extend_from_slice(&queue_depth.to_be_bytes());
            payload.extend_from_slice(&queued.to_be_bytes());
            // v2 tail; a v1 decoder reads the first 8 bytes and ignores it.
            payload.extend_from_slice(&estimated_rows.to_be_bytes());
            payload.extend_from_slice(&cost_budget.to_be_bytes());
        }
        Frame::StatsReply { text } => payload.extend_from_slice(text.as_bytes()),
        Frame::Hello { max_version } => payload.push(*max_version),
        Frame::HelloAck {
            version,
            batch_rows,
            initial_credit,
        } => {
            payload.push(*version);
            payload.extend_from_slice(&batch_rows.to_be_bytes());
            payload.extend_from_slice(&initial_credit.to_be_bytes());
        }
        Frame::QueryV2 {
            cursor,
            delay_ms,
            sql,
        } => {
            payload.extend_from_slice(&cursor.to_be_bytes());
            payload.extend_from_slice(&delay_ms.to_be_bytes());
            payload.push(0); // flags, reserved
            payload.extend_from_slice(sql.as_bytes());
        }
        Frame::ResultStart {
            cursor,
            metrics,
            schema,
        } => {
            payload.extend_from_slice(&cursor.to_be_bytes());
            metrics.encode_into(&mut payload);
            write_table(schema, &mut payload)
                .map_err(|e| ProtoError::Malformed(format!("schema encode: {e}")))?;
        }
        Frame::ResultBatch { cursor, seq, table } => {
            payload.extend_from_slice(&cursor.to_be_bytes());
            payload.extend_from_slice(&seq.to_be_bytes());
            write_table(table, &mut payload)
                .map_err(|e| ProtoError::Malformed(format!("batch encode: {e}")))?;
        }
        Frame::ResultEnd {
            cursor,
            batches,
            rows,
            cancelled,
        } => {
            payload.extend_from_slice(&cursor.to_be_bytes());
            payload.extend_from_slice(&batches.to_be_bytes());
            payload.extend_from_slice(&rows.to_be_bytes());
            payload.push(*cancelled as u8);
        }
        Frame::Credit { cursor, n } => {
            payload.extend_from_slice(&cursor.to_be_bytes());
            payload.extend_from_slice(&n.to_be_bytes());
        }
        Frame::Cancel { cursor } => payload.extend_from_slice(&cursor.to_be_bytes()),
        Frame::Subscribe { cursor, sql } => {
            payload.extend_from_slice(&cursor.to_be_bytes());
            payload.extend_from_slice(sql.as_bytes());
        }
        Frame::SubUpdate {
            cursor,
            update,
            rows,
        } => {
            payload.extend_from_slice(&cursor.to_be_bytes());
            payload.extend_from_slice(&update.to_be_bytes());
            payload.extend_from_slice(&rows.to_be_bytes());
        }
        Frame::Stats | Frame::Ping | Frame::Pong | Frame::Shutdown | Frame::ShutdownAck => {}
    }
    // The length field is u32; a larger payload must fail loudly here,
    // not wrap and desynchronize the peer.
    let len = u32::try_from(payload.len()).map_err(|_| ProtoError::Oversize {
        len: u32::MAX,
        max: u32::MAX,
    })?;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.push(version_byte(frame));
    out.push(type_byte(frame));
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Like [`frame_bytes`], but refuse to build a frame whose payload
/// exceeds `max_payload` — the **sender-side** half of the size cap, so
/// an oversized request fails locally with the stable `proto.oversize`
/// code instead of as a raw I/O error when the receiver closes the
/// connection.
pub fn frame_bytes_checked(frame: &Frame, max_payload: u32) -> Result<Vec<u8>, ProtoError> {
    let bytes = frame_bytes(frame)?;
    let len = (bytes.len() - HEADER_LEN) as u32;
    if len > max_payload {
        return Err(ProtoError::Oversize {
            len,
            max: max_payload,
        });
    }
    Ok(bytes)
}

/// Write one frame (single `write_all`, so frames never interleave even
/// on an unbuffered stream).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), ProtoError> {
    w.write_all(&frame_bytes(frame)?)?;
    w.flush()?;
    Ok(())
}

fn str_from(bytes: &[u8], what: &str) -> Result<String, ProtoError> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ProtoError::Malformed(format!("{what} is not utf-8")))
}

fn u32_at(payload: &[u8], off: usize, what: &str) -> Result<u32, ProtoError> {
    payload
        .get(off..off + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| ProtoError::Malformed(format!("{what} frame too short")))
}

fn u64_at(payload: &[u8], off: usize, what: &str) -> Result<u64, ProtoError> {
    payload
        .get(off..off + 8)
        .map(|b| {
            let mut a = [0u8; 8];
            a.copy_from_slice(b);
            u64::from_be_bytes(a)
        })
        .ok_or_else(|| ProtoError::Malformed(format!("{what} frame too short")))
}

/// Decode one payload of the given frame type. Shared by the blocking
/// reader ([`read_frame`]) and the incremental parser ([`decode_frame`]).
fn decode_payload(ftype: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
    match ftype {
        TYPE_QUERY => {
            if payload.len() < 5 {
                return Err(ProtoError::Malformed("query frame too short".into()));
            }
            let delay_ms = u32_at(payload, 0, "query")?;
            // payload[4] is the reserved flags byte.
            let sql = str_from(&payload[5..], "sql")?;
            Ok(Frame::Query { delay_ms, sql })
        }
        TYPE_RESULT => {
            let metrics = WireMetrics::decode(payload)?;
            let mut rest = &payload[METRICS_LEN..];
            let table = read_table(&mut rest)
                .map_err(|e| ProtoError::Malformed(format!("table decode: {e}")))?;
            Ok(Frame::Result {
                metrics,
                table: Arc::new(table),
            })
        }
        TYPE_ERROR => {
            if payload.len() < 2 {
                return Err(ProtoError::Malformed("error frame too short".into()));
            }
            let code_len = u16::from_be_bytes([payload[0], payload[1]]) as usize;
            if payload.len() < 2 + code_len + 4 {
                return Err(ProtoError::Malformed("error frame truncated".into()));
            }
            let code = str_from(&payload[2..2 + code_len], "error code")?;
            let off = 2 + code_len;
            let msg_len = u32_at(payload, off, "error")? as usize;
            if payload.len() < off + 4 + msg_len {
                return Err(ProtoError::Malformed("error message truncated".into()));
            }
            let message = str_from(&payload[off + 4..off + 4 + msg_len], "error message")?;
            Ok(Frame::Error { code, message })
        }
        TYPE_BUSY => {
            if payload.len() < 8 {
                return Err(ProtoError::Malformed("busy frame too short".into()));
            }
            // The estimate tail only exists on v2 frames; default 0.
            let (estimated_rows, cost_budget) = if payload.len() >= 24 {
                (u64_at(payload, 8, "busy")?, u64_at(payload, 16, "busy")?)
            } else {
                (0, 0)
            };
            Ok(Frame::Busy {
                queue_depth: u32_at(payload, 0, "busy")?,
                queued: u32_at(payload, 4, "busy")?,
                estimated_rows,
                cost_budget,
            })
        }
        TYPE_STATS => Ok(Frame::Stats),
        TYPE_STATS_REPLY => Ok(Frame::StatsReply {
            text: str_from(payload, "stats")?,
        }),
        TYPE_PING => Ok(Frame::Ping),
        TYPE_PONG => Ok(Frame::Pong),
        TYPE_SHUTDOWN => Ok(Frame::Shutdown),
        TYPE_SHUTDOWN_ACK => Ok(Frame::ShutdownAck),
        TYPE_HELLO => {
            let max_version = *payload
                .first()
                .ok_or_else(|| ProtoError::Malformed("hello frame too short".into()))?;
            Ok(Frame::Hello { max_version })
        }
        TYPE_HELLO_ACK => {
            if payload.len() < 9 {
                return Err(ProtoError::Malformed("hello-ack frame too short".into()));
            }
            Ok(Frame::HelloAck {
                version: payload[0],
                batch_rows: u32_at(payload, 1, "hello-ack")?,
                initial_credit: u32_at(payload, 5, "hello-ack")?,
            })
        }
        TYPE_QUERY_V2 => {
            if payload.len() < 9 {
                return Err(ProtoError::Malformed("query-v2 frame too short".into()));
            }
            let cursor = u32_at(payload, 0, "query-v2")?;
            let delay_ms = u32_at(payload, 4, "query-v2")?;
            // payload[8] is the reserved flags byte.
            let sql = str_from(&payload[9..], "sql")?;
            Ok(Frame::QueryV2 {
                cursor,
                delay_ms,
                sql,
            })
        }
        TYPE_RESULT_START => {
            if payload.len() < 4 + METRICS_LEN {
                return Err(ProtoError::Malformed("result-start frame too short".into()));
            }
            let cursor = u32_at(payload, 0, "result-start")?;
            let metrics = WireMetrics::decode(&payload[4..])?;
            let mut rest = &payload[4 + METRICS_LEN..];
            let schema = read_table(&mut rest)
                .map_err(|e| ProtoError::Malformed(format!("schema decode: {e}")))?;
            Ok(Frame::ResultStart {
                cursor,
                metrics,
                schema: Arc::new(schema),
            })
        }
        TYPE_RESULT_BATCH => {
            if payload.len() < 8 {
                return Err(ProtoError::Malformed("result-batch frame too short".into()));
            }
            let cursor = u32_at(payload, 0, "result-batch")?;
            let seq = u32_at(payload, 4, "result-batch")?;
            let mut rest = &payload[8..];
            let table = read_table(&mut rest)
                .map_err(|e| ProtoError::Malformed(format!("batch decode: {e}")))?;
            Ok(Frame::ResultBatch {
                cursor,
                seq,
                table: Arc::new(table),
            })
        }
        TYPE_RESULT_END => {
            if payload.len() < 17 {
                return Err(ProtoError::Malformed("result-end frame too short".into()));
            }
            Ok(Frame::ResultEnd {
                cursor: u32_at(payload, 0, "result-end")?,
                batches: u32_at(payload, 4, "result-end")?,
                rows: u64_at(payload, 8, "result-end")?,
                cancelled: payload[16] != 0,
            })
        }
        TYPE_CREDIT => {
            if payload.len() < 8 {
                return Err(ProtoError::Malformed("credit frame too short".into()));
            }
            Ok(Frame::Credit {
                cursor: u32_at(payload, 0, "credit")?,
                n: u32_at(payload, 4, "credit")?,
            })
        }
        TYPE_CANCEL => {
            if payload.len() < 4 {
                return Err(ProtoError::Malformed("cancel frame too short".into()));
            }
            Ok(Frame::Cancel {
                cursor: u32_at(payload, 0, "cancel")?,
            })
        }
        TYPE_SUBSCRIBE => {
            if payload.len() < 4 {
                return Err(ProtoError::Malformed("subscribe frame too short".into()));
            }
            Ok(Frame::Subscribe {
                cursor: u32_at(payload, 0, "subscribe")?,
                sql: str_from(&payload[4..], "sql")?,
            })
        }
        TYPE_SUB_UPDATE => {
            if payload.len() < 16 {
                return Err(ProtoError::Malformed("sub-update frame too short".into()));
            }
            Ok(Frame::SubUpdate {
                cursor: u32_at(payload, 0, "sub-update")?,
                update: u32_at(payload, 4, "sub-update")?,
                rows: u64_at(payload, 8, "sub-update")?,
            })
        }
        other => Err(ProtoError::BadType(other)),
    }
}

/// Validate a header's magic + version and extract (type, payload len).
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32), ProtoError> {
    let magic = u16::from_be_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    if header[2] == 0 || header[2] > MAX_VERSION {
        return Err(ProtoError::BadVersion(header[2]));
    }
    let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    Ok((header[3], len))
}

/// Read one frame from a blocking stream, enforcing `max_payload`
/// **before** allocating.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Frame, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (ftype, len) = parse_header(&header)?;
    if len > max_payload {
        return Err(ProtoError::Oversize {
            len,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(ftype, &payload)
}

/// Incrementally decode one frame from the front of `buf` (the
/// event-driven server's per-connection read buffer).
///
/// Returns `Ok(None)` while the buffer holds only part of a frame,
/// `Ok(Some((frame, consumed)))` once a whole frame is available (the
/// caller drains `consumed` bytes), or an error the moment the *header*
/// is provably bad — a hostile length field is rejected from 8 buffered
/// bytes, before any payload accumulates.
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<Option<(Frame, usize)>, ProtoError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let (ftype, len) = parse_header(&header)?;
    if len > max_payload {
        return Err(ProtoError::Oversize {
            len,
            max: max_payload,
        });
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let frame = decode_payload(ftype, &buf[HEADER_LEN..total])?;
    Ok(Some((frame, total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{Column, DataType, Field, Schema, Value};

    fn roundtrip(frame: Frame) -> Frame {
        let bytes = frame_bytes(&frame).unwrap();
        read_frame(&mut bytes.as_slice(), DEFAULT_MAX_RESPONSE).unwrap()
    }

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("station", DataType::Utf8),
            Field::nullable("value", DataType::Float64),
        ])
        .unwrap();
        let cols = vec![
            Column::from_values(
                DataType::Utf8,
                &[Value::Utf8("HGN".into()), Value::Utf8("ISK".into())],
            )
            .unwrap(),
            Column::from_values(DataType::Float64, &[Value::Float64(1.5), Value::Null]).unwrap(),
        ];
        Table::new(schema, cols).unwrap()
    }

    fn sample_metrics() -> WireMetrics {
        WireMetrics {
            queue_wait_us: 1,
            exec_us: 2,
            rows: 2,
            records_extracted: 3,
            cache_hits: 4,
            cache_misses: 5,
            result_recycled: true,
        }
    }

    #[test]
    fn every_frame_type_roundtrips() {
        let frames = vec![
            Frame::Query {
                delay_ms: 25,
                sql: "SELECT 1".into(),
            },
            Frame::Result {
                metrics: sample_metrics(),
                table: Arc::new(sample_table()),
            },
            Frame::Error {
                code: "query.parse".into(),
                message: "boom".into(),
            },
            Frame::Busy {
                queue_depth: 4,
                queued: 4,
                estimated_rows: 1_000_000,
                cost_budget: 50_000,
            },
            Frame::Stats,
            Frame::StatsReply {
                text: "a=1\nb=2\n".into(),
            },
            Frame::Ping,
            Frame::Pong,
            Frame::Shutdown,
            Frame::ShutdownAck,
            Frame::Hello { max_version: 2 },
            Frame::HelloAck {
                version: 2,
                batch_rows: 4096,
                initial_credit: 4,
            },
            Frame::QueryV2 {
                cursor: 7,
                delay_ms: 25,
                sql: "SELECT 1".into(),
            },
            Frame::ResultStart {
                cursor: 7,
                metrics: sample_metrics(),
                // Table::empty is the canonical wire form: the encoder drops
                // all-valid validity bitmaps, so a `Some([])` validity from
                // `slice(0, 0)` would not round-trip bit-identically.
                schema: Arc::new(Table::empty(sample_table().schema.clone())),
            },
            Frame::ResultBatch {
                cursor: 7,
                seq: 3,
                table: Arc::new(sample_table()),
            },
            Frame::ResultEnd {
                cursor: 7,
                batches: 4,
                rows: 8192,
                cancelled: true,
            },
            Frame::Credit { cursor: 7, n: 2 },
            Frame::Cancel { cursor: 7 },
            Frame::Subscribe {
                cursor: 9,
                sql: "SELECT COUNT(*) FROM mseed.records".into(),
            },
            Frame::SubUpdate {
                cursor: 9,
                update: 4,
                rows: 123_456,
            },
        ];
        for f in frames {
            assert_eq!(roundtrip(f.clone()), f);
        }
    }

    #[test]
    fn v2_frames_carry_version_2_and_v1_frames_stay_v1() {
        let v1 = frame_bytes(&Frame::Ping).unwrap();
        assert_eq!(v1[2], VERSION);
        let v2 = frame_bytes(&Frame::Cancel { cursor: 1 }).unwrap();
        assert_eq!(v2[2], VERSION_V2);
        // A v1-only decoder (version must equal 1) would reject the v2
        // frame at the header — which is exactly why the server never
        // sends one before a Hello negotiated the upgrade.
        let v21 = frame_bytes(&Frame::SubUpdate {
            cursor: 1,
            update: 0,
            rows: 0,
        })
        .unwrap();
        assert_eq!(v21[2], VERSION_V2_1);
        let v21 = frame_bytes(&Frame::Subscribe {
            cursor: 1,
            sql: "SELECT 1".into(),
        })
        .unwrap();
        assert_eq!(v21[2], VERSION_V2_1);
    }

    #[test]
    fn busy_tail_is_optional_for_v1_peers() {
        // A v1 sender emits only depth + queued; the estimates default 0.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_be_bytes());
        bytes.push(VERSION);
        bytes.push(0x04);
        bytes.extend_from_slice(&8u32.to_be_bytes());
        bytes.extend_from_slice(&3u32.to_be_bytes());
        bytes.extend_from_slice(&2u32.to_be_bytes());
        match read_frame(&mut bytes.as_slice(), 1024).unwrap() {
            Frame::Busy {
                queue_depth,
                queued,
                estimated_rows,
                cost_budget,
            } => {
                assert_eq!((queue_depth, queued), (3, 2));
                assert_eq!((estimated_rows, cost_budget), (0, 0));
            }
            other => panic!("expected busy, got {other:?}"),
        }
    }

    #[test]
    fn incremental_decode_handles_partial_and_concatenated_frames() {
        let a = frame_bytes(&Frame::Credit { cursor: 9, n: 1 }).unwrap();
        let b = frame_bytes(&Frame::Query {
            delay_ms: 0,
            sql: "SELECT 1".into(),
        })
        .unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b);
        // Byte-by-byte arrival: every prefix short of frame A is None.
        for cut in 0..a.len() {
            assert!(decode_frame(&buf[..cut], 1024).unwrap().is_none());
        }
        let (f1, used1) = decode_frame(&buf, 1024).unwrap().unwrap();
        assert_eq!(f1, Frame::Credit { cursor: 9, n: 1 });
        assert_eq!(used1, a.len());
        let (f2, used2) = decode_frame(&buf[used1..], 1024).unwrap().unwrap();
        assert!(matches!(f2, Frame::Query { .. }));
        assert_eq!(used2, b.len());
    }

    #[test]
    fn incremental_decode_rejects_hostile_header_before_payload() {
        // 8 header bytes claiming a 4 GiB payload: rejected immediately,
        // with nothing buffered beyond the header.
        let mut bytes = frame_bytes(&Frame::Stats).unwrap();
        bytes[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        match decode_frame(&bytes[..HEADER_LEN], 1024) {
            Err(ProtoError::Oversize { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    #[test]
    fn sender_side_cap_rejects_with_stable_code() {
        let frame = Frame::Query {
            delay_ms: 0,
            sql: "x".repeat(2048),
        };
        match frame_bytes_checked(&frame, 1024) {
            Err(e @ ProtoError::Oversize { .. }) => assert_eq!(e.code(), "proto.oversize"),
            other => panic!("expected oversize, got {other:?}"),
        }
        // Under the cap the bytes are identical to the unchecked path.
        let small = Frame::Ping;
        assert_eq!(
            frame_bytes_checked(&small, 1024).unwrap(),
            frame_bytes(&small).unwrap()
        );
    }

    #[test]
    fn bad_magic_version_type_detected() {
        let mut bytes = frame_bytes(&Frame::Ping).unwrap();
        bytes[0] = 0xFF;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), 1024),
            Err(ProtoError::BadMagic(_))
        ));
        let mut bytes = frame_bytes(&Frame::Ping).unwrap();
        bytes[2] = 99;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), 1024),
            Err(ProtoError::BadVersion(99))
        ));
        let mut bytes = frame_bytes(&Frame::Ping).unwrap();
        bytes[3] = 0x7F;
        assert!(matches!(
            read_frame(&mut bytes.as_slice(), 1024),
            Err(ProtoError::BadType(0x7F))
        ));
    }

    #[test]
    fn oversize_rejected_before_allocation() {
        let mut bytes = frame_bytes(&Frame::Stats).unwrap();
        // Claim a huge payload; nothing follows.
        bytes[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        match read_frame(&mut bytes.as_slice(), 1024) {
            Err(ProtoError::Oversize { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_io_error() {
        let bytes = frame_bytes(&Frame::Query {
            delay_ms: 0,
            sql: "SELECT 1".into(),
        })
        .unwrap();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            read_frame(&mut &cut[..], 1024),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn malformed_query_payload_detected() {
        // A query frame whose payload is shorter than the fixed prefix.
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(VERSION);
        out.push(0x01);
        out.extend_from_slice(&2u32.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        assert!(matches!(
            read_frame(&mut out.as_slice(), 1024),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn proto_error_codes_are_stable() {
        assert_eq!(ProtoError::BadMagic(0).code(), "proto.magic");
        assert_eq!(ProtoError::BadVersion(0).code(), "proto.version");
        assert_eq!(ProtoError::BadType(0).code(), "proto.type");
        assert_eq!(
            ProtoError::Oversize { len: 1, max: 0 }.code(),
            "proto.oversize"
        );
        assert_eq!(
            ProtoError::Malformed(String::new()).code(),
            "proto.malformed"
        );
    }
}
