//! Blocking client for the serving wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues one request at a
//! time (the protocol is strictly request→response per connection; open
//! more clients for parallelism — that is exactly what the E14 loadgen
//! does).

use crate::protocol::{
    read_frame, write_frame, Frame, ProtoError, WireMetrics, DEFAULT_MAX_RESPONSE,
};
use lazyetl_store::Table;
use std::collections::BTreeMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A successful served query.
#[derive(Debug, Clone)]
pub struct ServedResult {
    /// The result rows.
    pub table: Table,
    /// What the request cost server-side.
    pub metrics: WireMetrics,
}

/// What the server answered to a query.
#[derive(Debug, Clone)]
pub enum ServerReply {
    /// Rows + metrics.
    Result(ServedResult),
    /// Admission control rejected the query; retry later.
    Busy {
        /// The server's configured queue depth.
        queue_depth: u32,
        /// Jobs queued when the request was rejected.
        queued: u32,
    },
    /// The server answered with an error frame.
    Error {
        /// Stable machine-readable code (`query.*`, `etl.*`, `server.*`).
        code: String,
        /// Rendered message.
        message: String,
    },
}

/// Client-side failures (transport/protocol, not in-band server errors).
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The server answered with a frame type this request cannot accept.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected server frame: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// One connection to a lazy-warehouse server.
pub struct Client {
    stream: TcpStream,
    max_response_bytes: u32,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_response_bytes: DEFAULT_MAX_RESPONSE,
        })
    }

    /// Like [`Client::connect`] with a connect timeout per candidate
    /// address.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let mut last = None;
        for a in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&a, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    return Ok(Client {
                        stream,
                        max_response_bytes: DEFAULT_MAX_RESPONSE,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses")
        }))
    }

    /// Cap accepted response payloads (defence against a rogue server).
    pub fn set_max_response_bytes(&mut self, max: u32) {
        self.max_response_bytes = max;
    }

    fn roundtrip(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        write_frame(&mut self.stream, frame)?;
        Ok(read_frame(&mut self.stream, self.max_response_bytes)?)
    }

    /// Run a SQL query.
    pub fn query(&mut self, sql: &str) -> Result<ServerReply, ClientError> {
        self.query_with_delay(sql, 0)
    }

    /// Run a SQL query with server-side think time (the load-generation /
    /// admission-control knob).
    pub fn query_with_delay(
        &mut self,
        sql: &str,
        delay_ms: u32,
    ) -> Result<ServerReply, ClientError> {
        let reply = self.roundtrip(&Frame::Query {
            delay_ms,
            sql: sql.to_string(),
        })?;
        match reply {
            Frame::Result { metrics, table } => {
                // Decode just built this Arc, so unwrapping is free; the
                // clone arm only runs for a shared Arc (never on this path).
                let table = Arc::try_unwrap(table).unwrap_or_else(|shared| (*shared).clone());
                Ok(ServerReply::Result(ServedResult { table, metrics }))
            }
            Frame::Busy {
                queue_depth,
                queued,
            } => Ok(ServerReply::Busy {
                queue_depth,
                queued,
            }),
            Frame::Error { code, message } => Ok(ServerReply::Error { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run a query, retrying on busy frames with a fixed backoff. Returns
    /// the reply plus how many busy rejections were absorbed.
    pub fn query_retrying(
        &mut self,
        sql: &str,
        delay_ms: u32,
        backoff: Duration,
        max_retries: usize,
    ) -> Result<(ServerReply, usize), ClientError> {
        let mut busy = 0usize;
        loop {
            match self.query_with_delay(sql, delay_ms)? {
                ServerReply::Busy { .. } if busy < max_retries => {
                    busy += 1;
                    std::thread::sleep(backoff);
                }
                reply => return Ok((reply, busy)),
            }
        }
    }

    /// Fetch the server's stats snapshot as an ordered key→value map.
    pub fn stats(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        match self.roundtrip(&Frame::Stats)? {
            Frame::StatsReply { text } => Ok(text
                .lines()
                .filter_map(|l| {
                    l.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                })
                .collect()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Request graceful shutdown (drain, snapshot, exit). The server
    /// acknowledges, then closes this connection.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Frame::Shutdown)? {
            Frame::ShutdownAck => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
