//! Blocking client for the serving wire protocol (v2 streamed cursors,
//! with transparent v1 fallback).
//!
//! One [`Client`] owns one TCP connection and issues one request at a
//! time (the protocol is strictly request→response per connection; open
//! more clients for parallelism — that is exactly what the E14 loadgen
//! does). [`Client::connect`] performs the `Hello` version handshake, so
//! queries stream: [`Client::query`] returns a [`QueryStream`] that
//! pulls [`ResultBatch`](crate::protocol::Frame::ResultBatch) frames on
//! demand, granting the server one credit per consumed batch — a client
//! that stops reading suspends its cursor server-side instead of forcing
//! the server to buffer the table.
//!
//! # Migrating from the v1 `Client`
//!
//! The v1 API's `query()` returned a fully-collected `ServerReply`. That
//! shape survives as [`Client::query_all`]:
//!
//! * `client.query(sql)? → ServerReply::Result(r)` (old) becomes either
//!   `client.query_all(sql)?` (identical semantics, now streamed and
//!   reassembled under the hood) or, preferably, the streaming form:
//!
//! ```no_run
//! # use lazyetl_server::{Client, QueryReply};
//! # let mut client = Client::connect("127.0.0.1:4242").unwrap();
//! match client.query("SELECT COUNT(*) FROM mseed.files").unwrap() {
//!     QueryReply::Stream(mut stream) => {
//!         while let Some(batch) = stream.next_batch().unwrap() {
//!             println!("{} rows", batch.num_rows());
//!         }
//!     }
//!     QueryReply::Busy { estimated_rows, .. } => { /* back off */ }
//!     QueryReply::Error { code, message } => eprintln!("{code}: {message}"),
//! };
//! ```
//!
//! * `query_retrying` keeps its exact signature and still returns the
//!   collected `ServerReply`.
//! * Dropping a [`QueryStream`] mid-result cancels the cursor
//!   server-side (best effort); [`QueryStream::cancel`] does it
//!   explicitly and synchronously.
//! * [`Client::connect_v1`] skips the handshake entirely and speaks the
//!   original whole-frame protocol — for talking to old servers, and for
//!   proving v1 compatibility in tests.

use crate::protocol::{
    frame_bytes_checked, read_frame, Frame, ProtoError, WireMetrics, DEFAULT_MAX_REQUEST,
    DEFAULT_MAX_RESPONSE, MAX_VERSION, VERSION_V2_1,
};
use lazyetl_store::Table;
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A successful served query, fully collected ([`Client::query_all`]).
#[derive(Debug, Clone)]
pub struct ServedResult {
    /// The result rows.
    pub table: Table,
    /// What the request cost server-side.
    pub metrics: WireMetrics,
}

/// What the server answered to a fully-collected query
/// ([`Client::query_all`] / [`Client::query_retrying`]).
#[derive(Debug, Clone)]
pub enum ServerReply {
    /// Rows + metrics.
    Result(ServedResult),
    /// Admission control rejected the query; retry later.
    Busy {
        /// The server's configured queue depth.
        queue_depth: u32,
        /// Jobs queued when the request was rejected.
        queued: u32,
        /// The planner's row estimate for the rejected query (0 = not
        /// estimated) — back off proportionally.
        estimated_rows: u64,
        /// The server's admission cost budget (0 = queue-depth-only).
        cost_budget: u64,
    },
    /// The server answered with an error frame.
    Error {
        /// Stable machine-readable code (`query.*`, `etl.*`, `server.*`).
        code: String,
        /// Rendered message.
        message: String,
    },
}

/// What the server answered to a streaming query ([`Client::query`]).
pub enum QueryReply<'a> {
    /// The cursor opened: pull batches from the stream.
    Stream(QueryStream<'a>),
    /// Admission control rejected the query; retry later.
    Busy {
        /// The server's configured queue depth.
        queue_depth: u32,
        /// Jobs queued when the request was rejected.
        queued: u32,
        /// The planner's row estimate for the rejected query (0 = not
        /// estimated).
        estimated_rows: u64,
        /// The server's admission cost budget (0 = queue-depth-only).
        cost_budget: u64,
    },
    /// The server answered with an error frame.
    Error {
        /// Stable machine-readable code.
        code: String,
        /// Rendered message.
        message: String,
    },
}

/// What the server answered to a subscribe request
/// ([`Client::subscribe`], protocol v2.1).
pub enum SubscribeReply<'a> {
    /// The subscription opened: pull result revisions from it.
    Subscription(Subscription<'a>),
    /// Admission control rejected the initial query; retry later.
    Busy {
        /// The server's configured queue depth.
        queue_depth: u32,
        /// Jobs queued when the request was rejected.
        queued: u32,
        /// The planner's row estimate for the rejected query (0 = not
        /// estimated).
        estimated_rows: u64,
        /// The server's admission cost budget (0 = queue-depth-only).
        cost_budget: u64,
    },
    /// The server answered with an error frame.
    Error {
        /// Stable machine-readable code.
        code: String,
        /// Rendered message.
        message: String,
    },
}

/// Client-side failures (transport/protocol, not in-band server errors).
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure (including a request this client
    /// refused to send because it exceeds its own `max_request_bytes` —
    /// code `proto.oversize`, enforced symmetrically with the server).
    Proto(ProtoError),
    /// The server answered with a frame type this request cannot accept.
    Unexpected(String),
}

impl ClientError {
    /// Stable machine-readable code for this failure (`proto.*` for
    /// transport/framing, `client.unexpected` for a protocol-confused
    /// server).
    pub fn code(&self) -> &'static str {
        match self {
            ClientError::Proto(e) => e.code(),
            ClientError::Unexpected(_) => "client.unexpected",
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected server frame: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// Budget for the `Hello`/`HelloAck` handshake — a server that accepted
/// the TCP connection but will never answer (e.g. mid-drain backlog)
/// must fail the connect, not hang it.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// One connection to a lazy-warehouse server.
pub struct Client {
    stream: TcpStream,
    max_response_bytes: u32,
    max_request_bytes: u32,
    /// Negotiated protocol version (2 after a successful handshake, 1
    /// for [`Client::connect_v1`]).
    version: u8,
    /// Server-announced rows per batch (informational).
    batch_rows: u32,
    next_cursor: u32,
    /// A dropped-mid-stream cursor whose tail frames (pending batches +
    /// the cancel acknowledgement) must be drained before the next
    /// request can use the connection.
    pending_drain: Option<u32>,
}

impl Client {
    /// Connect and negotiate protocol v2 (streamed cursors). Fails if
    /// the server does not complete the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Self::handshake(stream)
    }

    /// Like [`Client::connect`] with a connect timeout per candidate
    /// address.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let mut last = None;
        for a in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&a, timeout) {
                Ok(stream) => return Self::handshake(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses")
        }))
    }

    /// Connect **without** the version handshake: the original v1
    /// whole-frame protocol. Queries on this connection return their
    /// entire result in one frame (the server's compatibility path).
    pub fn connect_v1(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self::from_stream(stream, 1))
    }

    fn from_stream(stream: TcpStream, version: u8) -> Client {
        Client {
            stream,
            max_response_bytes: DEFAULT_MAX_RESPONSE,
            max_request_bytes: DEFAULT_MAX_REQUEST,
            version,
            batch_rows: 0,
            next_cursor: 1,
            pending_drain: None,
        }
    }

    fn handshake(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true)?;
        let mut client = Self::from_stream(stream, 1);
        let io_err = |e: ClientError| std::io::Error::new(std::io::ErrorKind::ConnectionAborted, e);
        client.stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        client
            .send(&Frame::Hello {
                max_version: MAX_VERSION,
            })
            .map_err(io_err)?;
        let ack = read_frame(&mut client.stream, client.max_response_bytes)
            .map_err(|e| io_err(e.into()))?;
        client.stream.set_read_timeout(None)?;
        match ack {
            Frame::HelloAck {
                version,
                batch_rows,
                ..
            } => {
                client.version = version.clamp(1, MAX_VERSION);
                client.batch_rows = batch_rows;
                Ok(client)
            }
            other => Err(io_err(ClientError::Unexpected(format!("{other:?}")))),
        }
    }

    /// Negotiated protocol version of this connection.
    pub fn protocol_version(&self) -> u8 {
        self.version
    }

    /// Rows per streamed batch, as announced by the server (0 on v1
    /// connections).
    pub fn batch_rows(&self) -> u32 {
        self.batch_rows
    }

    /// Cap accepted response payloads (defence against a rogue server).
    pub fn set_max_response_bytes(&mut self, max: u32) {
        self.max_response_bytes = max;
    }

    /// Cap outgoing request payloads. The check is enforced **locally**,
    /// symmetric with the server's request cap: an oversized query fails
    /// fast with the stable `proto.oversize` code instead of a raw I/O
    /// error after the server slams the connection.
    pub fn set_max_request_bytes(&mut self, max: u32) {
        self.max_request_bytes = max;
    }

    /// Send one frame, enforcing the client-side request cap.
    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        let bytes = frame_bytes_checked(frame, self.max_request_bytes)?;
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, ClientError> {
        Ok(read_frame(&mut self.stream, self.max_response_bytes)?)
    }

    /// Consume the tail of a dropped-mid-stream cursor so the
    /// connection is clean for the next request. A dropped subscription
    /// may have revision batches and `SubUpdate` boundaries in flight;
    /// both are skipped until the cancelled `ResultEnd` lands.
    fn drain_pending(&mut self) -> Result<(), ClientError> {
        while let Some(cursor) = self.pending_drain {
            match self.recv()? {
                Frame::ResultBatch { cursor: c, .. } if c == cursor => {}
                Frame::SubUpdate { cursor: c, .. } if c == cursor => {}
                Frame::ResultEnd { cursor: c, .. } if c == cursor => {
                    self.pending_drain = None;
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
        Ok(())
    }

    fn roundtrip(&mut self, frame: &Frame) -> Result<Frame, ClientError> {
        self.drain_pending()?;
        self.send(frame)?;
        self.recv()
    }

    /// Run a SQL query, streaming the result. On a v2 connection the
    /// returned [`QueryStream`] pulls batches on demand; on a v1
    /// connection the whole result arrives up front and the stream
    /// yields it as a single batch (same API either way).
    pub fn query(&mut self, sql: &str) -> Result<QueryReply<'_>, ClientError> {
        self.query_with_delay(sql, 0)
    }

    /// [`Client::query`] with server-side think time (the
    /// load-generation / admission-control knob).
    pub fn query_with_delay(
        &mut self,
        sql: &str,
        delay_ms: u32,
    ) -> Result<QueryReply<'_>, ClientError> {
        self.drain_pending()?;
        if self.version < 2 {
            return self.query_v1(sql, delay_ms);
        }
        let cursor = self.next_cursor;
        self.next_cursor = self.next_cursor.wrapping_add(1).max(1);
        self.send(&Frame::QueryV2 {
            cursor,
            delay_ms,
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            Frame::ResultStart {
                cursor: c,
                metrics,
                schema,
            } if c == cursor => Ok(QueryReply::Stream(QueryStream {
                client: self,
                cursor,
                metrics,
                schema: Arc::try_unwrap(schema).unwrap_or_else(|shared| (*shared).clone()),
                inline: None,
                batches: 0,
                rows: 0,
                done: false,
                cancelled: false,
            })),
            Frame::Busy {
                queue_depth,
                queued,
                estimated_rows,
                cost_budget,
            } => Ok(QueryReply::Busy {
                queue_depth,
                queued,
                estimated_rows,
                cost_budget,
            }),
            Frame::Error { code, message } => Ok(QueryReply::Error { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    fn query_v1(&mut self, sql: &str, delay_ms: u32) -> Result<QueryReply<'_>, ClientError> {
        self.send(&Frame::Query {
            delay_ms,
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            Frame::Result { metrics, table } => {
                let table = Arc::try_unwrap(table).unwrap_or_else(|shared| (*shared).clone());
                let schema = table
                    .slice(0, 0)
                    .map_err(|e| ClientError::Unexpected(format!("schema slice: {e}")))?;
                Ok(QueryReply::Stream(QueryStream {
                    client: self,
                    cursor: 0,
                    metrics,
                    schema,
                    inline: Some(table),
                    batches: 0,
                    rows: 0,
                    done: false,
                    cancelled: false,
                }))
            }
            Frame::Busy {
                queue_depth,
                queued,
                estimated_rows,
                cost_budget,
            } => Ok(QueryReply::Busy {
                queue_depth,
                queued,
                estimated_rows,
                cost_budget,
            }),
            Frame::Error { code, message } => Ok(QueryReply::Error { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run a query and collect the whole result — the v1-shaped
    /// convenience (the old `query()` contract, kept for callers that
    /// want the table, not the stream).
    pub fn query_all(&mut self, sql: &str) -> Result<ServerReply, ClientError> {
        self.query_all_with_delay(sql, 0)
    }

    /// [`Client::query_all`] with server-side think time.
    pub fn query_all_with_delay(
        &mut self,
        sql: &str,
        delay_ms: u32,
    ) -> Result<ServerReply, ClientError> {
        match self.query_with_delay(sql, delay_ms)? {
            QueryReply::Stream(mut stream) => {
                let metrics = stream.metrics();
                let table = stream.collect_table()?;
                Ok(ServerReply::Result(ServedResult { table, metrics }))
            }
            QueryReply::Busy {
                queue_depth,
                queued,
                estimated_rows,
                cost_budget,
            } => Ok(ServerReply::Busy {
                queue_depth,
                queued,
                estimated_rows,
                cost_budget,
            }),
            QueryReply::Error { code, message } => Ok(ServerReply::Error { code, message }),
        }
    }

    /// Run a query (collected), retrying on busy frames with a fixed
    /// backoff. Returns the reply plus how many busy rejections were
    /// absorbed.
    pub fn query_retrying(
        &mut self,
        sql: &str,
        delay_ms: u32,
        backoff: Duration,
        max_retries: usize,
    ) -> Result<(ServerReply, usize), ClientError> {
        let mut busy = 0usize;
        loop {
            match self.query_all_with_delay(sql, delay_ms)? {
                ServerReply::Busy { .. } if busy < max_retries => {
                    busy += 1;
                    std::thread::sleep(backoff);
                }
                reply => return Ok((reply, busy)),
            }
        }
    }

    /// Open a live-tail subscription (protocol v2.1): the query runs
    /// once, streams its result, and then *stays open* — every time the
    /// server folds repository changes in ([`ServerConfig::refresh_interval`]
    /// or query-triggered auto-refresh), the updated result is pushed as
    /// a new revision. The push is O(delta) server-side when the resident
    /// recycled result was patched incrementally.
    ///
    /// Fails with `client.unexpected` on connections below v2.1 (v1
    /// clients and pre-subscription v2 servers keep working unchanged —
    /// they simply cannot subscribe).
    ///
    /// [`ServerConfig::refresh_interval`]: crate::ServerConfig::refresh_interval
    pub fn subscribe(&mut self, sql: &str) -> Result<SubscribeReply<'_>, ClientError> {
        self.drain_pending()?;
        if self.version < VERSION_V2_1 {
            return Err(ClientError::Unexpected(format!(
                "subscriptions need protocol v2.1; this connection negotiated v{}",
                self.version
            )));
        }
        let cursor = self.next_cursor;
        self.next_cursor = self.next_cursor.wrapping_add(1).max(1);
        self.send(&Frame::Subscribe {
            cursor,
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            Frame::ResultStart {
                cursor: c,
                metrics,
                schema,
            } if c == cursor => Ok(SubscribeReply::Subscription(Subscription {
                cursor,
                metrics,
                schema: Arc::try_unwrap(schema).unwrap_or_else(|shared| (*shared).clone()),
                updates: 0,
                done: false,
                client: self,
            })),
            Frame::Busy {
                queue_depth,
                queued,
                estimated_rows,
                cost_budget,
            } => Ok(SubscribeReply::Busy {
                queue_depth,
                queued,
                estimated_rows,
                cost_budget,
            }),
            Frame::Error { code, message } => Ok(SubscribeReply::Error { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetch the server's stats snapshot as an ordered key→value map.
    pub fn stats(&mut self) -> Result<BTreeMap<String, String>, ClientError> {
        match self.roundtrip(&Frame::Stats)? {
            Frame::StatsReply { text } => Ok(text
                .lines()
                .filter_map(|l| {
                    l.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                })
                .collect()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Request graceful shutdown (drain, snapshot, exit). The server
    /// acknowledges, then closes this connection.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Frame::Shutdown)? {
            Frame::ShutdownAck => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}

/// A streamed query result: batches on demand, with credit granted back
/// to the server as each batch is consumed (pull-based flow control — a
/// stream nobody reads grants no credit, so the server suspends the
/// cursor after its initial window instead of buffering the result).
///
/// Dropping the stream mid-result cancels the cursor (best effort);
/// [`QueryStream::cancel`] does it synchronously. The stream borrows its
/// [`Client`] — one request at a time per connection, enforced by the
/// borrow checker.
pub struct QueryStream<'a> {
    client: &'a mut Client,
    cursor: u32,
    metrics: WireMetrics,
    schema: Table,
    /// v1 compatibility: the whole result arrived up front and streams
    /// as one batch.
    inline: Option<Table>,
    batches: u32,
    rows: u64,
    done: bool,
    cancelled: bool,
}

impl QueryStream<'_> {
    /// What the request cost server-side.
    pub fn metrics(&self) -> WireMetrics {
        self.metrics
    }

    /// Zero-row table carrying the result schema (available before any
    /// batch arrives).
    pub fn schema(&self) -> &Table {
        &self.schema
    }

    /// Batches consumed so far.
    pub fn batches(&self) -> u32 {
        self.batches
    }

    /// Rows consumed so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// True once the stream ended because of [`QueryStream::cancel`] (or
    /// a server-side cancellation), not exhaustion.
    pub fn was_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Pull the next batch, granting the server one credit for it.
    /// `Ok(None)` once the stream is exhausted (or was cancelled).
    pub fn next_batch(&mut self) -> Result<Option<Table>, ClientError> {
        if self.done {
            return Ok(None);
        }
        if let Some(table) = self.inline.take() {
            // v1 path: the single pre-collected batch.
            self.done = true;
            self.batches = 1;
            self.rows = table.num_rows() as u64;
            return Ok(Some(table));
        }
        match self.client.recv()? {
            Frame::ResultBatch {
                cursor, table, seq, ..
            } if cursor == self.cursor => {
                debug_assert_eq!(seq, self.batches, "batch sequence gap");
                self.batches += 1;
                self.rows += table.num_rows() as u64;
                // Credit *after* receiving: the grant is the signal that
                // this consumer is keeping up.
                self.client.send(&Frame::Credit { cursor, n: 1 })?;
                let table = Arc::try_unwrap(table).unwrap_or_else(|shared| (*shared).clone());
                Ok(Some(table))
            }
            Frame::ResultEnd {
                cursor, cancelled, ..
            } if cursor == self.cursor => {
                self.done = true;
                self.cancelled = cancelled;
                Ok(None)
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Collect every remaining batch into one table (plus the schema
    /// when the result is empty) — the streamed equivalent of the v1
    /// whole-frame result.
    pub fn collect_table(&mut self) -> Result<Table, ClientError> {
        let mut out = self.schema.clone();
        while let Some(batch) = self.next_batch()? {
            out.append_table(&batch)
                .map_err(|e| ClientError::Unexpected(format!("batch append: {e}")))?;
        }
        Ok(out)
    }

    /// Cancel the cursor and synchronously drain to the server's
    /// acknowledgement. Idempotent; a no-op once the stream ended.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        if self.done || self.inline.is_some() {
            self.done = true;
            return Ok(());
        }
        self.client.send(&Frame::Cancel {
            cursor: self.cursor,
        })?;
        loop {
            match self.client.recv()? {
                Frame::ResultBatch { cursor, .. } if cursor == self.cursor => {
                    // In-flight batches sent before the cancel landed.
                }
                Frame::ResultEnd {
                    cursor, cancelled, ..
                } if cursor == self.cursor => {
                    self.done = true;
                    self.cancelled = cancelled;
                    return Ok(());
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }
}

impl Drop for QueryStream<'_> {
    fn drop(&mut self) {
        if self.done || self.inline.is_some() {
            return;
        }
        // Best-effort abort; the tail (in-flight batches + the cancel
        // acknowledgement) is drained lazily by the next request on this
        // connection.
        if self
            .client
            .send(&Frame::Cancel {
                cursor: self.cursor,
            })
            .is_ok()
        {
            self.client.pending_drain = Some(self.cursor);
        }
    }
}

impl Iterator for QueryStream<'_> {
    type Item = Result<Table, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_batch().transpose()
    }
}

/// A live-tail subscription ([`Client::subscribe`]): a long-lived cursor
/// whose result is re-pushed as a fresh revision every time the server's
/// warehouse generation moves. Each revision streams as credit-gated
/// batches (same flow control as [`QueryStream`]) and ends with a
/// `SubUpdate` boundary frame instead of `ResultEnd` — the cursor
/// survives until [`Subscription::cancel`], drop, or server drain.
pub struct Subscription<'a> {
    client: &'a mut Client,
    cursor: u32,
    metrics: WireMetrics,
    schema: Table,
    updates: u32,
    done: bool,
}

impl Subscription<'_> {
    /// What the *initial* query cost server-side.
    pub fn metrics(&self) -> WireMetrics {
        self.metrics
    }

    /// Zero-row table carrying the result schema.
    pub fn schema(&self) -> &Table {
        &self.schema
    }

    /// Revisions received so far (the initial snapshot counts as one).
    pub fn updates(&self) -> u32 {
        self.updates
    }

    /// Block until the next full result revision arrives, granting the
    /// server one credit per consumed batch. The first call returns the
    /// initial snapshot; later calls block until a refresh changes the
    /// warehouse generation and the server pushes the updated result.
    /// `Ok(None)` once the subscription ended (cancelled or server
    /// drain).
    pub fn next_update(&mut self) -> Result<Option<Table>, ClientError> {
        if self.done {
            return Ok(None);
        }
        let mut out = self.schema.clone();
        loop {
            match self.client.recv()? {
                Frame::ResultBatch { cursor, table, .. } if cursor == self.cursor => {
                    // Credit *after* receiving — the keeping-up signal.
                    self.client.send(&Frame::Credit { cursor, n: 1 })?;
                    out.append_table(&table)
                        .map_err(|e| ClientError::Unexpected(format!("batch append: {e}")))?;
                }
                Frame::SubUpdate { cursor, .. } if cursor == self.cursor => {
                    self.updates += 1;
                    return Ok(Some(out));
                }
                Frame::ResultEnd { cursor, .. } if cursor == self.cursor => {
                    self.done = true;
                    return Ok(None);
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Cancel the subscription and synchronously drain to the server's
    /// acknowledgement — in-flight revision batches and `SubUpdate`
    /// boundaries are discarded. Idempotent; a no-op once ended.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        if self.done {
            return Ok(());
        }
        self.client.send(&Frame::Cancel {
            cursor: self.cursor,
        })?;
        loop {
            match self.client.recv()? {
                Frame::ResultBatch { cursor, .. } if cursor == self.cursor => {}
                Frame::SubUpdate { cursor, .. } if cursor == self.cursor => {}
                Frame::ResultEnd { cursor, .. } if cursor == self.cursor => {
                    self.done = true;
                    return Ok(());
                }
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }
}

impl Drop for Subscription<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Best-effort abort; the tail is drained lazily by the next
        // request on this connection (drain_pending skips SubUpdate).
        if self
            .client
            .send(&Frame::Cancel {
                cursor: self.cursor,
            })
            .is_ok()
        {
            self.client.pending_drain = Some(self.cursor);
        }
    }
}
