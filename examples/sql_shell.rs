//! An interactive SQL shell over a lazy warehouse — the terminal
//! equivalent of the demo's GUI (Figure 2). Attach a repository, fire
//! queries, watch the lazy machinery work.
//!
//! ```sh
//! # Against a generated demo repository:
//! cargo run --release --example sql_shell
//! # Against your own directory of .mseed/.sac files:
//! cargo run --release --example sql_shell -- /path/to/repository
//! ```
//!
//! Shell commands besides SQL:
//! `\plans` toggles per-query plan printing, `\cache` shows the recycling
//! cache, `\log` tails the ETL log, `\wave <file_id> <seq_no>` draws one
//! record's waveform, `\quit` exits.

use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl::mseed::Timestamp;
use lazyetl::{Warehouse, WarehouseConfig};
use std::io::{BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (root, generated_here) = match args.first() {
        Some(path) => (std::path::PathBuf::from(path), false),
        None => {
            let root = std::env::temp_dir().join("lazyetl_shell_demo");
            std::fs::remove_dir_all(&root).ok();
            let config = GeneratorConfig {
                start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0),
                file_duration_secs: 600,
                files_per_stream: 2,
                ..Default::default()
            };
            generate_repository(&root, &config)?;
            (root, true)
        }
    };
    let wh = Warehouse::open_lazy(&root, WarehouseConfig::default())?;
    let lr = wh.load_report();
    println!(
        "attached {} lazily: {} files, {} records of metadata in {:?}",
        root.display(),
        lr.files,
        lr.records,
        lr.elapsed
    );
    println!("tables: mseed.files, mseed.records; view: mseed.dataview");
    println!("commands: \\plans \\cache \\log \\wave <file_id> <seq_no> \\quit");

    let stdin = std::io::stdin();
    let mut show_plans = false;
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("lazyetl> ");
        } else {
            print!("     ... ");
        }
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "" => continue,
                "\\quit" | "\\q" | "exit" => break,
                "\\plans" => {
                    show_plans = !show_plans;
                    println!("plan printing {}", if show_plans { "on" } else { "off" });
                    continue;
                }
                "\\cache" => {
                    let snap = wh.cache_snapshot();
                    println!(
                        "{} entries, {}/{} KiB, stats {:?}",
                        snap.entries.len(),
                        snap.used_bytes / 1024,
                        snap.budget_bytes / 1024,
                        snap.stats
                    );
                    for e in snap.entries.iter().take(10) {
                        println!(
                            "  file {} record {:>4}: {:>7} rows {:>9} bytes",
                            e.key.0, e.key.1, e.rows, e.bytes
                        );
                    }
                    continue;
                }
                "\\log" => {
                    let rendered = wh.etl_log_render();
                    for l in rendered
                        .lines()
                        .rev()
                        .take(15)
                        .collect::<Vec<_>>()
                        .iter()
                        .rev()
                    {
                        println!("{l}");
                    }
                    continue;
                }
                t if t.starts_with("\\wave") => {
                    let parts: Vec<&str> = t.split_whitespace().collect();
                    if parts.len() != 3 {
                        println!("usage: \\wave <file_id> <seq_no>");
                        continue;
                    }
                    match (parts[1].parse::<i64>(), parts[2].parse::<i64>()) {
                        (Ok(fid), Ok(seq)) => match lazyetl::fetch_record_waveform(&wh, fid, seq) {
                            Ok(w) => {
                                print!("{}", lazyetl::waveform_ascii(&w.samples, 72, 12))
                            }
                            Err(e) => println!("error: {e}"),
                        },
                        _ => println!("usage: \\wave <file_id> <seq_no>"),
                    }
                    continue;
                }
                _ => {}
            }
        }
        buffer.push_str(&line);
        // Execute on semicolon (or single-line query without one).
        if !trimmed.ends_with(';') && !trimmed.contains(';') && !buffer.trim().ends_with(';') {
            // allow multi-line entry until a semicolon arrives
            if !trimmed.is_empty() {
                continue;
            }
        }
        let sql = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        if sql.is_empty() {
            continue;
        }
        match wh.query(&sql) {
            Ok(out) => {
                print!("{}", out.table.to_ascii(40));
                println!(
                    "({} rows in {:?}; extracted {} records from {} files, {} cache hits)",
                    out.report.rows,
                    out.report.elapsed,
                    out.report.records_extracted,
                    out.report.files_extracted.len(),
                    out.report.cache_hits
                );
                if show_plans {
                    for (stage, plan) in &out.report.stages {
                        println!("--- {stage} ---\n{plan}");
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    if generated_here {
        std::fs::remove_dir_all(&root).ok();
    }
    println!("bye");
    Ok(())
}
