//! Repository updates and lazy refresh (§3.3 and demo item 7).
//!
//! New records arrive at a station (file append), a whole new file shows
//! up, and a file is touched without content change. The lazy warehouse
//! folds all of it in at the next query — re-extracting only what changed —
//! while an eager warehouse must re-run ETL for the changed files.
//!
//! ```sh
//! cargo run --release --example updates_refresh
//! ```

use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl::mseed::record::SourceId;
use lazyetl::mseed::Timestamp;
use lazyetl::repo::{updates, Repository};
use lazyetl::{Warehouse, WarehouseConfig};

const COUNT_HGN: &str =
    "SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'HGN' AND F.channel = 'BHZ'";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lazyetl_updates_demo");
    std::fs::remove_dir_all(&root).ok();
    let config = GeneratorConfig {
        start: Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0),
        file_duration_secs: 300,
        files_per_stream: 2,
        seed: 0x0BDA7E,
        ..Default::default()
    };
    generate_repository(&root, &config)?;

    // auto_refresh: every query begins with a staleness sweep — the
    // paper's "refreshments are handled … when the data warehouse is
    // queried".
    let wh = Warehouse::open_lazy(
        &root,
        WarehouseConfig {
            auto_refresh: true,
            ..Default::default()
        },
    )?;
    let before = wh.query(COUNT_HGN)?;
    println!(
        "samples at NL.HGN BHZ before update: {}",
        before.table.row(0)?[0]
    );

    // --- Update 1: 60 s of new data appended to an existing file. -------
    let mut repo = Repository::open(&root)?;
    let hgn_uri = repo
        .files()
        .iter()
        .find(|f| f.uri.contains("HGN") && f.uri.contains("BHZ"))
        .expect("HGN BHZ file exists")
        .uri
        .clone();
    let added = updates::append_records(&mut repo, &hgn_uri, 60, 42)?;
    println!("\nappended {added} samples to {hgn_uri}");

    let after = wh.query(COUNT_HGN)?;
    let refresh = after
        .report
        .refresh
        .clone()
        .expect("refresh detected change");
    println!(
        "query now sees {} samples (+{added}); refresh touched {} modified file(s), \
         reloaded {} record-metadata rows, {} stale cache entr(ies) dropped",
        after.table.row(0)?[0],
        refresh.modified,
        refresh.records_reloaded,
        after.report.stale_drops
    );

    // --- Update 2: a brand-new file appears. -----------------------------
    let src = SourceId::new("NL", "HGN", "", "BHZ")?;
    let new_uri = updates::add_file(
        &mut repo,
        &src,
        Timestamp::from_ymd_hms(2010, 1, 13, 0, 0, 0, 0),
        120,
        7,
    )?;
    println!("\nadded new file {new_uri}");
    let after2 = wh.query(COUNT_HGN)?;
    let refresh2 = after2
        .report
        .refresh
        .clone()
        .expect("refresh sees addition");
    println!(
        "query now sees {} samples; refresh added {} file(s)",
        after2.table.row(0)?[0],
        refresh2.added
    );

    // --- Update 3: touch without content change (false positive). -------
    updates::touch(&mut repo, &hgn_uri)?;
    let after3 = wh.query(COUNT_HGN)?;
    println!(
        "\nafter touch-only update: same answer ({}), correctness preserved",
        after3.table.row(0)?[0]
    );

    println!("\nETL log tail:");
    let log = wh.etl_log_render();
    for line in log.lines().rev().take(8).collect::<Vec<_>>().iter().rev() {
        println!("  {line}");
    }
    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
