//! Federated sources: one warehouse over three lazy backends — a local
//! mSEED archive, a CSV survey drop, and a latency-injected simulated
//! remote server — each holding a different slice of the station
//! inventory, queried through one SQL surface.
//!
//! ```sh
//! cargo run --release --example federated_sources
//! ```

use lazyetl::mseed::gen::{generate_repository, GeneratorConfig, RepoFormat};
use lazyetl::mseed::inventory::default_inventory;
use lazyetl::mseed::Timestamp;
use lazyetl::repo::{CsvSource, RemoteSource, Repository};
use lazyetl::{WarehouseBuilder, WarehouseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Three source directories, one network each: NL stays a local
    //    mSEED archive, GR arrives as CSV files, KO lives behind a
    //    (simulated) remote server that only answers range fetches.
    let base = std::env::temp_dir().join("lazyetl_federated");
    std::fs::remove_dir_all(&base).ok();
    let inv = default_inventory();
    let slice = |network: &str, format: RepoFormat| GeneratorConfig {
        stations: inv
            .iter()
            .filter(|s| s.network == network)
            .cloned()
            .collect(),
        channels: vec!["BHZ".into(), "BHE".into()],
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0),
        file_duration_secs: 600,
        files_per_stream: 2,
        format,
        ..Default::default()
    };
    for (dir, network, format) in [
        ("archive", "NL", RepoFormat::MseedOnly),
        ("surveys", "GR", RepoFormat::CsvOnly),
        ("orfeus", "KO", RepoFormat::MseedOnly),
    ] {
        let g = generate_repository(&base.join(dir), &slice(network, format))?;
        println!("{dir:>8} ({network}): {} files generated", g.files.len());
    }

    // 2. Mount all three into one lazy warehouse. The remote mount
    //    really sleeps its modeled WAN cost per fetch, so cold-touch
    //    latency below is wall-clock honest.
    let wh = WarehouseBuilder::new()
        .config(WarehouseConfig::default())
        .source("archive", Box::new(Repository::open(base.join("archive"))?))
        .source("surveys", Box::new(CsvSource::open(base.join("surveys"))?))
        .source(
            "orfeus",
            Box::new(RemoteSource::open(base.join("orfeus"))?.with_sleep(true)),
        )
        .open()?;
    println!("\nmounted sources:");
    for (name, kind) in wh.sources() {
        println!("  {name} ({kind})");
    }

    // 3. One query spanning every mount: per-station amplitude ranges
    //    across all three networks. Only BHZ files are extracted, each
    //    from its own backend.
    let sql = "SELECT F.station, COUNT(*), MIN(D.sample_value), MAX(D.sample_value) \
               FROM mseed.dataview WHERE F.channel = 'BHZ' \
               GROUP BY F.station ORDER BY F.station";
    let out = wh.query(sql)?;
    println!("\ncross-mount query ({:?} cold):", out.report.elapsed);
    println!("{}", out.table.to_ascii(20));
    println!("files extracted (note the mount prefixes):");
    for uri in &out.report.files_extracted {
        println!("  {uri}");
    }

    // 4. Per-source accounting: who was touched, how much, at what
    //    (modeled) remote cost.
    println!("\nper-source accounting:");
    for s in wh.stats_snapshot().sources {
        println!(
            "  {:>8} [{}]: {}/{} files extracted, {} records, {} KiB read, \
             {} range fetches, simulated IO {:?}",
            s.name,
            s.kind,
            s.files_extracted,
            s.files,
            s.records_extracted,
            s.bytes_read / 1024,
            s.fetch_requests,
            s.simulated_io,
        );
    }

    // 5. Warm re-query: the recycling cache is keyed by global file id,
    //    so not one mount — not even the remote — is touched again.
    let warm = wh.query(sql)?;
    println!(
        "\nwarm re-run: {} cache hits, {} extracted, in {:?}",
        warm.report.cache_hits, warm.report.records_extracted, warm.report.elapsed
    );

    std::fs::remove_dir_all(&base).ok();
    Ok(())
}
