//! Observability tour — the demo's Figure-2 walkthrough in terminal form.
//!
//! Shows, for one analytical query: (4) the query plan before and after
//! the compile-time reorganization, (5) which files were lazily extracted,
//! (6) the plan generated on the fly by the run-time rewrite, (7) the
//! contents of the recycling cache, and (8) the ETL operations log.
//!
//! ```sh
//! cargo run --release --example explain_lazy
//! ```

use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl::mseed::Timestamp;
use lazyetl::{Warehouse, WarehouseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lazyetl_explain_demo");
    std::fs::remove_dir_all(&root).ok();
    let config = GeneratorConfig {
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0),
        file_duration_secs: 600,
        files_per_stream: 2,
        record_length: 512,
        seed: 0xE8,
        ..Default::default()
    };
    generate_repository(&root, &config)?;
    let wh = Warehouse::open_lazy(&root, WarehouseConfig::default())?;

    let sql = "SELECT AVG(D.sample_value)
FROM mseed.dataview
WHERE F.station = 'ISK'
AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';";
    println!("query (paper Figure 1, first query):\n{sql}\n");

    let out = wh.query(sql)?;
    for (stage, plan) in &out.report.stages {
        let caption = match stage.as_str() {
            "logical" => {
                "(1) logical plan after view expansion — note the ExternalScan: \
                          the D table is not loaded"
            }
            "optimized" => {
                "(2) after compile-time reorganization — metadata predicates \
                            pushed onto the F/R scans, sample-time predicates onto the \
                            external scan"
            }
            "rewritten" => {
                "(3) after the RUN-TIME rewrite — metadata subplan executed, \
                            needed records extracted and injected as InlineData"
            }
            other => other,
        };
        println!("=== {caption}\n{plan}");
    }

    let rewrite = out.report.rewrite.as_ref().expect("lazy rewrite ran");
    println!("=== (5) extraction summary");
    println!("  metadata join rows : {}", rewrite.metadata_rows);
    println!("  candidate records  : {}", rewrite.candidate_pairs);
    println!("  pruned by time     : {}", rewrite.pruned_pairs);
    println!("  extracted records  : {}", out.report.records_extracted);
    println!("  files touched      :");
    for f in &out.report.files_extracted {
        println!("    {f}");
    }
    for note in &rewrite.notes {
        println!("  note: {note}");
    }

    println!("\n=== (7) recycling cache after the query");
    let snap = wh.cache_snapshot();
    println!(
        "  {} entries, {} / {} KiB used, stats: {:?}",
        snap.entries.len(),
        snap.used_bytes / 1024,
        snap.budget_bytes / 1024,
        snap.stats
    );
    for e in snap.entries.iter().take(6) {
        println!(
            "    file {} record {:>3}: {:>6} rows, {:>7} bytes",
            e.key.0, e.key.1, e.rows, e.bytes
        );
    }
    if snap.entries.len() > 6 {
        println!("    ... {} more", snap.entries.len() - 6);
    }

    println!("\n=== (8) ETL operations log");
    print!("{}", wh.etl_log_render());

    println!("\nanswer: {}", out.table.to_ascii(3));
    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
