//! Serve a lazy warehouse over TCP and query it through the wire
//! protocol — the whole serving stack in one process.
//!
//! ```sh
//! cargo run --release --example served_quickstart
//! ```
//!
//! Boots a server on an ephemeral loopback port, drives the Figure-1
//! queries through a [`lazyetl::server::Client`] — results arrive as a
//! credit-gated **batch stream** (protocol v2), so rows print before the
//! query's tail is even on the wire — prints the per-request serving
//! metrics, then shuts down gracefully: draining in-flight queries and
//! snapshotting the hot cache so a second boot would warm-restart.

use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl::mseed::Timestamp;
use lazyetl::server::{Client, QueryReply, Server, ServerConfig};
use lazyetl::{Warehouse, WarehouseConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A source repository (synthesized; point --root at real mSEED).
    let root = std::env::temp_dir().join("lazyetl_served_quickstart");
    std::fs::remove_dir_all(&root).ok();
    let config = GeneratorConfig {
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0),
        file_duration_secs: 600,
        files_per_stream: 2,
        ..Default::default()
    };
    generate_repository(&root, &config)?;

    // 2. One shared warehouse behind a bounded worker pool. The queue
    //    depth is the admission-control knob: beyond it, clients get a
    //    BUSY frame instead of a growing backlog.
    let wh = Arc::new(Warehouse::open_lazy(&root, WarehouseConfig::default())?);
    let save_dir = root.join("_snapshot");
    let server = Server::start(
        Arc::clone(&wh),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            save_dir: Some(save_dir.clone()),
            ..Default::default()
        },
    )?;
    println!("serving on {}\n", server.addr());

    // 3. A client on the other side of the socket. `connect` runs the
    //    v2 Hello handshake, so `query` returns a QueryStream: batches
    //    on demand, one credit granted back per batch consumed.
    let mut client = Client::connect(server.addr())?;
    println!(
        "negotiated protocol v{}, {} rows/batch\n",
        client.protocol_version(),
        client.batch_rows()
    );
    for sql in [
        "SELECT network, station, COUNT(*) FROM mseed.files GROUP BY network, station",
        "SELECT F.station, MIN(D.sample_value), MAX(D.sample_value) \
         FROM mseed.dataview WHERE F.network = 'NL' AND F.channel = 'BHZ' \
         GROUP BY F.station",
    ] {
        let reply = client.query(sql)?;
        match reply {
            QueryReply::Stream(mut stream) => {
                while let Some(batch) = stream.next_batch()? {
                    println!("{}", batch.to_ascii(10));
                }
                let m = stream.metrics();
                println!(
                    "rows={} batches={} queue_wait={}us exec={}us extracted={} hits={}/{}\n",
                    stream.rows(),
                    stream.batches(),
                    m.queue_wait_us,
                    m.exec_us,
                    m.records_extracted,
                    m.cache_hits,
                    m.cache_hits + m.cache_misses,
                );
            }
            QueryReply::Busy { queued, .. } => println!("busy ({queued} queued), retry later"),
            QueryReply::Error { code, message } => println!("{code}: {message}"),
        }
    }

    // 4. The server-side view of the same traffic.
    for (k, v) in client.stats()? {
        if k.starts_with("server.") {
            println!("{k}={v}");
        }
    }

    // 5. Graceful shutdown: drain, then snapshot the hot cache — the
    //    next boot would `Warehouse::open_saved` and start warm.
    let report = server.stop()?;
    println!(
        "\nshutdown: {} queries served, snapshot at {} ({} segments)",
        report.stats.queries_ok,
        save_dir.display(),
        report.save.map(|s| s.segments.len()).unwrap_or(0),
    );
    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
