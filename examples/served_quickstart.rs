//! Serve a lazy warehouse over TCP and query it through the wire
//! protocol — the whole serving stack in one process.
//!
//! ```sh
//! cargo run --release --example served_quickstart
//! ```
//!
//! Boots a server on an ephemeral loopback port, drives the Figure-1
//! queries through a [`lazyetl::server::Client`], prints the per-request
//! serving metrics, then shuts down gracefully — draining in-flight
//! queries and snapshotting the hot cache so a second boot would
//! warm-restart.

use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl::mseed::Timestamp;
use lazyetl::server::{Client, Server, ServerConfig, ServerReply};
use lazyetl::{Warehouse, WarehouseConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A source repository (synthesized; point --root at real mSEED).
    let root = std::env::temp_dir().join("lazyetl_served_quickstart");
    std::fs::remove_dir_all(&root).ok();
    let config = GeneratorConfig {
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0),
        file_duration_secs: 600,
        files_per_stream: 2,
        ..Default::default()
    };
    generate_repository(&root, &config)?;

    // 2. One shared warehouse behind a bounded worker pool. The queue
    //    depth is the admission-control knob: beyond it, clients get a
    //    BUSY frame instead of a growing backlog.
    let wh = Arc::new(Warehouse::open_lazy(&root, WarehouseConfig::default())?);
    let save_dir = root.join("_snapshot");
    let server = Server::start(
        Arc::clone(&wh),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            save_dir: Some(save_dir.clone()),
            ..Default::default()
        },
    )?;
    println!("serving on {}\n", server.addr());

    // 3. A client on the other side of the socket.
    let mut client = Client::connect(server.addr())?;
    for sql in [
        "SELECT network, station, COUNT(*) FROM mseed.files GROUP BY network, station",
        "SELECT F.station, MIN(D.sample_value), MAX(D.sample_value) \
         FROM mseed.dataview WHERE F.network = 'NL' AND F.channel = 'BHZ' \
         GROUP BY F.station",
    ] {
        match client.query(sql)? {
            ServerReply::Result(r) => {
                println!("{}", r.table.to_ascii(10));
                println!(
                    "rows={} queue_wait={}us exec={}us extracted={} hits={}/{}\n",
                    r.metrics.rows,
                    r.metrics.queue_wait_us,
                    r.metrics.exec_us,
                    r.metrics.records_extracted,
                    r.metrics.cache_hits,
                    r.metrics.cache_hits + r.metrics.cache_misses,
                );
            }
            ServerReply::Busy { queued, .. } => println!("busy ({queued} queued), retry later"),
            ServerReply::Error { code, message } => println!("{code}: {message}"),
        }
    }

    // 4. The server-side view of the same traffic.
    for (k, v) in client.stats()? {
        if k.starts_with("server.") {
            println!("{k}={v}");
        }
    }

    // 5. Graceful shutdown: drain, then snapshot the hot cache — the
    //    next boot would `Warehouse::open_saved` and start warm.
    let report = server.stop()?;
    println!(
        "\nshutdown: {} queries served, snapshot at {} ({} segments)",
        report.stats.queries_ok,
        save_dir.display(),
        report.save.map(|s| s.segments.len()).unwrap_or(0),
    );
    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
