//! Build a network event catalog: per-station STA/LTA picks combined by
//! coincidence triggering, end to end over a lazy warehouse.
//!
//! This is the workflow the paper's §4 demo gestures at ("mining
//! interesting seismic events") taken one step further: single-station
//! triggers are noisy, so real networks only catalog events several
//! stations see within a short window. The repository is generated with
//! *network-wide* ground-truth events, every NL station's BHZ stream is
//! scanned through the SQL surface (extraction is lazy: only the scanned
//! streams' files are ever decoded), and the per-station picks are
//! clustered into a catalog.
//!
//! ```sh
//! cargo run --release --example event_catalog
//! ```

use lazyetl::core::analysis::{coincidence_trigger, StationDetections};
use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl::mseed::Timestamp;
use lazyetl::{hunt_events, StaLtaConfig, Warehouse, WarehouseConfig};
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lazyetl_catalog_demo");
    std::fs::remove_dir_all(&root).ok();
    let config = GeneratorConfig {
        start: Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0),
        file_duration_secs: 900,
        files_per_stream: 2,
        events_per_file: 0.15, // sparse local (single-station) noise events
        network_events: 3,     // the earthquakes the catalog should contain
        seed: 0x0CA7_A106,
        ..Default::default()
    };
    let generated = generate_repository(&root, &config)?;
    let truth: BTreeSet<i64> = generated
        .events
        .iter()
        .map(|e| e.onset.0 / 10_000_000) // 10 s buckets collapse per-stream jitter
        .collect();
    println!(
        "repository: {} files / {:.1} MiB, {} injected event onsets\n",
        generated.files.len(),
        generated.total_bytes as f64 / (1 << 20) as f64,
        generated.events.len(),
    );

    let wh = Warehouse::open_lazy(&root, WarehouseConfig::default())?;
    println!(
        "lazy attach: {:?} — hunting starts now\n",
        wh.load_report().elapsed
    );

    // Per-station hunt on the vertical (BHZ) channel of the NL network.
    let stations: BTreeSet<String> = generated
        .files
        .iter()
        .filter(|f| f.source.network == "NL")
        .map(|f| f.source.station.clone())
        .collect();
    let cfg = StaLtaConfig {
        threshold: 3.5,
        ..Default::default()
    };
    let mut per_station = Vec::new();
    let mut records_extracted = 0usize;
    for station in &stations {
        let hunt = hunt_events(
            &wh,
            station,
            "BHZ",
            "2010-01-12T00:00:00",
            "2010-01-12T00:30:00",
            &cfg,
        )?;
        println!(
            "  {station}.BHZ: {} pick(s) over {} samples ({} records lazily extracted)",
            hunt.detections.len(),
            hunt.samples,
            hunt.report.records_extracted,
        );
        records_extracted += hunt.report.records_extracted;
        per_station.push(StationDetections {
            station: station.clone(),
            detections: hunt.detections,
        });
    }

    // Coincidence: at least 3 stations within 10 s.
    let catalog = coincidence_trigger(&per_station, 10.0, 3);
    println!(
        "\ncatalog ({} events, >=3 stations within 10 s):",
        catalog.len()
    );
    println!("{:<28} {:>6}  stations", "origin (first pick)", "ratio");
    let mut matched = 0usize;
    for ev in &catalog {
        let hit = truth.contains(&(ev.time.0 / 10_000_000))
            || truth.contains(&(ev.time.0 / 10_000_000 + 1))
            || truth.contains(&(ev.time.0 / 10_000_000 - 1));
        if hit {
            matched += 1;
        }
        println!(
            "{:<28} {:>6.1}  {}  [{}]",
            ev.time.to_string(),
            ev.mean_ratio,
            ev.stations.join(","),
            if hit {
                "matches ground truth"
            } else {
                "unverified"
            },
        );
    }
    println!(
        "\n{matched}/{} catalog events match injected ground truth; \
         {records_extracted} records decoded in total — only the hunted \
         streams' files were ever opened.",
        catalog.len().max(1),
    );
    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
