//! Quickstart: attach an mSEED repository lazily and run the paper's
//! Figure-1 queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl::mseed::Timestamp;
use lazyetl::{Warehouse, WarehouseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A source repository. Real deployments point at a directory of
    //    mSEED files (e.g. mirrored from ORFEUS); here we synthesize one.
    let root = std::env::temp_dir().join("lazyetl_quickstart");
    std::fs::remove_dir_all(&root).ok();
    let config = GeneratorConfig {
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0),
        file_duration_secs: 600,
        files_per_stream: 2,
        ..Default::default()
    };
    let generated = generate_repository(&root, &config)?;
    println!(
        "repository: {} files, {:.1} MiB, {} samples\n",
        generated.files.len(),
        generated.total_bytes as f64 / (1 << 20) as f64,
        generated.total_samples
    );

    // 2. Lazy attach: only metadata is read; the warehouse is immediately
    //    ready for queries.
    let wh = Warehouse::open_lazy(&root, WarehouseConfig::default())?;
    let load = wh.load_report();
    println!(
        "lazy initial load: {} files, {} record-metadata rows, {} KiB read, {:?}\n",
        load.files,
        load.records,
        load.bytes_read / 1024,
        load.elapsed
    );

    // 3. Browse metadata (demo item 2) — no data is extracted for this.
    let out = wh.query(
        "SELECT network, station, COUNT(*) AS files, SUM(num_samples) AS samples \
         FROM mseed.files GROUP BY network, station ORDER BY network, station",
    )?;
    println!("metadata browse:\n{}", out.table.to_ascii(20));

    // 4. The paper's first Figure-1 query, verbatim: a short-term average
    //    over a 2-second window at Kandilli Observatory (ISK), channel BHE.
    let q1 = "SELECT AVG(D.sample_value)
FROM mseed.dataview
WHERE F.station = 'ISK'
AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';";
    let out = wh.query(q1)?;
    println!("Figure 1, query 1 (STA window at ISK/BHE):");
    println!("{}", out.table.to_ascii(5));
    println!(
        "  -> extracted {} records ({} samples) from {} file(s), in {:?}\n",
        out.report.records_extracted,
        out.report.samples_extracted,
        out.report.files_extracted.len(),
        out.report.elapsed
    );

    // 5. The second Figure-1 query: min/max amplitude per NL station.
    let q2 = "SELECT F.station,
MIN(D.sample_value), MAX(D.sample_value)
FROM mseed.dataview
WHERE F.network = 'NL'
AND F.channel = 'BHZ'
GROUP BY F.station;";
    let out = wh.query(q2)?;
    println!("Figure 1, query 2 (amplitude range per NL station):");
    println!("{}", out.table.to_ascii(10));
    println!(
        "  -> extracted {} records from {} file(s), {} cache hits, in {:?}",
        out.report.records_extracted,
        out.report.files_extracted.len(),
        out.report.cache_hits,
        out.report.elapsed
    );

    // 6. Run Q2 again: the recycling cache now answers without touching
    //    any file (lazy loading, §3.3).
    let out = wh.query(q2)?;
    println!(
        "  -> re-run: {} cache hits, {} extracted, in {:?}",
        out.report.cache_hits, out.report.records_extracted, out.report.elapsed
    );

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
