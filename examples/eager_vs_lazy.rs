//! Eager vs. lazy, side by side (demo item 3): bootstrap cost, time to
//! first answer, storage footprint, and warm-cache behaviour.
//!
//! ```sh
//! cargo run --release --example eager_vs_lazy
//! ```

use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl::mseed::Timestamp;
use lazyetl::{Warehouse, WarehouseConfig};
use std::time::Instant;

const QUERY: &str = "SELECT F.station, MIN(D.sample_value), MAX(D.sample_value) \
                     FROM mseed.dataview \
                     WHERE F.network = 'NL' AND F.channel = 'BHZ' \
                     GROUP BY F.station";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lazyetl_compare_demo");
    std::fs::remove_dir_all(&root).ok();
    let config = GeneratorConfig {
        start: Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0),
        file_duration_secs: 900,
        files_per_stream: 3,
        seed: 0xC0_FF_EE,
        ..Default::default()
    };
    let generated = generate_repository(&root, &config)?;
    let raw_mib = generated.total_bytes as f64 / (1 << 20) as f64;
    println!(
        "repository: {} files, {raw_mib:.1} MiB raw (Steim-2 compressed), {} samples\n",
        generated.files.len(),
        generated.total_samples
    );
    let cfg = WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    };

    // --- Eager: the traditional baseline. -------------------------------
    let t0 = Instant::now();
    let eager = Warehouse::open_eager(&root, cfg.clone())?;
    let eager_load = t0.elapsed();
    let t1 = Instant::now();
    let eager_q = eager.query(QUERY)?;
    let eager_query = t1.elapsed();

    // --- Lazy: metadata only, extraction on demand. ---------------------
    let t0 = Instant::now();
    let lazy = Warehouse::open_lazy(&root, cfg)?;
    let lazy_load = t0.elapsed();
    let t1 = Instant::now();
    let lazy_cold = lazy.query(QUERY)?;
    let lazy_cold_t = t1.elapsed();
    let t1 = Instant::now();
    let lazy_warm = lazy.query(QUERY)?;
    let lazy_warm_t = t1.elapsed();

    println!("                         eager            lazy");
    println!(
        "initial load           {:>10.1?}    {:>10.1?}   ({:.0}x faster)",
        eager_load,
        lazy_load,
        eager_load.as_secs_f64() / lazy_load.as_secs_f64().max(1e-9)
    );
    println!(
        "bytes read at load     {:>10}    {:>10}",
        format!("{} KiB", eager.load_report().bytes_read / 1024),
        format!("{} KiB", lazy.load_report().bytes_read / 1024),
    );
    println!(
        "resident footprint     {:>10}    {:>10}   (raw files: {:.1} MiB)",
        format!(
            "{:.1} MiB",
            eager.resident_bytes() as f64 / (1 << 20) as f64
        ),
        format!("{:.1} MiB", lazy.resident_bytes() as f64 / (1 << 20) as f64),
        raw_mib
    );
    println!(
        "first query            {:>10.1?}    {:>10.1?}",
        eager_query, lazy_cold_t
    );
    println!(
        "  -> time to first answer  {:>10.1?}    {:>10.1?}",
        eager_load + eager_query,
        lazy_load + lazy_cold_t
    );
    println!(
        "repeat query (warm)    {:>10.1?}    {:>10.1?}   ({} cache hits)",
        eager_query, lazy_warm_t, lazy_warm.report.cache_hits
    );
    println!(
        "\nquery answers agree: {}",
        if eager_q.table == lazy_cold.table {
            "yes"
        } else {
            "NO (bug!)"
        }
    );
    println!(
        "lazy extracted only {} of {} files for this query",
        lazy_cold.report.files_extracted.len(),
        generated.files.len()
    );
    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
