//! Seismic event hunting with STA/LTA over a lazy warehouse — the analysis
//! task the paper demonstrates ("mining interesting seismic events", §4).
//!
//! Generates a repository with *known* injected events, attaches it
//! lazily, and runs the classic short-term-average / long-term-average
//! trigger per stream, comparing detections against the ground truth.
//!
//! ```sh
//! cargo run --release --example seismic_events
//! ```

use lazyetl::mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl::mseed::Timestamp;
use lazyetl::{hunt_events, StaLtaConfig, Warehouse, WarehouseConfig};
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("lazyetl_events_demo");
    std::fs::remove_dir_all(&root).ok();
    let config = GeneratorConfig {
        start: Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0),
        file_duration_secs: 1200,
        files_per_stream: 2,
        events_per_file: 0.8,
        seed: 0xE7E27,
        ..Default::default()
    };
    let generated = generate_repository(&root, &config)?;
    println!(
        "repository: {} files, {} injected ground-truth events\n",
        generated.files.len(),
        generated.events.len()
    );

    let wh = Warehouse::open_lazy(&root, WarehouseConfig::default())?;
    println!(
        "lazy attach in {:?} — ready to hunt\n",
        wh.load_report().elapsed
    );

    // Hunt stream by stream. The paper's STA/LTA intervals: 2 s / 15 s.
    let cfg = StaLtaConfig {
        threshold: 3.5,
        ..Default::default()
    };
    let streams: BTreeSet<(String, String)> = generated
        .files
        .iter()
        .map(|f| (f.source.station.clone(), f.source.channel.clone()))
        .collect();

    let mut found = 0usize;
    let mut matched = 0usize;
    for (station, channel) in &streams {
        let hunt = hunt_events(
            &wh,
            station,
            channel,
            "2010-01-12T00:00:00",
            "2010-01-12T01:00:00",
            &cfg,
        )?;
        let truth: Vec<&lazyetl::mseed::gen::InjectedEvent> = generated
            .events
            .iter()
            .filter(|e| e.source.station == *station && e.source.channel == *channel)
            .collect();
        if hunt.detections.is_empty() && truth.is_empty() {
            continue;
        }
        println!(
            "{station}.{channel}: {} detection(s) / {} injected, {} samples scanned, \
             {} records extracted",
            hunt.detections.len(),
            truth.len(),
            hunt.samples,
            hunt.report.records_extracted
        );
        for d in &hunt.detections {
            let nearest = truth
                .iter()
                .map(|e| (e.onset.0 - d.time.0).abs())
                .min()
                .unwrap_or(i64::MAX);
            let verdict = if nearest < 5_000_000 { "MATCH" } else { "?" };
            if verdict == "MATCH" {
                matched += 1;
            }
            found += 1;
            println!(
                "    {} ratio={:6.1}  nearest truth {:+.1}s  [{verdict}]",
                d.time,
                d.ratio,
                nearest as f64 / 1e6
            );
        }
    }
    println!(
        "\n{matched}/{found} detections match injected events (±5 s); \
         cache now holds {} entries ({} KiB)",
        wh.cache_snapshot().entries.len(),
        wh.cache_snapshot().used_bytes / 1024
    );
    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
