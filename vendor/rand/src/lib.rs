//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access, so the workspace vendors the
//! small slice of `rand` the codebase actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is SplitMix64 — tiny,
//! fast, and statistically solid for synthetic-data generation. It is
//! deliberately **not** the same stream as upstream `SmallRng`; everything
//! in this workspace treats the stream as an opaque deterministic source,
//! keyed only by the seed.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Return the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix the seed so small consecutive seeds do not yield
            // correlated first outputs.
            let mut rng = SmallRng {
                state: state ^ 0x5DEE_CE66_D6A5_D9F1,
            };
            rng.next_u64();
            SmallRng { state: rng.state }
        }
    }
}

/// Types that can be sampled uniformly from the generator's word stream
/// (the `Standard` distribution of upstream `rand`).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its whole domain ([`StandardSample`]).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn extreme_integer_ranges() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = v; // full-domain draw must not overflow
            let w = rng.gen_range(-(1i64 << 29)..(1i64 << 29));
            assert!((-(1i64 << 29)..(1i64 << 29)).contains(&w));
        }
    }
}
