//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of proptest's API its property tests use: the [`proptest!`] macro,
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`,
//! [`any`], [`Just`], ranges and string regexes as strategies, tuple and
//! `Vec<BoxedStrategy<_>>` composition, [`collection::vec`],
//! [`sample::select`], [`sample::Index`], [`option::of`], the weighted
//! [`prop_oneof!`] union, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (every
//!   strategy value is `Debug`) but is not minimised. `max_shrink_iters`
//!   is accepted and ignored.
//! * **Deterministic seeding.** Case `i` of test `t` derives its RNG seed
//!   from `hash(t) ⊕ i`, so failures reproduce across runs and machines
//!   without a persistence file.
//! * `any::<int>()` mixes uniform draws with the domain's edge cases
//!   (`0`, `±1`, `MIN`, `MAX`) to keep the boundary-hunting spirit of the
//!   original.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator handed to [`Strategy::generate`].
///
/// SplitMix64, seeded per test case from the test name and case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the named test.
    ///
    /// Uses FNV-1a over the test name rather than `DefaultHasher`, whose
    /// algorithm std does not stabilize — the seed (and therefore a
    /// failure's inputs) must reproduce across toolchains.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------------

/// A failed property-test case (returned early by the `prop_assert*`
/// macros, or synthesised from a panic in the test body).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Convert a caught panic payload into a failure.
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> TestCaseError {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "test body panicked".to_string()
        };
        TestCaseError::fail(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; this implementation never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
///
/// Upstream proptest separates generation from shrinking via `ValueTree`;
/// this implementation generates directly and never shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keep only generated values satisfying `pred` (rejection sampling,
    /// bounded; generation panics if the predicate is too selective).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, reference-counted [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of type-erased strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, tuples, vec-of-strategies, regex literals
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A vector of strategies is a strategy for vectors: element `i` of the
/// output is drawn from strategy `i`. This is how heterogeneous "rows"
/// are generated from per-column strategies.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// String literals are regex strategies for the subset
/// `( [class] | char ) {m,n}?` — character classes with ranges and an
/// optional repetition count, e.g. `"[a-zA-Z0-9_.-]{0,12}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        regex_generate(self, rng)
    }
}

fn regex_generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // 1. one atom: a character class or a literal character
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"))
                + i;
            let class = &chars[i + 1..close];
            i = close + 1;
            let mut set = Vec::new();
            let mut j = 0;
            while j < class.len() {
                if j + 2 < class.len() && class[j + 1] == '-' {
                    let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(class[j]);
                    j += 1;
                }
            }
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
        // 2. optional {m} / {m,n} repetition
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad {m,n}"),
                    n.trim().parse::<usize>().expect("bad {m,n}"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad {n}");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + (rng.below((hi - lo + 1) as u64) as usize);
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized + Debug {
    /// Draw one value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`, biased toward edge cases for
/// integers.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 draws yield an edge case; the SQL/codec tests
                // exist to catch exactly those boundaries.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 4] = [0, 1, $t::MIN, $t::MAX];
                    EDGES[rng.below(4) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated identifiers/logs readable.
        char::from_u32(0x20 + (rng.below(0x5F)) as u32).unwrap()
    }
}

// ---------------------------------------------------------------------------
// Modules: collection, sample, option
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Acceptable size arguments for [`vec()`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec<T>` strategy: `size` draws of `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone + Debug> {
        items: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }

    /// Pick uniformly from a fixed list.
    pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select on an empty list");
        Select { items }
    }

    /// A length-agnostic index: generated once, projected onto any
    /// collection length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Project onto `[0, len)`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option<T>` strategy: `None` one time in five, else `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Compatibility alias for `proptest::test_runner` paths.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRng};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declare property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
///
/// Each declared function becomes an ordinary `#[test]` that runs
/// `config.cases` generated cases. The body may use the `prop_assert*`
/// macros and `return Ok(())` for early exit, exactly as with upstream
/// proptest. On failure the generated inputs are printed; there is no
/// shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::TestRng::for_case(stringify!($name), __case as u64);
                let mut __inputs = ::std::string::String::new();
                $(
                    let __value = $crate::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &__value
                    ));
                    let $arg = __value;
                )+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    match ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                Ok(())
                            },
                        ),
                    ) {
                        Ok(r) => r,
                        Err(payload) => Err($crate::TestCaseError::from_panic(payload)),
                    };
                if let Err(__e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs:\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e,
                        __inputs,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+))
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), __l, __r
        );
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {} ({})\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), __l
        );
    }};
}

/// Weighted (or uniform) choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };

    /// Mirror of upstream's `prelude::prop` module shortcut.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = crate::regex_generate("[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");

            let t = crate::regex_generate("[a-zA-Z0-9_.-]{0,12}", &mut rng);
            assert!(t.len() <= 12, "{t:?}");
            assert!(
                t.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
                "{t:?}"
            );

            let u = crate::regex_generate("ab{2}c", &mut rng);
            assert_eq!(u, "abbc");
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![9 => Just(1u8), 1 => Just(0u8)];
        let mut rng = TestRng::for_case("union", 0);
        let ones: u32 = (0..1000).map(|_| s.generate(&mut rng) as u32).sum();
        assert!(ones > 800, "weighted arm should dominate: {ones}");
    }

    #[test]
    fn vec_of_strategies_is_rowwise() {
        let cols: Vec<BoxedStrategy<i64>> = vec![(0i64..1).boxed(), (10i64..11).boxed()];
        let rows = crate::collection::vec(cols, 3usize..=3);
        let mut rng = TestRng::for_case("rows", 0);
        let v = rows.generate(&mut rng);
        assert_eq!(v, vec![vec![0, 10], vec![0, 10], vec![0, 10]]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            x in 0i64..100,
            v in prop::collection::vec(any::<bool>(), 0..8),
            s in "[ab]{1,2}",
            opt in prop::option::of(0u8..4),
        ) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(v.len() < 8);
            prop_assert!(!s.is_empty() && s.len() <= 2);
            if let Some(o) = opt {
                prop_assert!(o < 4);
            }
            if x == 0 {
                return Ok(());
            }
            prop_assert_ne!(x, 0);
            prop_assert_eq!(x, x, "reflexivity for {}", x);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("inputs:"), "{msg}");
        assert!(msg.contains("x ="), "{msg}");
    }
}
