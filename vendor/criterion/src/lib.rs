//! Offline stand-in for the `criterion` benchmark harness (0.5 API subset).
//!
//! The build container has no network access, so the workspace vendors the
//! slice of criterion's API the 11 benches in `crates/bench/benches` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`],
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! It really measures: each benchmark is warmed up once, then timed over a
//! capped number of wall-clock-bounded samples, and a `median / mean /
//! throughput` line is printed. There is no statistical regression
//! analysis, plotting, or HTML report — the goal is that `cargo bench`
//! produces honest relative numbers and `cargo bench --no-run` compiles
//! everything, with zero external dependencies.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortises setup cost (accepted for API
/// compatibility; this harness always times routine-only, per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One fresh input per timed iteration.
    PerIteration,
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (samples, rows, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter, e.g. `decode/steim2`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter, e.g. `4` for a thread count.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark id is expected (`&str`, `String`,
/// or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render to the display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; drives the timing loop.
pub struct Bencher {
    samples: usize,
    max_time: Duration,
    /// Collected per-iteration durations.
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up iteration, untimed.
        black_box(routine());
        let deadline = Instant::now() + self.max_time;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.max_time;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.times.push(t0.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        let deadline = Instant::now() + self.max_time;
        for _ in 0..self.samples {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.times.push(t0.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, id: &str, times: &[Duration], throughput: Option<Throughput>) {
    if times.is_empty() {
        println!("{group}/{id}: no samples collected");
        return;
    }
    let mut sorted: Vec<Duration> = times.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let mut line = format!(
        "{group}/{id}: median {} mean {} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
    if let Some(tp) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!(" — {:.3} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        " — {:.3} MiB/s",
                        n as f64 / secs / (1 << 20) as f64
                    ));
                }
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    max_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.max_time = t;
        self
    }

    /// Declare the units processed per iteration (reported as a rate).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            max_time: self.max_time,
            times: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id, &b.times, self.throughput);
        self
    }

    /// Run one benchmark parameterised over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        let mut b = Bencher {
            samples: self.sample_size,
            max_time: self.max_time,
            times: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id, &b.times, self.throughput);
        self
    }

    /// Finish the group (upstream emits a summary; here a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    max_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            max_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Apply command-line configuration. This harness recognises none and
    /// ignores the filter argument `cargo bench` forwards.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Default number of timed samples for benches in this run.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, max_time) = (self.sample_size, self.max_time);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            max_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.benchmark_group(id.clone()).bench_function("base", f);
        self
    }

    /// Emit the final summary (upstream prints statistics; here a no-op).
    pub fn final_summary(&self) {}
}

/// Define a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.throughput(Throughput::Elements(1));
        group.bench_function("square", |b| b.iter(|| black_box(3u64) * black_box(3u64)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |n| n * n, BatchSize::PerIteration)
        });
        group.finish();
    }

    criterion_group!(benches, bench_square);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(
            BenchmarkId::new("decode", "steim2").into_id(),
            "decode/steim2"
        );
        assert_eq!(BenchmarkId::from_parameter(8).into_id(), "8");
    }
}
