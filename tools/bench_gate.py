#!/usr/bin/env python3
"""Bench-regression gate: compare fresh BENCH_*.json against committed
baselines with per-metric tolerances.

Usage:
    python3 tools/bench_gate.py [--baseline-dir bench/baselines]
                                [--scale FACTOR] BENCH_e3.json ...
    python3 tools/bench_gate.py --write-baselines BENCH_e3.json ...

Dependency-free (stdlib json only). Exit 0 when every gate passes,
1 on any regression, 2 on usage/schema problems.

Philosophy: counters that the system fully determines (rows, re-extraction
counts, hit-rate floors, busy-rejection presence, throughput monotonicity
across worker counts) are gated tightly — they regress only when behaviour
regresses. Wall-clock metrics are gated loosely (default: >25% throughput
loss, >4x p99 blow-up) because baselines and CI runners are different
machines; `--scale` (or BENCH_GATE_SCALE) loosens all timing tolerances
at once for known-slow environments. The E14 warm sweep is deliberately
sleep-dominated, so its absolute throughput IS portable and the 25% gate
has teeth there.
"""

import json
import os
import sys

# Per-experiment gate rules. Fields:
#   key        row-identity fields (baseline rows matched to current rows)
#   only       restrict gating to rows matching these field values
#   equal      behavioural counters that must match the baseline exactly
#   faster     higher-is-better metrics: (name, max fractional loss)
#   slower     lower-is-better metrics: (name, max blow-up factor)
#   floor      metric minimums: (name, min value)
#   monotone   (metric, order-field): metric must be non-decreasing when
#              rows are sorted by order-field (2% slack for jitter)
GATES = {
    "e3": dict(
        key=("query",),
        only={},
        equal=("records_extracted", "files_extracted"),
        faster=(),
        slower=(("lazy_warm_us", 4.0),),
        floor=(),
        monotone=None,
    ),
    # E12 is CPU-bound (in-process threads, no think time), so its
    # absolute qps is NOT portable across hosts — no `faster` gate here;
    # the hit-rate floor and the loose p99 ceiling still catch behavioural
    # and catastrophic regressions. E14's sweep is sleep-dominated by
    # design, which is why *it* carries the 25% throughput gate.
    "e12": dict(
        key=("shards", "phase"),
        only={"phase": "warm"},
        equal=(),
        faster=(),
        slower=(("p99_us", 4.0),),
        floor=(("cache_hit_rate", 0.95),),
        monotone=None,
    ),
    "e13": dict(
        key=("phase",),
        only={"phase": "warm"},
        equal=("records_extracted",),
        faster=(),
        slower=(("tti_us", 4.0),),
        floor=(("cache_hit_rate", 0.99),),
        monotone=None,
    ),
    "e14": dict(
        key=("phase", "workers"),
        only={"phase": "warm"},
        equal=("records_extracted",),
        faster=(("throughput_qps", 0.25),),
        slower=(("p99_us", 4.0),),
        floor=(("cache_hit_rate", 0.95),),
        monotone=("throughput_qps", "workers"),
    ),
    # E15 gates the vectorized execution path. `results_match` and the
    # row counts are behavioural (the kernels must agree with the scalar
    # reference); the speedup floor is the acceptance bar that keeps the
    # fast path from silently rotting (≥2x at tiny scale is conservative —
    # release builds measure ~3-11x); `rows_pruned` (zonemap row only)
    # proves the zone-map short-circuit fires. Floors are deliberately
    # NOT scaled by BENCH_GATE_SCALE: a speedup is a ratio on one host.
    # The agg_parallel sweep rows (keyed by workers) are gated by the
    # custom block below, not by these floors.
    "e15": dict(
        key=("kernel", "workers"),
        only={},
        equal=("rows", "out_rows", "results_match"),
        faster=(),
        slower=(("vectorized_us", 4.0),),
        floor=(("speedup", 2.0), ("rows_pruned", 1)),
        monotone=None,
    ),
    # E16 gates the federation story. The per-source rows carry fully
    # deterministic extraction counters (same generated repositories,
    # same pruning) — gated exactly; `warm_files_extracted == 0` is the
    # zero-re-extraction acceptance bar per mount. The `_query` row's
    # `union_matches` is the correctness bar (federated ≡ eager union);
    # its timings get the usual loose cross-machine ceilings. The
    # remote-specific checks (fetches actually happened, WAN time
    # modeled) live in the custom block below.
    # E17 gates the cost-based planner and the ordered time index. The
    # per-config counters are fully deterministic (same generated
    # repository, same pruning decisions) — gated exactly; the seek-vs-
    # sweep comparison (strictly fewer entries examined) and the
    # estimation accounting (costed configs estimate every plan, the
    # heuristic ablation none) live in the custom block below. Timings
    # get the usual loose cross-machine ceiling.
    "e17": dict(
        key=("config",),
        only={},
        equal=(
            "queries", "rows", "index_seeks", "entries_examined",
            "fetched_pairs", "pruned_pairs", "plans_estimated",
            "estimate_abs_error", "results_match",
        ),
        faster=(),
        slower=(("cold_us", 4.0),),
        floor=(),
        monotone=None,
    ),
    # E18 fresh-data polling: the deterministic schedule (rounds, pollers,
    # polls) and the recycler's patch accounting must not drift; the
    # actual bar — incremental strictly beating recompute on the same
    # host, patches landing only in incremental mode, answers agreeing —
    # lives in the custom block below. Timings get the loose ceiling.
    "e18": dict(
        key=("mode",),
        only={},
        equal=(
            "rounds", "pollers", "polls", "results_patched",
            "patch_rows_applied", "recompute_fallbacks", "results_match",
        ),
        faster=(),
        slower=(("total_us", 4.0),),
        floor=(),
        monotone=None,
    ),
    "e16": dict(
        key=("source",),
        only={},
        equal=(
            "kind", "files", "files_extracted", "records_extracted",
            "samples_extracted", "warm_files_extracted", "rows",
            "union_matches", "warm_records_extracted",
        ),
        faster=(),
        slower=(("cold_us", 4.0), ("warm_us", 4.0)),
        floor=(),
        monotone=None,
    ),
}

# E14's admission row exists to prove backpressure fires; gate that too.
E14_ADMISSION_MIN_BUSY = 1

# E14's connection sweep: the event-driven server must complete these
# client counts over a 2-worker pool (timings are informational — p99 at
# 100x oversubscription is contention noise, not a regression signal).
E14_CONNSWEEP_CLIENTS = (50, 100, 200)

# E15's agg_parallel sweep: 2 execution workers must beat 1 by this factor.
# Loose on purpose (perfect scaling would be 2.0) and only applied when the
# measuring host reports >= 2 cores — on a single-core runner the workers
# time-slice one CPU and the ratio is meaningless (the equivalence gate
# `results_match` still applies there).
E15_PARALLEL_MIN_SPEEDUP = 1.3


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        raise SystemExit(f"{path}: unsupported schema_version {doc.get('schema_version')!r}")
    return doc


def row_key(row, fields):
    return tuple(row.get(f) for f in fields)


def matches(row, only):
    return all(row.get(k) == v for k, v in only.items())


def gate_experiment(exp, current_doc, baseline_doc, scale, failures, notes):
    rules = GATES[exp]
    cur_rows = {row_key(r, rules["key"]): r for r in current_doc["rows"] if matches(r, rules["only"])}
    base_rows = {row_key(r, rules["key"]): r for r in baseline_doc["rows"] if matches(r, rules["only"])}

    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            failures.append(f"{exp}{list(key)}: row present in baseline but missing from current run")
            continue
        for metric in rules["equal"]:
            if cur.get(metric) != base.get(metric):
                failures.append(
                    f"{exp}{list(key)}.{metric}: behavioural counter changed "
                    f"(baseline {base.get(metric)!r}, current {cur.get(metric)!r})"
                )
        for metric, max_loss in rules["faster"]:
            b, c = base.get(metric), cur.get(metric)
            if isinstance(b, (int, float)) and isinstance(c, (int, float)) and b > 0:
                floor = b * (1.0 - min(0.95, max_loss * scale))
                if c < floor:
                    failures.append(
                        f"{exp}{list(key)}.{metric}: {c:.1f} lost more than "
                        f"{100 * max_loss * scale:.0f}% vs baseline {b:.1f}"
                    )
                else:
                    notes.append(f"{exp}{list(key)}.{metric}: {c:.1f} (baseline {b:.1f}) ok")
        for metric, max_factor in rules["slower"]:
            b, c = base.get(metric), cur.get(metric)
            if isinstance(b, (int, float)) and isinstance(c, (int, float)) and b > 0:
                ceiling = b * max_factor * scale
                if c > ceiling:
                    failures.append(
                        f"{exp}{list(key)}.{metric}: {c:.0f} blew past "
                        f"{max_factor * scale:.1f}x baseline {b:.0f}"
                    )
                else:
                    notes.append(f"{exp}{list(key)}.{metric}: {c:.0f} (baseline {b:.0f}) ok")
        for metric, minimum in rules["floor"]:
            c = cur.get(metric)
            if isinstance(c, (int, float)) and c < minimum:
                failures.append(f"{exp}{list(key)}.{metric}: {c} below floor {minimum}")

    if rules["monotone"]:
        metric, order = rules["monotone"]
        swept = sorted(cur_rows.values(), key=lambda r: r.get(order, 0))
        for prev, nxt in zip(swept, swept[1:]):
            p, n = prev.get(metric), nxt.get(metric)
            if isinstance(p, (int, float)) and isinstance(n, (int, float)) and n < p * 0.98:
                failures.append(
                    f"{exp}: {metric} not monotone over {order} "
                    f"({order}={prev.get(order)}→{nxt.get(order)}: {p:.1f}→{n:.1f})"
                )
        if swept:
            notes.append(
                f"{exp}: {metric} over {order} " +
                " → ".join(f"{r.get(metric):.0f}" for r in swept)
            )

    if exp == "e15":
        sweep = [r for r in current_doc["rows"] if r.get("kernel") == "agg_parallel"]
        if not sweep:
            failures.append("e15: agg_parallel sweep rows missing from current run")
        for row in sweep:
            if row.get("results_match") is not True:
                failures.append(
                    f"e15[agg_parallel workers={row.get('workers')}]: parallel result "
                    "diverged from the serial run"
                )
        two = next((r for r in sweep if r.get("workers") == 2), None)
        if two is not None:
            cores = two.get("cores", 1)
            speedup = two.get("parallel_speedup", 0.0)
            if cores >= 2 and isinstance(speedup, (int, float)) and speedup < E15_PARALLEL_MIN_SPEEDUP:
                failures.append(
                    f"e15[agg_parallel workers=2]: speedup {speedup:.2f} below "
                    f"{E15_PARALLEL_MIN_SPEEDUP}x floor on a {cores}-core host"
                )
            elif cores < 2:
                notes.append(
                    f"e15[agg_parallel workers=2]: speedup floor skipped on a "
                    f"{cores}-core host (equivalence still gated)"
                )
            else:
                notes.append(
                    f"e15[agg_parallel workers=2]: speedup {speedup:.2f} "
                    f"(floor {E15_PARALLEL_MIN_SPEEDUP}) ok"
                )

    if exp == "e16":
        query = next((r for r in current_doc["rows"] if r.get("source") == "_query"), None)
        if query is None:
            failures.append("e16: _query summary row missing from current run")
        elif query.get("union_matches") is not True:
            failures.append("e16[_query]: federated answer diverged from the eager union")
        remotes = [r for r in current_doc["rows"] if r.get("kind") == "remote"]
        if not remotes:
            failures.append("e16: no remote mount in current run")
        for row in remotes:
            if row.get("fetch_requests", 0) < 1:
                failures.append(
                    f"e16[{row.get('source')}]: remote mount never range-fetched"
                )
            elif row.get("simulated_io_us", 0) < 1:
                failures.append(
                    f"e16[{row.get('source')}]: remote extraction has no modeled WAN time"
                )
            else:
                notes.append(
                    f"e16[{row.get('source')}]: {row['fetch_requests']} fetches, "
                    f"{row.get('fetched_bytes', 0)} bytes over the simulated WAN ok"
                )

    if exp == "e17":
        by_config = {r.get("config"): r for r in current_doc["rows"]}
        missing = [c for c in ("seek", "sweep", "heuristic") if c not in by_config]
        if missing:
            failures.append(f"e17: config rows missing from current run: {missing}")
        else:
            seek, sweep, heuristic = by_config["seek"], by_config["sweep"], by_config["heuristic"]
            for cfg, row in by_config.items():
                if row.get("results_match") is not True:
                    failures.append(f"e17[{cfg}]: answers diverged from the seek reference")
            if seek.get("entries_examined", 0) >= sweep.get("entries_examined", 0):
                failures.append(
                    f"e17: index seek examined {seek.get('entries_examined')} entries, "
                    f"not strictly below the linear sweep's {sweep.get('entries_examined')}"
                )
            else:
                notes.append(
                    f"e17: seek examined {seek['entries_examined']} entries vs "
                    f"sweep's {sweep['entries_examined']} ok"
                )
            if seek.get("index_seeks", 0) < 1:
                failures.append("e17[seek]: the ordered time index never served a pruning pass")
            if sweep.get("index_seeks", 0) != 0:
                failures.append("e17[sweep]: seek-disabled ablation still used the index")
            if seek.get("plans_estimated", 0) < 1:
                failures.append("e17[seek]: cost-based pipeline produced no cardinality estimates")
            if heuristic.get("plans_estimated", 0) != 0:
                failures.append("e17[heuristic]: no-cost ablation still estimated plans")
            if seek.get("fetched_pairs") != sweep.get("fetched_pairs") or \
                    seek.get("pruned_pairs") != sweep.get("pruned_pairs"):
                failures.append(
                    "e17: seek and sweep disagree on extraction counts — the index "
                    "changed pruning decisions instead of only accelerating them"
                )

    if exp == "e18":
        by_mode = {r.get("mode"): r for r in current_doc["rows"]}
        missing = [m for m in ("incremental", "recompute") if m not in by_mode]
        if missing:
            failures.append(f"e18: mode rows missing from current run: {missing}")
        else:
            incr, recomp = by_mode["incremental"], by_mode["recompute"]
            for mode, row in by_mode.items():
                if row.get("results_match") is not True:
                    failures.append(f"e18[{mode}]: incremental and recompute answers diverged")
            if incr.get("total_us", 0) >= recomp.get("total_us", 0):
                failures.append(
                    f"e18: incremental total {incr.get('total_us')}us did not beat "
                    f"recompute's {recomp.get('total_us')}us on the same host"
                )
            else:
                ratio = recomp.get("total_us", 1) / max(incr.get("total_us", 1), 1)
                notes.append(f"e18: incremental {ratio:.1f}x faster than recompute ok")
            if incr.get("results_patched", 0) < 1:
                failures.append("e18[incremental]: the recycler never patched a resident result")
            if incr.get("recompute_fallbacks", 0) != 0:
                failures.append(
                    "e18[incremental]: maintainable mix fell back to recompute — "
                    "the delta classifier regressed"
                )
            if recomp.get("results_patched", 0) != 0:
                failures.append("e18[recompute]: maintenance-disabled ablation still patched")

    if exp == "e14":
        admission = [r for r in current_doc["rows"] if r.get("phase") == "admission"]
        for row in admission:
            if row.get("busy_rejections", 0) < E14_ADMISSION_MIN_BUSY:
                failures.append(
                    "e14[admission]: no busy rejections — admission control did not fire"
                )
            else:
                notes.append(
                    f"e14[admission]: {row['busy_rejections']} busy rejections "
                    f"(rate {row.get('busy_rate', 0):.2f}) ok"
                )

        # The v2 streaming counters must actually move: every served query
        # opens a cursor and streams at least one batch.
        for row in current_doc["rows"]:
            if row.get("phase") in ("cold", "warm", "admission", "connsweep"):
                for counter in ("cursors_opened", "batches_streamed", "credit_stalls"):
                    if counter not in row:
                        failures.append(
                            f"e14[{row.get('phase')}]: streaming counter {counter} missing"
                        )
                if row.get("cursors_opened", 0) < row.get("total_queries", 0):
                    failures.append(
                        f"e14[{row.get('phase')}]: {row.get('cursors_opened')} cursors for "
                        f"{row.get('total_queries')} queries — v2 streaming not in use"
                    )

        # Connection sweep: hundreds of clients over a 2-worker pool must
        # all complete through the event-driven connection layer.
        sweep = {r.get("clients"): r for r in current_doc["rows"] if r.get("phase") == "connsweep"}
        missing = [c for c in E14_CONNSWEEP_CLIENTS if c not in sweep]
        if missing:
            failures.append(f"e14[connsweep]: client counts missing from current run: {missing}")
        for clients, row in sorted(sweep.items()):
            want = clients * 2  # queries_per_client is fixed at 2
            if row.get("total_queries") != want:
                failures.append(
                    f"e14[connsweep clients={clients}]: {row.get('total_queries')} queries "
                    f"completed, want {want} — connections lost under load"
                )
            else:
                notes.append(
                    f"e14[connsweep clients={clients}]: {want} queries, "
                    f"p99 {row.get('p99_us', 0) / 1000:.0f}ms ok"
                )

        # Memory ceiling: a stalled reader must suspend its cursor (credit
        # stalls observed) while the outbound high-water mark stays under
        # the configured ceiling — the O(batch)-not-O(result) guarantee.
        memceil = next((r for r in current_doc["rows"] if r.get("phase") == "memceil"), None)
        if memceil is None:
            failures.append("e14: memceil row missing from current run")
        else:
            if memceil.get("ceiling_ok") is not True:
                failures.append(
                    f"e14[memceil]: outbuf high water {memceil.get('outbuf_hwm_bytes')}B "
                    f"blew the {memceil.get('ceiling_bytes')}B ceiling"
                )
            if memceil.get("credit_stalls", 0) < 1:
                failures.append(
                    "e14[memceil]: stalled reader never suspended its cursor — "
                    "credit backpressure did not fire"
                )
            min_batches = memceil.get("rows", 0) // max(1, memceil.get("batch_rows", 1))
            if memceil.get("batches_streamed", 0) < min_batches:
                failures.append(
                    f"e14[memceil]: only {memceil.get('batches_streamed')} batches for "
                    f"{memceil.get('rows')} rows at {memceil.get('batch_rows')} rows/batch"
                )
            if not failures or all("memceil" not in f for f in failures):
                notes.append(
                    f"e14[memceil]: hwm {memceil.get('outbuf_hwm_bytes')}B <= "
                    f"ceiling {memceil.get('ceiling_bytes')}B, "
                    f"{memceil.get('credit_stalls')} credit stalls ok"
                )


def main(argv):
    baseline_dir = "bench/baselines"
    scale = float(os.environ.get("BENCH_GATE_SCALE", "1.0"))
    write_baselines = False
    files = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--baseline-dir":
            baseline_dir = argv[i + 1]
            i += 2
        elif arg == "--scale":
            scale = float(argv[i + 1])
            i += 2
        elif arg == "--write-baselines":
            write_baselines = True
            i += 1
        else:
            files.append(arg)
            i += 1
    if not files:
        print(__doc__)
        return 2

    if write_baselines:
        os.makedirs(baseline_dir, exist_ok=True)
        for path in files:
            doc = load(path)
            dest = os.path.join(baseline_dir, f"{doc['experiment']}.json")
            with open(dest, "w") as f:
                json.dump(doc, f, indent=1)
                f.write("\n")
            print(f"baseline written: {dest}")
        return 0

    failures, notes = [], []
    for path in files:
        doc = load(path)
        exp = doc["experiment"]
        if exp not in GATES:
            print(f"(no gate rules for {exp}; skipping {path})")
            continue
        base_path = os.path.join(baseline_dir, f"{exp}.json")
        if not os.path.exists(base_path):
            failures.append(f"{exp}: baseline {base_path} missing — commit one with --write-baselines")
            continue
        baseline = load(base_path)
        if doc.get("scale") != baseline.get("scale"):
            raise SystemExit(
                f"{path}: scale {doc.get('scale')!r} does not match baseline scale "
                f"{baseline.get('scale')!r} — comparing across scales is meaningless; "
                f"run the gated scale or refresh the baseline"
            )
        gate_experiment(exp, doc, baseline, scale, failures, notes)

    for line in notes:
        print(f"  ok: {line}")
    if failures:
        print(f"\nBENCH GATE FAILED ({len(failures)} regression(s)):")
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print(f"\nbench gate passed: {len(notes)} checks, 0 regressions (timing scale {scale})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
