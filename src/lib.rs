//! # lazyetl — Lazy ETL for scientific data warehouses
//!
//! Umbrella crate re-exporting the whole reproduction of *"Lazy ETL in
//! Action: ETL Technology Dates Scientific Data"* (PVLDB 6(12), 2013):
//!
//! * [`mseed`] — MiniSEED 2.4 format substrate (records, Steim codecs,
//!   synthetic repository generator);
//! * [`repo`] — file repository substrate (registry, change detection,
//!   simulated remote access);
//! * [`store`] — columnar storage substrate (columns, tables, catalog,
//!   persistence);
//! * [`query`] — SQL parser, logical plans, optimizer, executor;
//! * [`core`] — the paper's contribution: the lazy/eager warehouse,
//!   run-time plan rewriting, the recycling cache and lazy refresh;
//! * [`server`] — the serving layer: wire protocol, admission-controlled
//!   worker pool, client, and the `lazyetl-serve`/`lazyetl-cli` binaries.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use lazyetl_core as core;
pub use lazyetl_mseed as mseed;
pub use lazyetl_query as query;
pub use lazyetl_repo as repo;
pub use lazyetl_server as server;
pub use lazyetl_store as store;

pub use lazyetl_core::{
    coincidence_trigger, fetch_record_waveform, hunt_events, recursive_sta_lta, sta_lta,
    waveform_ascii, z_detect, CoincidenceEvent, Detection, EtlError, EtlLog, EtlOp, LoadReport,
    Mode, QueryOutput, QueryReport, RecordWaveform, RefreshSummary, ResultCacheSnapshot,
    ResultCacheStats, SourceStats, StaLtaConfig, StationDetections, Warehouse, WarehouseBuilder,
    WarehouseConfig, ZDetectConfig,
};
