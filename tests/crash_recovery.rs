//! Crash-injection proof of the durable save path.
//!
//! The save protocol (`core::persistence`) claims that a process killed
//! at **any** durable step leaves the saved directory recoverable to
//! either the pre-save or the post-save snapshot — never a torn one.
//! These tests do not take that on faith: [`SaveReport::crash_points`]
//! enumerates every durable step of a save, `save_warehouse_crashing_at`
//! aborts the save exactly there with the partial on-disk state a kill
//! would leave (including a half-written temp file), and the suite then
//! reopens and checks that the warehouse answers every query correctly.
//! Torn, truncated and bit-flipped files — segments, tables, manifest,
//! journal — are covered separately.

mod common;

use common::{figure1_repo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::core::{
    read_manifest, replay_journal, save_warehouse, save_warehouse_crashing_at, stray_files,
    CRASH_MARKER,
};
use lazyetl::repo::{updates, Repository};
use lazyetl::{EtlOp, Warehouse, WarehouseConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn cfg() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        cache_shards: 4,
        ..Default::default()
    }
}

/// The query mix answers are checked against (metadata + both Figure-1
/// data queries, so tables *and* cache segments matter).
const MIX: [&str; 3] = [
    "SELECT network, station, COUNT(*) FROM mseed.files GROUP BY network, station",
    FIGURE1_Q2,
    FIGURE1_Q1,
];

fn answers(wh: &Warehouse) -> Vec<Arc<lazyetl::store::Table>> {
    MIX.iter().map(|q| wh.query(q).unwrap().table).collect()
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

fn scratch_copy(src: &Path, tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dst = src
        .parent()
        .unwrap()
        .join(format!("_scratch_{tag}_{n}_{}", std::process::id()));
    std::fs::remove_dir_all(&dst).ok();
    copy_dir(src, &dst);
    dst
}

/// Build: repo + a committed epoch-1 save made by a warm warehouse, then
/// drift the repository so the old and new snapshots genuinely differ.
fn epoch1_with_drift(tag: &str) -> (common::TestRepo, PathBuf) {
    let repo = figure1_repo(tag, 4096);
    let saved = repo.root.join("_saved");
    {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        answers(&wh);
        save_warehouse(&wh, &saved).unwrap();
    }
    let mut r = Repository::open(&repo.root).unwrap();
    let target = r
        .files()
        .iter()
        .find(|f| f.uri.contains("HGN") && f.uri.contains("BHZ"))
        .unwrap()
        .uri
        .clone();
    updates::append_records(&mut r, &target, 20, 7).unwrap();
    (repo, saved)
}

#[test]
fn every_crash_point_recovers_to_a_queryable_warehouse() {
    let (repo, saved) = epoch1_with_drift("crash_sweep");

    // Ground truth against the drifted repository.
    let truth = {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        answers(&wh)
    };

    // Enumerate the epoch-2 save's durable steps on a scratch copy. The
    // step count is deterministic: same repository, same query mix, same
    // previous epoch to clean up.
    let n = {
        let dir = scratch_copy(&saved, "probe");
        let wh = Warehouse::open_saved(&repo.root, &dir, cfg()).unwrap();
        answers(&wh);
        let report = save_warehouse(&wh, &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(!report.segments.is_empty(), "warm save writes segments");
        report.crash_points
    };
    assert!(n > 20, "expected a rich step enumeration, got {n}");

    for k in 1..=n {
        let dir = scratch_copy(&saved, "k");
        let wh = Warehouse::open_saved(&repo.root, &dir, cfg()).unwrap();
        answers(&wh); // warm the cache so the save has segments to write
        let err = save_warehouse_crashing_at(&wh, &dir, k)
            .expect_err("save must abort at an enumerated point");
        assert!(
            err.to_string().contains(CRASH_MARKER),
            "step {k}: unexpected failure {err}"
        );
        drop(wh);

        // Reopen after the "kill": the directory must recover to the old
        // or the new epoch, answer the whole mix correctly, and carry no
        // debris.
        let re = Warehouse::open_saved(&repo.root, &dir, cfg())
            .unwrap_or_else(|e| panic!("step {k}: reopen failed: {e}"));
        let manifest = read_manifest(&dir).unwrap();
        assert!(
            manifest.epoch == 1 || manifest.epoch == 2,
            "step {k}: torn epoch {}",
            manifest.epoch
        );
        let got = answers(&re);
        assert_eq!(got, truth, "step {k}: wrong answers after recovery");
        assert!(
            stray_files(&dir).is_empty(),
            "step {k}: debris left: {:?}",
            stray_files(&dir)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn every_crash_point_recovers_for_eager_saves() {
    let repo = figure1_repo("crash_eager", 4096);
    let saved = repo.root.join("_saved");
    let truth = {
        let wh = Warehouse::open_eager(&repo.root, cfg()).unwrap();
        let t = wh.query(FIGURE1_Q2).unwrap().table;
        save_warehouse(&wh, &saved).unwrap();
        t
    };
    let n = {
        let dir = scratch_copy(&saved, "eprobe");
        let wh = Warehouse::open_saved(&repo.root, &dir, cfg()).unwrap();
        let report = save_warehouse(&wh, &dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        report.crash_points
    };
    for k in 1..=n {
        let dir = scratch_copy(&saved, "ek");
        let wh = Warehouse::open_saved(&repo.root, &dir, cfg()).unwrap();
        let err = save_warehouse_crashing_at(&wh, &dir, k).expect_err("must crash");
        assert!(err.to_string().contains(CRASH_MARKER));
        drop(wh);
        let re = Warehouse::open_saved(&repo.root, &dir, cfg())
            .unwrap_or_else(|e| panic!("eager step {k}: reopen failed: {e}"));
        assert_eq!(re.query(FIGURE1_Q2).unwrap().table, truth, "eager step {k}");
        assert!(stray_files(&dir).is_empty(), "eager step {k}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn interrupted_save_is_rolled_back_and_journaled() {
    let (repo, saved) = epoch1_with_drift("rollback");
    let dir = scratch_copy(&saved, "rb");
    let wh = Warehouse::open_saved(&repo.root, &dir, cfg()).unwrap();
    answers(&wh);
    // Crash inside the first table write: epoch 2 began, never committed.
    save_warehouse_crashing_at(&wh, &dir, 3).expect_err("crash");
    drop(wh);
    let ops = replay_journal(&dir);
    assert!(
        matches!(ops.first(), Some(EtlOp::SaveBegin { epoch: 2 })),
        "journal records the interrupted begin: {ops:?}"
    );
    assert!(!ops.iter().any(|op| matches!(op, EtlOp::SaveCommit { .. })));
    let re = Warehouse::open_saved(&repo.root, &dir, cfg()).unwrap();
    assert_eq!(read_manifest(&dir).unwrap().epoch, 1, "old snapshot wins");
    assert!(
        re.etl_log()
            .count_matching(|op| matches!(op, EtlOp::RecoveryRollback { epoch: 2 }))
            > 0,
        "reopened log shows the rollback"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupt one on-disk file with `mutate`, reopen, and return the
/// reopened warehouse result for inspection.
fn reopen_after<F: FnOnce(&Path)>(tag: &str, mutate: F) -> (common::TestRepo, PathBuf) {
    let repo = figure1_repo(tag, 4096);
    let saved = repo.root.join("_saved");
    let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
    answers(&wh);
    let report = save_warehouse(&wh, &saved).unwrap();
    assert!(!report.segments.is_empty());
    drop(wh);
    mutate(&saved);
    (repo, saved)
}

#[test]
fn truncated_segment_degrades_to_cold_cache_not_wrong_answers() {
    let (repo, saved) = reopen_after("trunc_seg", |dir| {
        let seg = first_segment(dir);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() / 3]).unwrap();
    });
    let truth = {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        answers(&wh)
    };
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(
        answers(&re),
        truth,
        "truncated segment must not change answers"
    );
    let stats = re.cache_snapshot().stats;
    assert_eq!(
        stats.segments_rejected, 1,
        "exactly the torn segment rejected"
    );
    assert!(stats.segments_loaded >= 1, "other segments still hydrate");
}

#[test]
fn bit_flipped_segment_is_rejected() {
    let (repo, saved) = reopen_after("flip_seg", |dir| {
        let seg = first_segment(dir);
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&seg, &bytes).unwrap();
    });
    let truth = {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        answers(&wh)
    };
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(answers(&re), truth);
    assert_eq!(re.cache_snapshot().stats.segments_rejected, 1);
}

#[test]
fn bit_flipped_checksum_footer_is_rejected() {
    let (repo, saved) = reopen_after("flip_footer", |dir| {
        let seg = first_segment(dir);
        let mut bytes = std::fs::read(&seg).unwrap();
        let at = bytes.len() - 12; // inside the footer's checksum field
        bytes[at] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();
    });
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert!(answers(&re).iter().all(|t| t.num_rows() > 0));
    assert_eq!(re.cache_snapshot().stats.segments_rejected, 1);
}

#[test]
fn bit_flipped_table_fails_the_reopen_loudly() {
    let (repo, saved) = reopen_after("flip_table", |dir| {
        let manifest = read_manifest(dir).unwrap();
        let path = dir.join(&manifest.tables[1].name); // records table
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
    });
    // Metadata integrity is load-bearing (it decides what exists), so a
    // corrupt table must fail the open, not silently degrade.
    assert!(Warehouse::open_saved(&repo.root, &saved, cfg()).is_err());
}

#[test]
fn corrupt_manifest_fails_without_destroying_the_snapshot() {
    let (repo, saved) = reopen_after("bad_manifest", |dir| {
        std::fs::write(dir.join("MANIFEST"), "lazyetl-warehouse-v9\nmode=???\n").unwrap();
    });
    assert!(Warehouse::open_saved(&repo.root, &saved, cfg()).is_err());
    // Recovery refused to sweep: every epoch-1 file is still there, so
    // restoring the manifest from a backup would restore the warehouse.
    assert!(saved.join("files.e1.lztb").exists());
    assert!(saved.join("records.e1.lztb").exists());
    assert!(saved.join("segments.e1").exists());
}

#[test]
fn journal_garbage_and_torn_tail_are_ignored() {
    let (repo, saved) = reopen_after("bad_journal", |dir| {
        let mut journal = std::fs::read_to_string(dir.join("JOURNAL")).unwrap();
        journal.push_str("nonsense line here\ncommit epo"); // torn final append
        std::fs::write(dir.join("JOURNAL"), journal).unwrap();
    });
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert!(answers(&re).iter().all(|t| t.num_rows() > 0));
}

#[test]
fn missing_segment_file_degrades_to_cold_cache() {
    let (repo, saved) = reopen_after("missing_seg", |dir| {
        std::fs::remove_file(first_segment(dir)).unwrap();
    });
    let truth = {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        answers(&wh)
    };
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(answers(&re), truth);
    assert_eq!(re.cache_snapshot().stats.segments_rejected, 1);
}

fn first_segment(dir: &Path) -> PathBuf {
    let manifest = read_manifest(dir).unwrap();
    dir.join(&manifest.segments.first().expect("save wrote segments").name)
}
