//! Mixed-format repositories: MiniSEED and SAC files side by side behind
//! one warehouse, one schema and one query interface — the format-agnostic
//! extraction boundary the paper's §2 calls for.

mod common;

use lazyetl::mseed::gen::{GeneratorConfig, RepoFormat};
use lazyetl::mseed::Timestamp;
use lazyetl::{Warehouse, WarehouseConfig};

fn config(format: RepoFormat, seed: u64) -> GeneratorConfig {
    let inv = lazyetl::mseed::inventory::default_inventory();
    GeneratorConfig {
        stations: inv
            .iter()
            .filter(|s| s.network == "NL" || s.station == "ISK")
            .cloned()
            .collect(),
        channels: vec!["BHZ".into(), "BHE".into()],
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 10, 0, 0),
        file_duration_secs: 120,
        files_per_stream: 2,
        format,
        seed,
        ..Default::default()
    }
}

fn no_refresh() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

#[test]
fn sac_only_repository_loads_and_queries() {
    let repo = common::build("saconly", config(RepoFormat::SacOnly, 7));
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    let lr = wh.load_report();
    assert_eq!(lr.files, repo.generated.files.len());
    assert_eq!(lr.records, lr.files, "SAC: one record per file");
    assert_eq!(lr.samples_loaded, 0);
    // Metadata carries the SAC encoding tag.
    let out = wh
        .query("SELECT DISTINCT encoding FROM mseed.files ORDER BY encoding")
        .unwrap();
    assert_eq!(out.table.num_rows(), 1);
    assert_eq!(out.table.row(0).unwrap()[0].as_str().unwrap(), "SAC-F32");
    // Query actual data through the identical SQL surface.
    let out = wh
        .query(
            "SELECT COUNT(*), MIN(D.sample_value), MAX(D.sample_value) \
             FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE'",
        )
        .unwrap();
    let row = out.table.row(0).unwrap();
    let expected: u64 = repo
        .generated
        .files
        .iter()
        .filter(|f| f.source.station == "ISK" && f.source.channel == "BHE")
        .map(|f| f.num_samples as u64)
        .sum();
    assert_eq!(row[0].as_i64().unwrap() as u64, expected);
    assert!(row[1].as_f64().unwrap() < row[2].as_f64().unwrap());
}

#[test]
fn mixed_repository_same_answers_as_mseed_only() {
    // Same seed => identical waveforms; only the container format differs.
    let mseed_repo = common::build("mix_ms", config(RepoFormat::MseedOnly, 11));
    let mixed_repo = common::build("mix_mx", config(RepoFormat::Mixed, 11));
    let wh_ms = Warehouse::open_lazy(&mseed_repo.root, no_refresh()).unwrap();
    let wh_mx = Warehouse::open_lazy(&mixed_repo.root, no_refresh()).unwrap();
    for sql in [
        "SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK'",
        "SELECT F.station, MIN(D.sample_value), MAX(D.sample_value) FROM mseed.dataview \
         WHERE F.network = 'NL' AND F.channel = 'BHZ' GROUP BY F.station ORDER BY F.station",
    ] {
        let a = wh_ms.query(sql).unwrap();
        let b = wh_mx.query(sql).unwrap();
        assert_eq!(a.table.num_rows(), b.table.num_rows(), "{sql}");
        for i in 0..a.table.num_rows() {
            let ra = a.table.row(i).unwrap();
            let rb = b.table.row(i).unwrap();
            for (va, vb) in ra.iter().zip(&rb) {
                match (va.as_f64(), vb.as_f64()) {
                    // SAC stores f32: allow float32 rounding.
                    (Some(x), Some(y)) => assert!(
                        (x - y).abs() <= x.abs().max(1.0) * 1e-6,
                        "{sql}: {x} vs {y}"
                    ),
                    _ => assert_eq!(va, vb, "{sql}"),
                }
            }
        }
    }
    // Both formats really are present in the mixed repository.
    let exts: std::collections::BTreeSet<String> = mixed_repo
        .generated
        .files
        .iter()
        .map(|f| f.path.extension().unwrap().to_string_lossy().to_string())
        .collect();
    assert_eq!(
        exts.into_iter().collect::<Vec<_>>(),
        vec!["mseed".to_string(), "sac".to_string()]
    );
}

#[test]
fn lazy_extraction_is_selective_across_formats() {
    let repo = common::build("mix_sel", config(RepoFormat::Mixed, 13));
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    let out = wh
        .query("SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'WIT'")
        .unwrap();
    assert!(out.table.row(0).unwrap()[0].as_i64().unwrap() > 0);
    for uri in &out.report.files_extracted {
        assert!(uri.contains("WIT"), "only WIT files touched: {uri}");
    }
    assert_eq!(out.report.files_extracted.len(), 4); // 2 channels x 2 files
}

#[test]
fn sac_cache_and_staleness_work() {
    let repo = common::build("mix_cache", config(RepoFormat::SacOnly, 17));
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    let sql = "SELECT AVG(D.sample_value) FROM mseed.dataview WHERE F.station = 'HGN' AND F.channel = 'BHZ'";
    let cold = wh.query(sql).unwrap();
    assert!(cold.report.records_extracted > 0);
    let warm = wh.query(sql).unwrap();
    assert_eq!(warm.report.records_extracted, 0);
    assert_eq!(warm.report.cache_hits, cold.report.records_extracted);
    assert_eq!(
        cold.table.row(0).unwrap()[0].as_f64().unwrap(),
        warm.table.row(0).unwrap()[0].as_f64().unwrap()
    );
}
