//! Mixed-format repositories: MiniSEED and SAC files side by side behind
//! one warehouse, one schema and one query interface — the format-agnostic
//! extraction boundary the paper's §2 calls for. The federation suite
//! below mounts three *separate* sources (local mSEED, CSV, simulated
//! remote) into one warehouse and proves the combined lazy answer equals
//! an eager warehouse over the union directory.

mod common;

use lazyetl::mseed::gen::{GeneratorConfig, RepoFormat};
use lazyetl::mseed::Timestamp;
use lazyetl::repo::{CsvSource, RemoteSource, Repository};
use lazyetl::{Warehouse, WarehouseBuilder, WarehouseConfig};

fn config(format: RepoFormat, seed: u64) -> GeneratorConfig {
    let inv = lazyetl::mseed::inventory::default_inventory();
    GeneratorConfig {
        stations: inv
            .iter()
            .filter(|s| s.network == "NL" || s.station == "ISK")
            .cloned()
            .collect(),
        channels: vec!["BHZ".into(), "BHE".into()],
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 10, 0, 0),
        file_duration_secs: 120,
        files_per_stream: 2,
        format,
        seed,
        ..Default::default()
    }
}

fn no_refresh() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

#[test]
fn sac_only_repository_loads_and_queries() {
    let repo = common::build("saconly", config(RepoFormat::SacOnly, 7));
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    let lr = wh.load_report();
    assert_eq!(lr.files, repo.generated.files.len());
    assert_eq!(lr.records, lr.files, "SAC: one record per file");
    assert_eq!(lr.samples_loaded, 0);
    // Metadata carries the SAC encoding tag.
    let out = wh
        .query("SELECT DISTINCT encoding FROM mseed.files ORDER BY encoding")
        .unwrap();
    assert_eq!(out.table.num_rows(), 1);
    assert_eq!(out.table.row(0).unwrap()[0].as_str().unwrap(), "SAC-F32");
    // Query actual data through the identical SQL surface.
    let out = wh
        .query(
            "SELECT COUNT(*), MIN(D.sample_value), MAX(D.sample_value) \
             FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE'",
        )
        .unwrap();
    let row = out.table.row(0).unwrap();
    let expected: u64 = repo
        .generated
        .files
        .iter()
        .filter(|f| f.source.station == "ISK" && f.source.channel == "BHE")
        .map(|f| f.num_samples as u64)
        .sum();
    assert_eq!(row[0].as_i64().unwrap() as u64, expected);
    assert!(row[1].as_f64().unwrap() < row[2].as_f64().unwrap());
}

#[test]
fn mixed_repository_same_answers_as_mseed_only() {
    // Same seed => identical waveforms; only the container format differs.
    let mseed_repo = common::build("mix_ms", config(RepoFormat::MseedOnly, 11));
    let mixed_repo = common::build("mix_mx", config(RepoFormat::Mixed, 11));
    let wh_ms = Warehouse::open_lazy(&mseed_repo.root, no_refresh()).unwrap();
    let wh_mx = Warehouse::open_lazy(&mixed_repo.root, no_refresh()).unwrap();
    for sql in [
        "SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK'",
        "SELECT F.station, MIN(D.sample_value), MAX(D.sample_value) FROM mseed.dataview \
         WHERE F.network = 'NL' AND F.channel = 'BHZ' GROUP BY F.station ORDER BY F.station",
    ] {
        let a = wh_ms.query(sql).unwrap();
        let b = wh_mx.query(sql).unwrap();
        assert_eq!(a.table.num_rows(), b.table.num_rows(), "{sql}");
        for i in 0..a.table.num_rows() {
            let ra = a.table.row(i).unwrap();
            let rb = b.table.row(i).unwrap();
            for (va, vb) in ra.iter().zip(&rb) {
                match (va.as_f64(), vb.as_f64()) {
                    // SAC stores f32: allow float32 rounding.
                    (Some(x), Some(y)) => assert!(
                        (x - y).abs() <= x.abs().max(1.0) * 1e-6,
                        "{sql}: {x} vs {y}"
                    ),
                    _ => assert_eq!(va, vb, "{sql}"),
                }
            }
        }
    }
    // Both formats really are present in the mixed repository.
    let exts: std::collections::BTreeSet<String> = mixed_repo
        .generated
        .files
        .iter()
        .map(|f| f.path.extension().unwrap().to_string_lossy().to_string())
        .collect();
    assert_eq!(
        exts.into_iter().collect::<Vec<_>>(),
        vec!["mseed".to_string(), "sac".to_string()]
    );
}

#[test]
fn lazy_extraction_is_selective_across_formats() {
    let repo = common::build("mix_sel", config(RepoFormat::Mixed, 13));
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    let out = wh
        .query("SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'WIT'")
        .unwrap();
    assert!(out.table.row(0).unwrap()[0].as_i64().unwrap() > 0);
    for uri in &out.report.files_extracted {
        assert!(uri.contains("WIT"), "only WIT files touched: {uri}");
    }
    assert_eq!(out.report.files_extracted.len(), 4); // 2 channels x 2 files
}

/// Three disjoint slices of the inventory, one per backend kind:
/// NL → local mSEED, GR → CSV, KO → simulated remote (over mSEED).
fn federation_slices(tag: &str) -> (common::TestRepo, common::TestRepo, common::TestRepo) {
    let inv = lazyetl::mseed::inventory::default_inventory();
    let slice = |network: &str, format: RepoFormat| GeneratorConfig {
        stations: inv
            .iter()
            .filter(|s| s.network == network)
            .cloned()
            .collect(),
        channels: vec!["BHZ".into(), "BHE".into()],
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 10, 0, 0),
        file_duration_secs: 120,
        files_per_stream: 2,
        format,
        seed: 0xFED,
        ..Default::default()
    };
    (
        common::build(&format!("{tag}_nl"), slice("NL", RepoFormat::MseedOnly)),
        common::build(&format!("{tag}_gr"), slice("GR", RepoFormat::CsvOnly)),
        common::build(&format!("{tag}_ko"), slice("KO", RepoFormat::MseedOnly)),
    )
}

/// Mount the three slices into one lazy federated warehouse.
fn federated_warehouse(
    slices: &(common::TestRepo, common::TestRepo, common::TestRepo),
) -> Warehouse {
    WarehouseBuilder::new()
        .config(no_refresh())
        .source(
            "archive",
            Box::new(Repository::open(&slices.0.root).unwrap()),
        )
        .source(
            "surveys",
            Box::new(CsvSource::open(&slices.1.root).unwrap()),
        )
        .source(
            "orfeus",
            Box::new(RemoteSource::open(&slices.2.root).unwrap()),
        )
        .open()
        .unwrap()
}

/// Copy every slice's files into one flat directory (the eager baseline's
/// input: what a classic warehouse would ingest after `scp`-ing all three
/// archives into one place).
fn union_of(slices: &(common::TestRepo, common::TestRepo, common::TestRepo)) -> std::path::PathBuf {
    fn copy_tree(src: &std::path::Path, dst: &std::path::Path) {
        std::fs::create_dir_all(dst).unwrap();
        for f in std::fs::read_dir(src).unwrap() {
            let f = f.unwrap();
            if f.path().is_dir() {
                copy_tree(&f.path(), &dst.join(f.file_name()));
            } else {
                std::fs::copy(f.path(), dst.join(f.file_name())).unwrap();
            }
        }
    }
    let dst = std::env::temp_dir().join(format!("lazyetl_it_union_{}", std::process::id()));
    std::fs::remove_dir_all(&dst).ok();
    for repo in [&slices.0, &slices.1, &slices.2] {
        copy_tree(&repo.root, &dst);
    }
    dst
}

const SPANNING_QUERY: &str = "SELECT F.station, COUNT(*), MIN(D.sample_value), \
     MAX(D.sample_value) FROM mseed.dataview WHERE F.channel = 'BHZ' \
     GROUP BY F.station ORDER BY F.station";

#[test]
fn federated_query_equals_eager_union() {
    let slices = federation_slices("fed_eq");
    let fed = federated_warehouse(&slices);
    let union = union_of(&slices);
    let eager = Warehouse::open_eager(&union, no_refresh()).unwrap();

    let f = fed.query(SPANNING_QUERY).unwrap();
    let e = eager.query(SPANNING_QUERY).unwrap();
    // Byte-identical answers: same rendering, cell for cell.
    assert_eq!(
        f.table.to_ascii(1000),
        e.table.to_ascii(1000),
        "federated lazy answer must equal the eager union"
    );
    // All eight stations answered — the query really spanned every mount.
    assert_eq!(f.table.num_rows(), 8);
    // Extraction touched all three mounts, under their display names.
    let touched: Vec<&str> = f
        .report
        .files_extracted
        .iter()
        .filter_map(|u| u.split_once("://").map(|(m, _)| m))
        .collect();
    for mount in ["archive", "surveys", "orfeus"] {
        assert!(touched.contains(&mount), "{mount} never extracted");
    }
    std::fs::remove_dir_all(&union).ok();
}

#[test]
fn federated_requery_extracts_nothing() {
    let slices = federation_slices("fed_warm");
    let fed = federated_warehouse(&slices);
    let cold = fed.query(SPANNING_QUERY).unwrap();
    assert!(cold.report.records_extracted > 0);
    let after_cold = fed.stats_snapshot();
    let warm = fed.query(SPANNING_QUERY).unwrap();
    assert_eq!(warm.report.records_extracted, 0, "warm re-extraction");
    assert_eq!(warm.report.cache_hits, cold.report.records_extracted);
    assert_eq!(warm.table.to_ascii(1000), cold.table.to_ascii(1000));
    // No per-source counter moved during the warm query — not one mount
    // was touched again.
    let after_warm = fed.stats_snapshot();
    for (c, w) in after_cold.sources.iter().zip(&after_warm.sources) {
        assert_eq!(c.files_extracted, w.files_extracted, "{}", c.name);
        assert_eq!(c.records_extracted, w.records_extracted, "{}", c.name);
        assert_eq!(c.bytes_read, w.bytes_read, "{}", c.name);
        assert_eq!(c.fetch_requests, w.fetch_requests, "{}", c.name);
    }
}

#[test]
fn federated_accounting_is_exact_per_source() {
    let slices = federation_slices("fed_acct");
    let fed = federated_warehouse(&slices);
    fed.query(SPANNING_QUERY).unwrap();
    let snap = fed.stats_snapshot();
    assert_eq!(snap.sources.len(), 3);
    let by_name: std::collections::BTreeMap<&str, &lazyetl::SourceStats> =
        snap.sources.iter().map(|s| (s.name.as_str(), s)).collect();

    // Ground truth per slice: BHZ files and their record/sample counts.
    for (mount, repo, kind) in [
        ("archive", &slices.0, "local"),
        ("surveys", &slices.1, "csv"),
        ("orfeus", &slices.2, "remote"),
    ] {
        let s = by_name[mount];
        assert_eq!(s.kind, kind, "{mount}");
        assert_eq!(s.files, repo.generated.files.len(), "{mount}: files");
        let bhz: Vec<_> = repo
            .generated
            .files
            .iter()
            .filter(|f| f.source.channel == "BHZ")
            .collect();
        assert_eq!(s.files_extracted, bhz.len() as u64, "{mount}: extractions");
        let samples: u64 = bhz.iter().map(|f| f.num_samples as u64).sum();
        assert_eq!(s.samples_extracted, samples, "{mount}: samples");
        assert!(s.records_extracted > 0, "{mount}: records");
        assert!(s.bytes_read > 0, "{mount}: bytes");
    }
    // Only the remote mount range-fetches; the locals read their paths.
    assert!(by_name["orfeus"].fetch_requests > 0);
    assert!(by_name["orfeus"].fetched_bytes > 0);
    assert!(by_name["orfeus"].simulated_io > std::time::Duration::ZERO);
    assert_eq!(by_name["archive"].fetch_requests, 0);
    assert_eq!(by_name["surveys"].fetch_requests, 0);
}

#[test]
fn sac_cache_and_staleness_work() {
    let repo = common::build("mix_cache", config(RepoFormat::SacOnly, 17));
    let wh = Warehouse::open_lazy(&repo.root, no_refresh()).unwrap();
    let sql = "SELECT AVG(D.sample_value) FROM mseed.dataview WHERE F.station = 'HGN' AND F.channel = 'BHZ'";
    let cold = wh.query(sql).unwrap();
    assert!(cold.report.records_extracted > 0);
    let warm = wh.query(sql).unwrap();
    assert_eq!(warm.report.records_extracted, 0);
    assert_eq!(warm.report.cache_hits, cold.report.records_extracted);
    assert_eq!(
        cold.table.row(0).unwrap()[0].as_f64().unwrap(),
        warm.table.row(0).unwrap()[0].as_f64().unwrap()
    );
}
