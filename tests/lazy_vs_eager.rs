//! End-to-end equivalence and cost-asymmetry tests: the lazy warehouse
//! must answer every query identically to the eager baseline, while
//! reading far less data up front.

mod common;

use common::{figure1_repo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::store::Value;
use lazyetl::{Mode, Warehouse, WarehouseConfig};

fn no_refresh_config() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

#[test]
fn figure1_queries_agree_between_modes() {
    let repo = figure1_repo("agree", 512);
    let lazy = Warehouse::open_lazy(&repo.root, no_refresh_config()).unwrap();
    let eager = Warehouse::open_eager(&repo.root, no_refresh_config()).unwrap();
    assert_eq!(lazy.mode(), Mode::Lazy);
    assert_eq!(eager.mode(), Mode::Eager);

    for (name, sql) in [("Q1", FIGURE1_Q1), ("Q2", FIGURE1_Q2)] {
        let l = lazy.query(sql).unwrap();
        let e = eager.query(sql).unwrap();
        assert_eq!(
            l.table.num_rows(),
            e.table.num_rows(),
            "{name}: row counts diverge"
        );
        for row in 0..l.table.num_rows() {
            let lr = l.table.row(row).unwrap();
            let er = e.table.row(row).unwrap();
            for (a, b) in lr.iter().zip(&er) {
                match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => {
                        assert!((x - y).abs() < 1e-9, "{name} row {row}: {x} vs {y}")
                    }
                    _ => assert_eq!(a, b, "{name} row {row}"),
                }
            }
        }
    }
}

#[test]
fn q1_produces_a_real_average() {
    let repo = figure1_repo("avg", 512);
    let lazy = Warehouse::open_lazy(&repo.root, no_refresh_config()).unwrap();
    let out = lazy.query(FIGURE1_Q1).unwrap();
    assert_eq!(out.table.num_rows(), 1);
    let v = out.table.row(0).unwrap()[0].clone();
    assert!(!v.is_null(), "Q1 window must contain samples");
    // 2 seconds at 40 Hz: candidate sample count is bounded.
    let rewrite = out.report.rewrite.expect("lazy query rewrites");
    assert!(rewrite.fetched_pairs >= 1);
    assert!(!out.report.files_extracted.is_empty());
}

#[test]
fn q2_groups_every_nl_station() {
    let repo = figure1_repo("group", 512);
    let lazy = Warehouse::open_lazy(&repo.root, no_refresh_config()).unwrap();
    let out = lazy.query(FIGURE1_Q2).unwrap();
    // The default inventory has 4 NL stations, each with a BHZ channel.
    assert_eq!(out.table.num_rows(), 4);
    for row in 0..out.table.num_rows() {
        let vals = out.table.row(row).unwrap();
        assert!(matches!(vals[0], Value::Utf8(_)));
        let min = vals[1].as_f64().unwrap();
        let max = vals[2].as_f64().unwrap();
        assert!(min < max, "min {min} < max {max}");
    }
}

#[test]
fn lazy_load_is_cheaper_in_bytes_and_rows() {
    let repo = figure1_repo("cheap", 4096);
    let lazy = Warehouse::open_lazy(&repo.root, no_refresh_config()).unwrap();
    let eager = Warehouse::open_eager(&repo.root, no_refresh_config()).unwrap();
    let lr = lazy.load_report();
    let er = eager.load_report();
    assert_eq!(lr.files, er.files);
    assert_eq!(lr.records, er.records);
    assert_eq!(lr.samples_loaded, 0, "lazy loads no samples");
    assert!(er.samples_loaded > 0);
    assert!(
        lr.bytes_read * 5 < er.bytes_read,
        "lazy read {} bytes, eager {} bytes",
        lr.bytes_read,
        er.bytes_read
    );
    // Warehouse footprint: eager must hold the inflated D table.
    assert!(
        lazy.resident_bytes() * 4 < eager.resident_bytes(),
        "lazy {} bytes resident, eager {}",
        lazy.resident_bytes(),
        eager.resident_bytes()
    );
}

#[test]
fn metadata_queries_extract_nothing() {
    let repo = figure1_repo("meta", 4096);
    let lazy = Warehouse::open_lazy(&repo.root, no_refresh_config()).unwrap();
    let out = lazy
        .query(
            "SELECT station, COUNT(*) AS files FROM mseed.files GROUP BY station ORDER BY station",
        )
        .unwrap();
    assert!(out.table.num_rows() >= 4);
    assert!(out.report.files_extracted.is_empty());
    assert_eq!(out.report.records_extracted, 0);
    assert!(out.report.rewrite.is_none(), "no external scan, no rewrite");

    let out = lazy.query("SELECT COUNT(*) FROM mseed.records").unwrap();
    let n = out.table.row(0).unwrap()[0].as_i64().unwrap();
    assert_eq!(n as usize, lazy.load_report().records);
    assert_eq!(out.report.records_extracted, 0);
}

#[test]
fn selective_query_touches_only_matching_files() {
    let repo = figure1_repo("selective", 512);
    let total_files = repo.generated.files.len();
    let isk_bhe_files: Vec<String> = repo
        .generated
        .files
        .iter()
        .filter(|f| f.source.station == "ISK" && f.source.channel == "BHE")
        .map(|f| {
            f.path
                .strip_prefix(&repo.root)
                .unwrap()
                .to_string_lossy()
                .replace('\\', "/")
        })
        .collect();
    let lazy = Warehouse::open_lazy(&repo.root, no_refresh_config()).unwrap();
    let out = lazy
        .query("SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE'")
        .unwrap();
    assert!(out.table.row(0).unwrap()[0].as_i64().unwrap() > 0);
    assert!(
        out.report.files_extracted.len() < total_files,
        "must not touch all {total_files} files"
    );
    for uri in &out.report.files_extracted {
        assert!(
            isk_bhe_files.contains(uri),
            "extracted {uri} which is not an ISK/BHE file"
        );
    }
    assert_eq!(out.report.files_extracted.len(), isk_bhe_files.len());
}

#[test]
fn record_pruning_limits_extraction_for_narrow_windows() {
    let repo = figure1_repo("prune", 512);
    let lazy = Warehouse::open_lazy(&repo.root, no_refresh_config()).unwrap();
    let out = lazy.query(FIGURE1_Q1).unwrap();
    let rewrite = out.report.rewrite.expect("rewrite happened");
    assert!(
        rewrite.pruned_pairs > 0,
        "2-second window must prune records: {rewrite:?}"
    );
    assert!(rewrite.fetched_pairs < rewrite.candidate_pairs);

    // Ablation: without pruning the same query extracts every candidate.
    let no_prune = Warehouse::open_lazy(
        &repo.root,
        WarehouseConfig {
            record_level_pruning: false,
            auto_refresh: false,
            ..Default::default()
        },
    )
    .unwrap();
    let out2 = no_prune.query(FIGURE1_Q1).unwrap();
    let rewrite2 = out2.report.rewrite.unwrap();
    assert_eq!(rewrite2.pruned_pairs, 0);
    assert!(rewrite2.fetched_pairs > rewrite.fetched_pairs);
    // Same answer either way.
    assert_eq!(
        out.table.row(0).unwrap()[0].as_f64().unwrap(),
        out2.table.row(0).unwrap()[0].as_f64().unwrap()
    );
}

#[test]
fn pushdown_ablation_degenerates_to_full_extraction() {
    let repo = figure1_repo("ablate", 4096);
    let ablated = Warehouse::open_lazy(
        &repo.root,
        WarehouseConfig {
            metadata_predicate_first: false,
            auto_refresh: false,
            ..Default::default()
        },
    )
    .unwrap();
    let total_records = ablated.load_report().records;
    let out = ablated
        .query("SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE'")
        .unwrap();
    let rewrite = out.report.rewrite.unwrap();
    assert_eq!(
        rewrite.fetched_pairs, total_records,
        "without metadata-first, every record is extracted"
    );
}

#[test]
fn direct_data_query_falls_back_to_full_scan() {
    let repo = figure1_repo("fallback", 4096);
    let lazy = Warehouse::open_lazy(&repo.root, no_refresh_config()).unwrap();
    let out = lazy.query("SELECT COUNT(*) FROM mseed.data").unwrap();
    let rewrite = out.report.rewrite.unwrap();
    assert!(rewrite.full_scan_fallback, "no metadata join available");
    let n = out.table.row(0).unwrap()[0].as_i64().unwrap();
    assert_eq!(n as u64, repo.generated.total_samples);
}

#[test]
fn explain_shows_three_stages_with_injection() {
    let repo = figure1_repo("explain", 512);
    let lazy = Warehouse::open_lazy(&repo.root, no_refresh_config()).unwrap();
    let stages = lazy.explain(FIGURE1_Q1).unwrap();
    let names: Vec<&str> = stages.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["logical", "optimized", "rewritten", "explain"]);
    let logical = &stages[0].1;
    let optimized = &stages[1].1;
    let rewritten = &stages[2].1;
    assert!(logical.contains("ExternalScan"), "{logical}");
    assert!(
        optimized.contains("ExternalScan"),
        "still unresolved before runtime: {optimized}"
    );
    assert!(
        rewritten.contains("InlineData: lazy-extract"),
        "runtime injection visible: {rewritten}"
    );
    assert!(!rewritten.contains("ExternalScan"));
}
