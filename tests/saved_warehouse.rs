//! Saved-warehouse lifecycle: persist, reopen without re-ETL, reconcile
//! repository drift — and, with the v2 durable format, reopen *warm*:
//! the record cache itself survives the restart as per-shard segments.

mod common;

use common::{figure1_repo, FIGURE1_Q2};
use lazyetl::core::{
    read_manifest, replay_journal, save_warehouse, save_warehouse_v1, stray_files, Mode,
};
use lazyetl::repo::{updates, Repository};
use lazyetl::{EtlOp, Warehouse, WarehouseConfig};

fn cfg() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

#[test]
fn lazy_save_reopen_identical_answers() {
    let repo = figure1_repo("saved_lazy", 512);
    let saved = repo.root.join("_saved");
    let expected = {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        let out = wh.query(FIGURE1_Q2).unwrap();
        save_warehouse(&wh, &saved).unwrap();
        out.table
    };
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(re.mode(), Mode::Lazy);
    assert_eq!(re.load_report().files, repo.generated.files.len());
    // Bootstrap read zero repository bytes for unchanged files.
    assert_eq!(re.load_report().bytes_read, 0);
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table, expected);
}

#[test]
fn eager_save_reopen_skips_extraction() {
    let repo = figure1_repo("saved_eager", 4096);
    let saved = repo.root.join("_saved");
    let samples = {
        let wh = Warehouse::open_eager(&repo.root, cfg()).unwrap();
        let r = save_warehouse(&wh, &saved).unwrap();
        assert_eq!(r.tables.len(), 3);
        wh.load_report().samples_loaded
    };
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(re.mode(), Mode::Eager);
    assert_eq!(re.load_report().samples_loaded, samples);
    // No extraction happened during reopen: the ETL log records only the
    // bootstrap note.
    assert_eq!(
        re.etl_log()
            .count_matching(|op| matches!(op, lazyetl::EtlOp::Extract { .. })),
        0
    );
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table.num_rows(), 4);
}

#[test]
fn reopen_reconciles_drift() {
    let repo = figure1_repo("saved_drift", 512);
    let saved = repo.root.join("_saved");
    {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        save_warehouse(&wh, &saved).unwrap();
    }
    // Drift: append to one file and add a brand-new one.
    let mut r = Repository::open(&repo.root).unwrap();
    let target = r
        .files()
        .iter()
        .find(|f| f.uri.contains("HGN") && f.uri.contains("BHZ"))
        .unwrap()
        .uri
        .clone();
    let added_samples = updates::append_records(&mut r, &target, 30, 5).unwrap();
    let src = lazyetl::mseed::record::SourceId::new("NL", "HGN", "", "BHZ").unwrap();
    updates::add_file(
        &mut r,
        &src,
        lazyetl::mseed::Timestamp::from_ymd_hms(2010, 1, 13, 0, 0, 0, 0),
        60,
        9,
    )
    .unwrap();

    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    let out = re
        .query("SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
        .unwrap();
    let counted = out.table.row(0).unwrap()[0].as_i64().unwrap() as u64;
    let base: u64 = repo
        .generated
        .files
        .iter()
        .filter(|f| f.source.station == "HGN" && f.source.channel == "BHZ")
        .map(|f| f.num_samples as u64)
        .sum();
    assert_eq!(
        counted,
        base + added_samples as u64 + 2400, // 60 s at 40 Hz new file
        "reconciled warehouse sees appended + new data"
    );
}

#[test]
fn reopen_reconciles_removed_files() {
    let repo = figure1_repo("saved_removed", 512);
    let saved = repo.root.join("_saved");
    {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        save_warehouse(&wh, &saved).unwrap();
    }
    // Remove every WTSB file.
    let r = Repository::open(&repo.root).unwrap();
    for f in r.files() {
        if f.uri.contains("WTSB") {
            std::fs::remove_file(&f.path).unwrap();
        }
    }
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    let out = re
        .query("SELECT COUNT(*) FROM mseed.files WHERE station = 'WTSB'")
        .unwrap();
    assert_eq!(out.table.row(0).unwrap()[0].as_i64().unwrap(), 0);
    // And Figure-1 Q2 now groups only the remaining three NL stations.
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table.num_rows(), 3);
}

#[test]
fn reopen_seeds_planner_from_snapshot_until_drift() {
    let is_bootstrap_with = |op: &EtlOp, needle: &str| {
        matches!(op, EtlOp::PlanRewrite { stage, detail }
            if stage == "bootstrap" && detail.contains(needle))
    };
    let repo = figure1_repo("saved_seed", 512);
    let saved = repo.root.join("_saved");
    {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        save_warehouse(&wh, &saved).unwrap();
    }
    // Undrifted reopen: both persisted sections are adopted — the
    // planner starts with zone maps and the sorted time index already
    // warm — and queries answer identically.
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(
        re.etl_log()
            .count_matching(|op| is_bootstrap_with(op, "planner seed: stats + time index")),
        1,
        "undrifted reopen adopts the persisted stats and time index"
    );
    let seeded = re.query(FIGURE1_Q2).unwrap().table;

    // Drifted reopen: the persisted numbers describe rows that no longer
    // exist, so the warehouse opens statless — and still answers right.
    let mut r = Repository::open(&repo.root).unwrap();
    let target = r.files()[0].uri.clone();
    updates::append_records(&mut r, &target, 30, 2).unwrap();
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(
        re.etl_log()
            .count_matching(|op| is_bootstrap_with(op, "planner seed: skipped")),
        1,
        "drifted reopen falls back to recomputing"
    );
    let statless = re.query(FIGURE1_Q2).unwrap().table;
    assert_eq!(seeded.num_columns(), statless.num_columns());
}

#[test]
fn open_saved_rejects_bad_dir() {
    let repo = figure1_repo("saved_bad", 4096);
    let missing = repo.root.join("_nope");
    assert!(Warehouse::open_saved(&repo.root, &missing, cfg()).is_err());
}

#[test]
fn reopen_restores_warm_cache() {
    let repo = figure1_repo("saved_warm", 4096);
    let saved = repo.root.join("_saved");
    let expected = {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        let cold = wh.query(FIGURE1_Q2).unwrap();
        assert!(cold.report.records_extracted > 0, "cold run extracts");
        let report = save_warehouse(&wh, &saved).unwrap();
        assert!(!report.segments.is_empty(), "warm save persists the cache");
        cold.table
    };
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    // Reopening attached the segments lazily: nothing was read yet.
    assert!(re.cache_snapshot().stats.segments_loaded == 0);
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table, expected);
    assert_eq!(
        out.report.records_extracted, 0,
        "reopened warehouse answers from the rehydrated cache"
    );
    assert!(out.report.cache_hits > 0);
    let stats = re.cache_snapshot().stats;
    assert!(stats.segments_loaded > 0, "touched shards hydrated");
    assert_eq!(stats.segments_rejected, 0);
}

#[test]
fn v1_save_still_opens_cold() {
    let repo = figure1_repo("saved_v1", 4096);
    let saved = repo.root.join("_saved_v1");
    let expected = {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        let out = wh.query(FIGURE1_Q2).unwrap();
        save_warehouse_v1(&wh, &saved).unwrap();
        out.table
    };
    assert_eq!(read_manifest(&saved).unwrap().version, 1);
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(re.mode(), Mode::Lazy);
    assert_eq!(
        re.load_report().bytes_read,
        0,
        "metadata reused from v1 save"
    );
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table, expected);
    assert!(
        out.report.records_extracted > 0,
        "v1 saves carry no cache segments, so the first query re-extracts"
    );
}

#[test]
fn save_leaves_a_committed_journal_and_no_debris() {
    let repo = figure1_repo("saved_clean", 4096);
    let saved = repo.root.join("_saved");
    let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
    wh.query(FIGURE1_Q2).unwrap();
    let report = save_warehouse(&wh, &saved).unwrap();
    assert!(
        stray_files(&saved).is_empty(),
        "no tmp/old-epoch files remain"
    );
    let ops = replay_journal(&saved);
    assert!(ops
        .iter()
        .any(|op| matches!(op, EtlOp::SaveCommit { epoch: 1 })));
    assert!(ops
        .iter()
        .any(|op| matches!(op, EtlOp::SaveCleanup { epoch: 1 })));
    // The warehouse's own log carries the same journal entries (the log
    // doubles as the journal).
    assert_eq!(
        wh.etl_log()
            .count_matching(|op| matches!(op, EtlOp::SaveSegment { .. })),
        report.segments.len()
    );
    let manifest = read_manifest(&saved).unwrap();
    assert_eq!(manifest.version, 2);
    assert_eq!(manifest.shards, wh.config().cache_shards);
    assert_eq!(manifest.tables.len(), 2);
}

#[test]
fn reopen_with_different_shard_count_still_warm() {
    let repo = figure1_repo("saved_reshard", 4096);
    let saved = repo.root.join("_saved");
    let expected = {
        let wh = Warehouse::open_lazy(
            &repo.root,
            WarehouseConfig {
                cache_shards: 8,
                ..cfg()
            },
        )
        .unwrap();
        let out = wh.query(FIGURE1_Q2).unwrap();
        save_warehouse(&wh, &saved).unwrap();
        out.table
    };
    // 8 shards saved, 3 opened: segments fold in eagerly but completely.
    let re = Warehouse::open_saved(
        &repo.root,
        &saved,
        WarehouseConfig {
            cache_shards: 3,
            ..cfg()
        },
    )
    .unwrap();
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table, expected);
    assert_eq!(out.report.records_extracted, 0);
    assert!(out.report.cache_hits > 0);
}

#[test]
fn federated_save_reopen_warm_across_mounts() {
    use lazyetl::mseed::gen::{GeneratorConfig, RepoFormat};
    use lazyetl::repo::{CsvSource, RemoteSource};
    use lazyetl::WarehouseBuilder;

    // Two disjoint slices: NL as a local mSEED archive, GR as a CSV drop,
    // KO behind the simulated-remote backend.
    let inv = lazyetl::mseed::inventory::default_inventory();
    let slice = |network: &str, format: RepoFormat| GeneratorConfig {
        stations: inv
            .iter()
            .filter(|s| s.network == network)
            .cloned()
            .collect(),
        channels: vec!["BHZ".into()],
        start: lazyetl::mseed::Timestamp::from_ymd_hms(2010, 1, 12, 22, 10, 0, 0),
        file_duration_secs: 120,
        files_per_stream: 2,
        format,
        seed: 0x5A7ED,
        ..Default::default()
    };
    let nl = common::build("fedsave_nl", slice("NL", RepoFormat::MseedOnly));
    let gr = common::build("fedsave_gr", slice("GR", RepoFormat::CsvOnly));
    let ko = common::build("fedsave_ko", slice("KO", RepoFormat::MseedOnly));
    let saved = nl.root.join("_saved");
    let sql = "SELECT F.station, COUNT(*), MIN(D.sample_value) FROM mseed.dataview \
               WHERE F.channel = 'BHZ' GROUP BY F.station ORDER BY F.station";
    let builder = || {
        WarehouseBuilder::new()
            .config(cfg())
            .source("archive", Box::new(Repository::open(&nl.root).unwrap()))
            .source("surveys", Box::new(CsvSource::open(&gr.root).unwrap()))
            .source("orfeus", Box::new(RemoteSource::open(&ko.root).unwrap()))
    };

    let expected = {
        let wh = builder().open().unwrap();
        let cold = wh.query(sql).unwrap();
        assert!(cold.report.records_extracted > 0);
        // The process "crashes" after the save commits: nothing else is
        // flushed, the warehouse is simply dropped.
        let report = save_warehouse(&wh, &saved).unwrap();
        assert!(!report.segments.is_empty(), "cache segments persisted");
        cold.table
    };

    let re = builder().open_saved(&saved).unwrap();
    assert_eq!(re.mode(), Mode::Lazy);
    assert_eq!(
        re.load_report().bytes_read,
        0,
        "bootstrap read no source bytes for unchanged mounts"
    );
    let out = re.query(sql).unwrap();
    assert_eq!(out.table, expected, "federated answers survive the restart");
    assert_eq!(
        out.report.records_extracted, 0,
        "every mount answers from the rehydrated cache"
    );
    assert!(out.report.cache_hits > 0);
    // Per-source accounting starts clean and stays clean: no mount
    // re-extracted anything after the reopen.
    for s in &re.stats_snapshot().sources {
        assert_eq!(s.records_extracted, 0, "{}: re-extracted", s.name);
    }
}
