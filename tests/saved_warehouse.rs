//! Saved-warehouse lifecycle: persist, reopen without re-ETL, reconcile
//! repository drift.

mod common;

use common::{figure1_repo, FIGURE1_Q2};
use lazyetl::core::{save_warehouse, Mode};
use lazyetl::repo::{updates, Repository};
use lazyetl::{Warehouse, WarehouseConfig};

fn cfg() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

#[test]
fn lazy_save_reopen_identical_answers() {
    let repo = figure1_repo("saved_lazy", 512);
    let saved = repo.root.join("_saved");
    let expected = {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        let out = wh.query(FIGURE1_Q2).unwrap();
        save_warehouse(&wh, &saved).unwrap();
        out.table
    };
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(re.mode(), Mode::Lazy);
    assert_eq!(re.load_report().files, repo.generated.files.len());
    // Bootstrap read zero repository bytes for unchanged files.
    assert_eq!(re.load_report().bytes_read, 0);
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table, expected);
}

#[test]
fn eager_save_reopen_skips_extraction() {
    let repo = figure1_repo("saved_eager", 4096);
    let saved = repo.root.join("_saved");
    let samples = {
        let wh = Warehouse::open_eager(&repo.root, cfg()).unwrap();
        let r = save_warehouse(&wh, &saved).unwrap();
        assert_eq!(r.tables.len(), 3);
        wh.load_report().samples_loaded
    };
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    assert_eq!(re.mode(), Mode::Eager);
    assert_eq!(re.load_report().samples_loaded, samples);
    // No extraction happened during reopen: the ETL log records only the
    // bootstrap note.
    assert_eq!(
        re.etl_log()
            .count_matching(|op| matches!(op, lazyetl::EtlOp::Extract { .. })),
        0
    );
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table.num_rows(), 4);
}

#[test]
fn reopen_reconciles_drift() {
    let repo = figure1_repo("saved_drift", 512);
    let saved = repo.root.join("_saved");
    {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        save_warehouse(&wh, &saved).unwrap();
    }
    // Drift: append to one file and add a brand-new one.
    let mut r = Repository::open(&repo.root).unwrap();
    let target = r
        .files()
        .iter()
        .find(|f| f.uri.contains("HGN") && f.uri.contains("BHZ"))
        .unwrap()
        .uri
        .clone();
    let added_samples = updates::append_records(&mut r, &target, 30, 5).unwrap();
    let src = lazyetl::mseed::record::SourceId::new("NL", "HGN", "", "BHZ").unwrap();
    updates::add_file(
        &mut r,
        &src,
        lazyetl::mseed::Timestamp::from_ymd_hms(2010, 1, 13, 0, 0, 0, 0),
        60,
        9,
    )
    .unwrap();

    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    let out = re
        .query("SELECT COUNT(*) FROM mseed.dataview WHERE F.station = 'HGN' AND F.channel = 'BHZ'")
        .unwrap();
    let counted = out.table.row(0).unwrap()[0].as_i64().unwrap() as u64;
    let base: u64 = repo
        .generated
        .files
        .iter()
        .filter(|f| f.source.station == "HGN" && f.source.channel == "BHZ")
        .map(|f| f.num_samples as u64)
        .sum();
    assert_eq!(
        counted,
        base + added_samples as u64 + 2400, // 60 s at 40 Hz new file
        "reconciled warehouse sees appended + new data"
    );
}

#[test]
fn reopen_reconciles_removed_files() {
    let repo = figure1_repo("saved_removed", 512);
    let saved = repo.root.join("_saved");
    {
        let wh = Warehouse::open_lazy(&repo.root, cfg()).unwrap();
        save_warehouse(&wh, &saved).unwrap();
    }
    // Remove every WTSB file.
    let r = Repository::open(&repo.root).unwrap();
    for f in r.files() {
        if f.uri.contains("WTSB") {
            std::fs::remove_file(&f.path).unwrap();
        }
    }
    let re = Warehouse::open_saved(&repo.root, &saved, cfg()).unwrap();
    let out = re
        .query("SELECT COUNT(*) FROM mseed.files WHERE station = 'WTSB'")
        .unwrap();
    assert_eq!(out.table.row(0).unwrap()[0].as_i64().unwrap(), 0);
    // And Figure-1 Q2 now groups only the remaining three NL stations.
    let out = re.query(FIGURE1_Q2).unwrap();
    assert_eq!(out.table.num_rows(), 3);
}

#[test]
fn open_saved_rejects_bad_dir() {
    let repo = figure1_repo("saved_bad", 4096);
    let missing = repo.root.join("_nope");
    assert!(Warehouse::open_saved(&repo.root, &missing, cfg()).is_err());
}
