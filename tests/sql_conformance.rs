//! SQL conformance battery: a matrix of queries through the full lazy
//! warehouse whose expected answers are computed independently from the
//! generator's ground truth.

mod common;

use common::figure1_repo;
use lazyetl::store::Value;
use lazyetl::{Warehouse, WarehouseConfig};

fn wh() -> (common::TestRepo, Warehouse) {
    let repo = figure1_repo("conformance", 512);
    let wh = Warehouse::open_lazy(
        &repo.root,
        WarehouseConfig {
            auto_refresh: false,
            ..Default::default()
        },
    )
    .unwrap();
    (repo, wh)
}

#[test]
fn scalar_expressions() {
    let (_r, wh) = wh();
    let out = wh
        .query("SELECT 1 + 2 * 3, 10 / 4, 10 % 3, -5, ABS(-2.5), SQRT(16.0), POWER(2, 10)")
        .unwrap();
    let row = out.table.row(0).unwrap();
    assert_eq!(row[0], Value::Int64(7));
    assert_eq!(row[1], Value::Float64(2.5));
    assert_eq!(row[2], Value::Int64(1));
    assert_eq!(row[3], Value::Int64(-5));
    assert_eq!(row[4], Value::Float64(2.5));
    assert_eq!(row[5], Value::Float64(4.0));
    assert_eq!(row[6], Value::Float64(1024.0));
}

#[test]
fn string_functions_and_like() {
    let (_r, wh) = wh();
    let out = wh
        .query(
            "SELECT station, LOWER(station), LENGTH(station) FROM mseed.files \
             WHERE station LIKE 'I%' GROUP BY station",
        )
        .unwrap();
    assert_eq!(out.table.num_rows(), 1);
    let row = out.table.row(0).unwrap();
    assert_eq!(row[0], Value::Utf8("ISK".into()));
    assert_eq!(row[1], Value::Utf8("isk".into()));
    assert_eq!(row[2], Value::Int64(3));
}

#[test]
fn aggregates_against_ground_truth() {
    let (repo, wh) = wh();
    // COUNT(*) over records must equal generator record count per file sum.
    let out = wh.query("SELECT COUNT(*) FROM mseed.records").unwrap();
    let total_records = out.table.row(0).unwrap()[0].as_i64().unwrap();
    assert!(total_records > 0);
    // SUM of per-file num_samples equals total generated samples.
    let out = wh
        .query("SELECT SUM(num_samples) FROM mseed.files")
        .unwrap();
    assert_eq!(
        out.table.row(0).unwrap()[0].as_i64().unwrap() as u64,
        repo.generated.total_samples
    );
    // MIN/MAX/AVG relationships.
    let out = wh
        .query("SELECT MIN(size), MAX(size), AVG(size), COUNT(*) FROM mseed.files")
        .unwrap();
    let row = out.table.row(0).unwrap();
    let (min, max, avg) = (
        row[0].as_f64().unwrap(),
        row[1].as_f64().unwrap(),
        row[2].as_f64().unwrap(),
    );
    assert!(min <= avg && avg <= max);
    assert_eq!(
        row[3].as_i64().unwrap() as usize,
        repo.generated.files.len()
    );
}

#[test]
fn group_by_having_order_limit() {
    let (_r, wh) = wh();
    let out = wh
        .query(
            "SELECT station, COUNT(*) AS files FROM mseed.files \
             GROUP BY station HAVING COUNT(*) >= 2 \
             ORDER BY files DESC, station ASC LIMIT 3",
        )
        .unwrap();
    assert!(out.table.num_rows() <= 3);
    // Descending counts, station ascending within ties.
    let mut last: Option<(i64, String)> = None;
    for i in 0..out.table.num_rows() {
        let row = out.table.row(i).unwrap();
        let count = row[1].as_i64().unwrap();
        let station = row[0].as_str().unwrap().to_string();
        assert!(count >= 2);
        if let Some((lc, ls)) = &last {
            assert!(count < *lc || (count == *lc && station > *ls));
        }
        last = Some((count, station));
    }
}

#[test]
fn distinct_and_in_lists() {
    let (_r, wh) = wh();
    let out = wh
        .query("SELECT DISTINCT channel FROM mseed.files ORDER BY channel")
        .unwrap();
    assert_eq!(out.table.num_rows(), 2); // BHZ + BHE
    let out = wh
        .query(
            "SELECT COUNT(*) FROM mseed.files WHERE station IN ('ISK', 'HGN') \
             AND channel NOT IN ('BHN')",
        )
        .unwrap();
    let n = out.table.row(0).unwrap()[0].as_i64().unwrap();
    assert_eq!(n, 8); // 2 stations x 2 channels x 2 files
}

#[test]
fn between_and_timestamp_literals() {
    let (_r, wh) = wh();
    let out = wh
        .query(
            "SELECT COUNT(*) FROM mseed.records \
             WHERE start_time BETWEEN '2010-01-12T22:10:00' AND '2010-01-12T22:15:00'",
        )
        .unwrap();
    let in_window = out.table.row(0).unwrap()[0].as_i64().unwrap();
    assert!(in_window > 0);
    let out = wh
        .query("SELECT COUNT(*) FROM mseed.records WHERE start_time > '2031-01-01'")
        .unwrap();
    assert_eq!(out.table.row(0).unwrap()[0], Value::Int64(0));
}

#[test]
fn arithmetic_on_columns_and_aliases() {
    let (_r, wh) = wh();
    let out = wh
        .query(
            "SELECT uri, size / 1024 AS kib, num_records * 2 AS doubled \
             FROM mseed.files ORDER BY uri LIMIT 1",
        )
        .unwrap();
    let row = out.table.row(0).unwrap();
    assert!(row[1].as_f64().unwrap() > 0.0);
    assert_eq!(
        row[2].as_i64().unwrap() % 2,
        0,
        "doubling yields even numbers"
    );
}

#[test]
fn count_distinct_and_star() {
    let (repo, wh) = wh();
    let out = wh
        .query("SELECT COUNT(*), COUNT(DISTINCT station), COUNT(DISTINCT network) FROM mseed.files")
        .unwrap();
    let row = out.table.row(0).unwrap();
    assert_eq!(
        row[0].as_i64().unwrap() as usize,
        repo.generated.files.len()
    );
    assert_eq!(row[1], Value::Int64(5));
    assert_eq!(row[2], Value::Int64(2)); // NL + KO
}

#[test]
fn joins_with_explicit_syntax() {
    let (_r, wh) = wh();
    // Join F and R explicitly (not through the view).
    let out = wh
        .query(
            "SELECT f.station, COUNT(*) AS recs \
             FROM mseed.files f JOIN mseed.records r ON f.file_id = r.file_id \
             WHERE f.channel = 'BHE' GROUP BY f.station ORDER BY f.station",
        )
        .unwrap();
    assert_eq!(out.table.num_rows(), 5);
    for i in 0..out.table.num_rows() {
        assert!(out.table.row(i).unwrap()[1].as_i64().unwrap() > 0);
    }
}

#[test]
fn nulls_in_aggregates_and_filters() {
    let (_r, wh) = wh();
    // location is empty string (not NULL) in our generator; test IS NULL
    // machinery via a NULL-producing expression instead.
    let out = wh
        .query("SELECT COUNT(*) FROM mseed.files WHERE size / 0 IS NULL")
        .unwrap();
    let n = out.table.row(0).unwrap()[0].as_i64().unwrap();
    // x/0 -> NULL for every row.
    let out2 = wh.query("SELECT COUNT(*) FROM mseed.files").unwrap();
    assert_eq!(n, out2.table.row(0).unwrap()[0].as_i64().unwrap());
}

#[test]
fn error_paths_are_errors_not_panics() {
    let (_r, wh) = wh();
    for bad in [
        "SELECT nothere FROM mseed.files",
        "SELECT * FROM missing_table",
        "SELECT COUNT(*) FROM mseed.files WHERE station = ", // parse error
        "SELECT station FROM mseed.files GROUP BY",          // parse error
        "SELECT MIN(*) FROM mseed.files",
        "SELECT station FROM mseed.files HAVING COUNT(*) > 1", // having without group by is ok-ish? we reject w/o aggregate context
    ] {
        let res = wh.query(bad);
        assert!(res.is_err(), "expected error for {bad:?}");
    }
}

#[test]
fn dataview_wildcard_and_qualified_stars() {
    let (_r, wh) = wh();
    let out = wh
        .query("SELECT * FROM mseed.dataview WHERE F.station = 'ISK' AND F.channel = 'BHE' LIMIT 5")
        .unwrap();
    assert_eq!(out.table.num_rows(), 5);
    // The universal table exposes all three tables' columns.
    let names: Vec<String> = out
        .table
        .schema
        .fields
        .iter()
        .map(|f| f.name.clone())
        .collect();
    assert!(names.contains(&"f.station".to_string()));
    assert!(names.contains(&"r.start_time".to_string()));
    assert!(names.contains(&"d.sample_value".to_string()));
}

#[test]
fn order_by_expression_and_desc_nulls() {
    let (_r, wh) = wh();
    let out = wh
        .query("SELECT uri, size FROM mseed.files ORDER BY size DESC, uri LIMIT 4")
        .unwrap();
    let mut last = i64::MAX;
    for i in 0..out.table.num_rows() {
        let s = out.table.row(i).unwrap()[1].as_i64().unwrap();
        assert!(s <= last);
        last = s;
    }
}

#[test]
fn or_predicates_on_metadata() {
    // OR cannot be pushed as a simple conjunct; correctness must not
    // depend on pushdown.
    let (_r, wh) = wh();
    let out = wh
        .query(
            "SELECT COUNT(*) FROM mseed.files \
             WHERE station = 'HGN' OR station = 'ISK'",
        )
        .unwrap();
    let both = out.table.row(0).unwrap()[0].as_i64().unwrap();
    let hgn = wh
        .query("SELECT COUNT(*) FROM mseed.files WHERE station = 'HGN'")
        .unwrap()
        .table
        .row(0)
        .unwrap()[0]
        .as_i64()
        .unwrap();
    let isk = wh
        .query("SELECT COUNT(*) FROM mseed.files WHERE station = 'ISK'")
        .unwrap()
        .table
        .row(0)
        .unwrap()[0]
        .as_i64()
        .unwrap();
    assert_eq!(both, hgn + isk);
    assert!(both > 0);
}

#[test]
fn not_and_de_morgan_agree() {
    let (_r, wh) = wh();
    let a = wh
        .query(
            "SELECT COUNT(*) FROM mseed.files \
             WHERE NOT (station = 'HGN' OR channel = 'BHE')",
        )
        .unwrap();
    let b = wh
        .query(
            "SELECT COUNT(*) FROM mseed.files \
             WHERE station <> 'HGN' AND channel <> 'BHE'",
        )
        .unwrap();
    assert_eq!(
        a.table.row(0).unwrap()[0],
        b.table.row(0).unwrap()[0],
        "De Morgan equivalence"
    );
}

#[test]
fn group_by_multiple_keys() {
    let (r, wh) = wh();
    let out = wh
        .query(
            "SELECT station, channel, COUNT(*) AS files FROM mseed.files \
             GROUP BY station, channel ORDER BY station, channel",
        )
        .unwrap();
    // Ground truth: 5 stations x 2 channels, files_per_stream files each.
    assert_eq!(out.table.num_rows(), 10);
    for i in 0..out.table.num_rows() {
        assert_eq!(
            out.table.row(i).unwrap()[2],
            Value::Int64(r.config.files_per_stream as i64)
        );
    }
}

#[test]
fn having_on_aggregate_not_in_select() {
    let (_r, wh) = wh();
    let out = wh
        .query(
            "SELECT station FROM mseed.files GROUP BY station \
             HAVING COUNT(*) >= 4 ORDER BY station",
        )
        .unwrap();
    // Every station has 2 channels x 2 files = 4 files.
    assert_eq!(out.table.num_rows(), 5);
}

#[test]
fn limit_edge_cases() {
    let (_r, wh) = wh();
    let zero = wh.query("SELECT uri FROM mseed.files LIMIT 0").unwrap();
    assert_eq!(zero.table.num_rows(), 0);
    let all = wh.query("SELECT uri FROM mseed.files").unwrap();
    let huge = wh
        .query("SELECT uri FROM mseed.files LIMIT 1000000")
        .unwrap();
    assert_eq!(all.table.num_rows(), huge.table.num_rows());
}

#[test]
fn top_n_over_data_is_lazy_and_correct() {
    let (_r, wh) = wh();
    let out = wh
        .query(
            "SELECT D.sample_time, D.sample_value FROM mseed.dataview \
             WHERE F.station = 'ISK' AND F.channel = 'BHE' AND R.seq_no = 1 \
             ORDER BY D.sample_value DESC LIMIT 5",
        )
        .unwrap();
    assert_eq!(out.table.num_rows(), 5);
    let mut last = f64::INFINITY;
    for i in 0..5 {
        let v = out.table.row(i).unwrap()[1].as_f64().unwrap();
        assert!(v <= last, "descending order");
        last = v;
    }
    // Only the one ISK.BHE stream was touched.
    for uri in &out.report.files_extracted {
        assert!(uri.contains("ISK"), "{uri} extracted needlessly");
    }
}

#[test]
fn coalesce_and_is_not_null_end_to_end() {
    let (_r, wh) = wh();
    let out = wh
        .query(
            "SELECT COUNT(*) FROM mseed.files \
             WHERE COALESCE(station, 'missing') IS NOT NULL",
        )
        .unwrap();
    let n = out.table.row(0).unwrap()[0].as_i64().unwrap();
    let total = wh
        .query("SELECT COUNT(*) FROM mseed.files")
        .unwrap()
        .table
        .row(0)
        .unwrap()[0]
        .as_i64()
        .unwrap();
    assert_eq!(n, total);
}

#[test]
fn select_without_from() {
    let (_r, wh) = wh();
    let out = wh.query("SELECT 1 + 1, 'x', ABS(-3)").unwrap();
    assert_eq!(out.table.num_rows(), 1);
    let row = out.table.row(0).unwrap();
    assert_eq!(row[0], Value::Int64(2));
    assert_eq!(row[1], Value::Utf8("x".into()));
    assert_eq!(row[2], Value::Int64(3));
}

#[test]
fn not_in_and_not_between() {
    let (_r, wh) = wh();
    let not_in = wh
        .query(
            "SELECT COUNT(*) FROM mseed.files \
             WHERE station NOT IN ('HGN', 'ISK')",
        )
        .unwrap();
    let total = wh.query("SELECT COUNT(*) FROM mseed.files").unwrap();
    let in_list = wh
        .query("SELECT COUNT(*) FROM mseed.files WHERE station IN ('HGN', 'ISK')")
        .unwrap();
    assert_eq!(
        not_in.table.row(0).unwrap()[0].as_i64().unwrap()
            + in_list.table.row(0).unwrap()[0].as_i64().unwrap(),
        total.table.row(0).unwrap()[0].as_i64().unwrap()
    );
    let nb = wh
        .query("SELECT COUNT(*) FROM mseed.records WHERE seq_no NOT BETWEEN 2 AND 1000000")
        .unwrap();
    let b1 = wh
        .query("SELECT COUNT(*) FROM mseed.records WHERE seq_no = 1")
        .unwrap();
    assert_eq!(nb.table.row(0).unwrap()[0], b1.table.row(0).unwrap()[0]);
}
