//! End-to-end tests of the serving layer: real TCP connections against a
//! real warehouse, covering the wire protocol's failure modes, admission
//! control, streamed cursors (credit flow, cancel, backpressure), v1
//! compatibility, and served-vs-serial result identity.

mod common;

use common::{figure1_repo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::core::{Warehouse, WarehouseConfig, METADATA_QUERY};
use lazyetl::mseed::record::SourceId;
use lazyetl::mseed::Timestamp;
use lazyetl::repo::{updates, Repository};
use lazyetl::server::protocol::{self, Frame};
use lazyetl::server::{Client, QueryReply, Server, ServerConfig, ServerReply, SubscribeReply};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A full-scan projection over one stream: 2 files × 300 s × 40 Hz =
/// 24 000 rows — big enough that v2 streams it as many record batches.
const WIDE_SCAN: &str =
    "SELECT D.sample_value FROM mseed.dataview WHERE F.station = 'HGN' AND F.channel = 'BHZ'";

fn quiet_config() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

fn start_server(wh: Arc<Warehouse>, cfg: ServerConfig) -> Server {
    Server::start(wh, "127.0.0.1:0", cfg).expect("bind loopback")
}

fn expect_rows(client: &mut Client, sql: &str) -> lazyetl::store::Table {
    match client.query_all(sql).expect("transport ok") {
        ServerReply::Result(r) => r.table,
        other => panic!("expected rows for {sql:?}, got {other:?}"),
    }
}

/// Poll a stats predicate until it holds or a 10 s deadline passes.
fn wait_for(server: &Server, what: &str, pred: impl Fn(&lazyetl::server::ServerStats) -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if pred(&stats) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn served_results_match_serial_eager_baseline() {
    let repo = figure1_repo("srv_baseline", 512);
    // Serial eager baseline: the ground truth the lazy served path must
    // reproduce bit for bit.
    let eager = Warehouse::open_eager(&repo.root, quiet_config()).unwrap();
    let mix = [FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY];
    let baseline: Vec<_> = mix
        .iter()
        .map(|sql| (*eager.query(sql).unwrap().table).clone())
        .collect();

    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(Arc::clone(&wh), ServerConfig::default());
    let addr = server.addr();
    std::thread::scope(|s| {
        for t in 0..4 {
            let baseline = &baseline;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                assert_eq!(
                    client.protocol_version(),
                    protocol::MAX_VERSION,
                    "handshake negotiates the newest version"
                );
                for round in 0..3 {
                    for (i, sql) in mix.iter().enumerate() {
                        let got = expect_rows(&mut client, sql);
                        assert_eq!(
                            got, baseline[i],
                            "client {t} round {round} query {i}: served lazy result \
                             diverged from the serial eager baseline"
                        );
                    }
                }
            });
        }
    });
    let report = server.stop().unwrap();
    assert_eq!(report.stats.queries_ok, 4 * 3 * 3);
    assert_eq!(report.stats.queries_err, 0);
    assert_eq!(report.stats.proto_errors, 0);
    // Every v2 query opened (and closed) a streamed cursor.
    assert_eq!(report.stats.cursors_opened, 4 * 3 * 3);
    assert_eq!(
        report.stats.cursors_open, 0,
        "quiesced server holds no cursors"
    );
}

#[test]
fn malformed_frames_are_rejected_with_stable_codes() {
    let repo = figure1_repo("srv_malformed", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            max_request_bytes: 4096,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Each malformed prelude gets an error frame with the right code,
    // then the connection closes.
    let cases: Vec<(Vec<u8>, &str)> = vec![
        // Wrong magic.
        (vec![0xFF, 0xFF, 1, 0x07, 0, 0, 0, 0], "proto.magic"),
        // Wrong version.
        (vec![0x4C, 0x5A, 9, 0x07, 0, 0, 0, 0], "proto.version"),
        // Unknown frame type.
        (vec![0x4C, 0x5A, 1, 0x6E, 0, 0, 0, 0], "proto.type"),
        // Payload larger than the server's request cap.
        (
            vec![0x4C, 0x5A, 1, 0x01, 0xFF, 0xFF, 0xFF, 0xFF],
            "proto.oversize",
        ),
        // Query frame whose payload is shorter than its fixed prefix.
        (
            vec![0x4C, 0x5A, 1, 0x01, 0, 0, 0, 2, 0, 0],
            "proto.malformed",
        ),
    ];
    for (bytes, want_code) in cases {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&bytes).unwrap();
        raw.flush().unwrap();
        let reply =
            protocol::read_frame(&mut raw, protocol::DEFAULT_MAX_RESPONSE).expect("error frame");
        match reply {
            Frame::Error { code, .. } => assert_eq!(code, want_code, "prelude {bytes:?}"),
            other => panic!("expected error frame for {bytes:?}, got {other:?}"),
        }
        // The connection is closed after a protocol violation.
        let mut buf = [0u8; 1];
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(raw.read(&mut buf).unwrap_or(0), 0, "connection stays open");
    }

    // A truncated frame (header promises more than ever arrives) must not
    // wedge the server: the writer disappears, the server just drops it.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&[0x4C, 0x5A, 1, 0x01, 0, 0, 0, 50, 1, 2, 3])
            .unwrap();
        drop(raw);
    }

    // After all that abuse the pool still answers queries.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let t = expect_rows(&mut client, METADATA_QUERY);
    assert!(t.num_rows() > 0);
    let report = server.stop().unwrap();
    assert_eq!(report.stats.proto_errors, 5);
}

#[test]
fn client_disconnect_mid_query_leaves_pool_healthy() {
    let repo = figure1_repo("srv_disconnect", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Send a slow v1 query, then vanish before the reply can be written.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let frame = protocol::frame_bytes(&Frame::Query {
            delay_ms: 200,
            sql: METADATA_QUERY.to_string(),
        })
        .unwrap();
        raw.write_all(&frame).unwrap();
        raw.flush().unwrap();
        drop(raw);
    }

    // The single worker digests the orphaned query and then serves this.
    let mut client = Client::connect(addr).unwrap();
    let t = expect_rows(&mut client, FIGURE1_Q2);
    assert!(t.num_rows() > 0);

    // Give the worker time to finish the orphan so the drop is counted.
    wait_for(&server, "orphaned reply recorded", |s| {
        s.dropped_replies >= 1
    });
    let report = server.stop().unwrap();
    assert_eq!(report.stats.dropped_replies, 1);
    assert_eq!(report.stats.queries_ok, 2, "orphan + served query both ran");
}

#[test]
fn busy_frame_fires_at_configured_queue_depth() {
    let repo = figure1_repo("srv_busy", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    wh.query(METADATA_QUERY).unwrap(); // warm so exec time ≈ delay
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Client A occupies the single worker (600ms think time); client B
    // fills the depth-1 queue; client C must get a BUSY frame.
    let (a, b) = std::thread::scope(|s| {
        let a = s.spawn(|| {
            let mut c = Client::connect(addr).unwrap();
            c.query_all_with_delay(METADATA_QUERY, 600).unwrap()
        });
        std::thread::sleep(Duration::from_millis(200)); // A popped by the worker
        let b = s.spawn(|| {
            let mut c = Client::connect(addr).unwrap();
            c.query_all_with_delay(METADATA_QUERY, 0).unwrap()
        });
        std::thread::sleep(Duration::from_millis(200)); // B sits in the queue
        let mut c = Client::connect(addr).unwrap();
        match c.query_all(METADATA_QUERY).unwrap() {
            ServerReply::Busy {
                queue_depth,
                queued,
                ..
            } => {
                assert_eq!(queue_depth, 1);
                assert_eq!(queued, 1);
            }
            other => panic!("expected busy, got {other:?}"),
        }
        (a.join().unwrap(), b.join().unwrap())
    });
    for (name, reply) in [("A", a), ("B", b)] {
        assert!(
            matches!(reply, ServerReply::Result(_)),
            "client {name} should have gotten rows, got {reply:?}"
        );
    }
    let report = server.stop().unwrap();
    assert_eq!(report.stats.busy_rejections, 1);
    assert_eq!(report.stats.queries_ok, 2);
}

#[test]
fn oversized_query_rejected_without_serving_interruption() {
    let repo = figure1_repo("srv_oversize", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            max_request_bytes: 1024,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // A legitimate query frame that is simply too big for the cap.
    let huge_sql = format!(
        "SELECT network FROM mseed.files WHERE station = '{}'",
        "x".repeat(4096)
    );
    let mut raw = TcpStream::connect(addr).unwrap();
    let frame = protocol::frame_bytes(&Frame::Query {
        delay_ms: 0,
        sql: huge_sql.clone(),
    })
    .unwrap();
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();
    match protocol::read_frame(&mut raw, protocol::DEFAULT_MAX_RESPONSE).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, "proto.oversize");
            assert!(message.contains("1024"), "limit named in {message:?}");
        }
        other => panic!("expected oversize error, got {other:?}"),
    }

    // The client enforces the same cap before ever touching the wire: an
    // oversized request fails locally with the same stable code, and the
    // connection is never poisoned — the same client keeps working.
    let mut capped = Client::connect(addr).unwrap();
    capped.set_max_request_bytes(1024);
    let err = capped
        .query_all(&huge_sql)
        .expect_err("rejected client-side");
    assert_eq!(err.code(), "proto.oversize");
    let t = expect_rows(&mut capped, METADATA_QUERY);
    assert!(t.num_rows() > 0);

    // Under the cap still works on a fresh connection.
    let mut client = Client::connect(addr).unwrap();
    let t = expect_rows(&mut client, METADATA_QUERY);
    assert!(t.num_rows() > 0);
    server.stop().unwrap();
}

#[test]
fn query_errors_travel_with_codes_and_connection_survives() {
    let repo = figure1_repo("srv_errors", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(Arc::clone(&wh), ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    match client.query_all("SELEKT broken").unwrap() {
        ServerReply::Error { code, .. } => assert_eq!(code, "query.parse"),
        other => panic!("expected parse error, got {other:?}"),
    }
    match client.query_all("SELECT nope FROM mseed.files").unwrap() {
        ServerReply::Error { code, .. } => assert_eq!(code, "query.plan"),
        other => panic!("expected plan error, got {other:?}"),
    }
    // The same connection keeps serving after in-band errors.
    let t = expect_rows(&mut client, METADATA_QUERY);
    assert!(t.num_rows() > 0);
    let report = server.stop().unwrap();
    assert_eq!(report.stats.queries_err, 2);
    assert_eq!(report.stats.queries_ok, 1);
}

#[test]
fn graceful_shutdown_drains_saves_and_next_boot_is_warm() {
    let repo = figure1_repo("srv_shutdown", 512);
    let save_dir = repo.root.join("_snapshot");
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            save_dir: Some(save_dir.clone()),
            ..Default::default()
        },
    );
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    let hot = expect_rows(&mut client, FIGURE1_Q2); // populates the cache

    // Wire-initiated shutdown: ack arrives, drain runs, snapshot lands.
    client.shutdown().unwrap();
    let report = server.stop().unwrap();
    let save = report.save.expect("snapshot configured");
    assert!(!save.segments.is_empty(), "hot cache persisted");
    assert!(save_dir.join(lazyetl::core::MANIFEST_NAME).exists());

    // New queries after the shutdown request are refused (the listener
    // goes away at drain start, so the connect itself usually fails).
    let mut late = Client::connect(addr);
    if let Ok(c) = late.as_mut() {
        match c.query_all(METADATA_QUERY) {
            Ok(ServerReply::Error { code, .. }) => assert_eq!(code, "server.shutdown"),
            Ok(other) => panic!("late query should be refused, got {other:?}"),
            Err(_) => {} // listener already gone — equally acceptable
        }
    }

    // Second boot from the snapshot: warm cache, zero re-extraction.
    let wh2 = Arc::new(Warehouse::open_saved(&repo.root, &save_dir, quiet_config()).unwrap());
    let server2 = start_server(Arc::clone(&wh2), ServerConfig::default());
    let mut client2 = Client::connect(server2.addr()).unwrap();
    match client2.query_all(FIGURE1_Q2).unwrap() {
        ServerReply::Result(r) => {
            assert_eq!(r.table, hot, "warm boot answers identically");
            assert_eq!(
                r.metrics.records_extracted, 0,
                "warm boot re-extracts nothing"
            );
            assert!(r.metrics.cache_hits > 0, "served from the rehydrated cache");
        }
        other => panic!("warm query failed: {other:?}"),
    }
    let stats = client2.stats().unwrap();
    assert_eq!(
        stats.get("server.records_extracted").map(String::as_str),
        Some("0")
    );
    server2.stop().unwrap();
}

#[test]
fn stats_frame_reports_serving_counters() {
    let repo = figure1_repo("srv_stats", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(Arc::clone(&wh), ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    expect_rows(&mut client, FIGURE1_Q1);
    expect_rows(&mut client, FIGURE1_Q1);
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("server.queries_ok").map(String::as_str),
        Some("2")
    );
    assert_eq!(
        stats.get("warehouse.mode").map(String::as_str),
        Some("lazy")
    );
    let files: u64 = stats.get("warehouse.files").unwrap().parse().unwrap();
    assert_eq!(files as usize, repo.generated.files.len());
    let hit_rate: f64 = stats.get("server.cache_hit_rate").unwrap().parse().unwrap();
    assert!((0.0..=1.0).contains(&hit_rate));
    // The v2 streaming counters travel over the same frame.
    let opened: u64 = stats.get("server.cursors_opened").unwrap().parse().unwrap();
    assert_eq!(opened, 2);
    let streamed: u64 = stats
        .get("server.batches_streamed")
        .unwrap()
        .parse()
        .unwrap();
    assert!(streamed >= 2, "each result is at least one batch");
    server.stop().unwrap();
}

#[test]
fn v1_client_is_served_whole_frame_by_v2_server() {
    let repo = figure1_repo("srv_v1compat", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(Arc::clone(&wh), ServerConfig::default());
    let addr = server.addr();

    // A v1 peer skips the handshake and gets whole-frame results.
    let mut old = Client::connect_v1(addr).unwrap();
    assert_eq!(old.protocol_version(), 1);
    let mix = [FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY];
    let v1_results: Vec<_> = mix.iter().map(|sql| expect_rows(&mut old, sql)).collect();
    assert_eq!(
        server.stats().cursors_opened,
        0,
        "v1 queries never open cursors"
    );

    // The iterator API works identically over a v1 connection: the whole
    // result is surfaced as a single inline batch.
    match old.query(FIGURE1_Q2).unwrap() {
        QueryReply::Stream(mut stream) => {
            let first = stream.next_batch().unwrap().expect("one inline batch");
            assert_eq!(first, v1_results[1]);
            assert!(stream.next_batch().unwrap().is_none(), "then end-of-stream");
        }
        _ => panic!("v1 stream adapter failed"),
    }

    // A v2 peer on the same server sees identical rows, streamed.
    let mut new = Client::connect(addr).unwrap();
    assert_eq!(new.protocol_version(), protocol::MAX_VERSION);
    for (i, sql) in mix.iter().enumerate() {
        assert_eq!(
            expect_rows(&mut new, sql),
            v1_results[i],
            "v1 and v2 clients must see identical rows for {sql:?}"
        );
    }
    let report = server.stop().unwrap();
    assert_eq!(report.stats.queries_ok, 3 + 1 + 3);
    assert_eq!(report.stats.proto_errors, 0);
    assert_eq!(
        report.stats.cursors_opened, 3,
        "only the v2 queries streamed"
    );
}

#[test]
fn slow_consumer_backpressure_bounds_server_memory() {
    let repo = figure1_repo("srv_backpressure", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    // Serial ground truth for the drained stream.
    let expected = (*wh.query(WIDE_SCAN).unwrap().table).clone();
    assert!(
        expected.num_rows() >= 20_000,
        "scan must be large enough to stream in many batches"
    );

    let max_outbuf = 32 * 1024;
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            batch_rows: 256,
            initial_credit: 2,
            max_outbuf_bytes: max_outbuf,
            ..Default::default()
        },
    );
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(
        client.batch_rows(),
        256,
        "handshake advertises the batch size"
    );

    let mut stream = match client.query(WIDE_SCAN).unwrap() {
        QueryReply::Stream(s) => s,
        QueryReply::Busy { queued, .. } => panic!("unexpected busy ({queued} queued)"),
        QueryReply::Error { code, message } => panic!("unexpected error {code}: {message}"),
    };
    // Consume one batch, then stall: the server may spend its remaining
    // credit, then must suspend the cursor rather than buffer the result.
    let first = stream.next_batch().unwrap().expect("first batch");
    assert_eq!(first.num_rows(), 256);
    wait_for(&server, "credit stall", |s| s.credit_stalls >= 1);
    std::thread::sleep(Duration::from_millis(200)); // stay stalled a while
    let mid = server.stats();
    assert!(
        mid.outbuf_hwm_bytes <= (max_outbuf + 16 * 1024) as u64,
        "stalled reader must not grow server memory past the ceiling \
         (+1 batch of slack): hwm {} bytes",
        mid.outbuf_hwm_bytes
    );
    assert_eq!(mid.cursors_open, 1, "the suspended cursor stays live");

    // Resume: draining the stream reproduces the serial scan exactly.
    let mut got = stream.schema().clone();
    got.append_table(&first).unwrap();
    for batch in &mut stream {
        got.append_table(&batch.unwrap()).unwrap();
    }
    assert_eq!(got, expected, "streamed scan diverged from serial baseline");
    assert_eq!(stream.rows() as usize, expected.num_rows());
    drop(stream);

    wait_for(&server, "cursor retired", |s| s.cursors_open == 0);
    let report = server.stop().unwrap();
    assert!(report.stats.credit_stalls >= 1);
    assert!(report.stats.batches_streamed as usize >= expected.num_rows() / 256);
    assert_eq!(report.stats.queries_ok, 1);
}

#[test]
fn cancel_mid_stream_frees_cursor_and_worker() {
    let repo = figure1_repo("srv_cancel", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            workers: 1,
            batch_rows: 64,
            initial_credit: 1,
            ..Default::default()
        },
    );
    let mut client = Client::connect(server.addr()).unwrap();

    // Open a wide stream, take one batch, then abandon the rest.
    let mut stream = match client.query(WIDE_SCAN).unwrap() {
        QueryReply::Stream(s) => s,
        _ => panic!("expected stream"),
    };
    let first = stream.next_batch().unwrap().expect("first batch");
    assert_eq!(first.num_rows(), 64);
    stream.cancel().unwrap();
    assert!(stream.was_cancelled());
    assert!(stream.next_batch().unwrap().is_none(), "cancelled = ended");
    drop(stream);

    // The cursor is gone server-side and the single worker is free: the
    // same connection immediately serves another query.
    wait_for(&server, "cancelled cursor freed", |s| s.cursors_open == 0);
    let t = expect_rows(&mut client, METADATA_QUERY);
    assert!(t.num_rows() > 0);

    // Dropping a live stream cancels it too (drop-abort).
    match client.query(WIDE_SCAN).unwrap() {
        QueryReply::Stream(mut s) => {
            s.next_batch().unwrap().expect("streaming");
            drop(s); // best-effort Cancel rides out with the drop
        }
        _ => panic!("expected stream"),
    }
    wait_for(&server, "dropped cursor freed", |s| s.cursors_open == 0);
    let t = expect_rows(&mut client, METADATA_QUERY);
    assert!(t.num_rows() > 0);

    let report = server.stop().unwrap();
    assert_eq!(report.stats.cursors_open, 0);
    assert_eq!(report.stats.queries_err, 0);
    assert_eq!(report.stats.proto_errors, 0);
}

#[test]
fn disconnect_storm_leaves_no_leaked_cursors() {
    let repo = figure1_repo("srv_storm", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    wh.query(WIDE_SCAN).unwrap(); // warm the cache so the storm is fast
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            workers: 2,
            batch_rows: 128,
            initial_credit: 2,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Wave 1: clients that open a wide stream, read one batch, and slam
    // the connection shut with the cursor still live.
    for _ in 0..40 {
        let mut client = Client::connect(addr).unwrap();
        match client.query(WIDE_SCAN).unwrap() {
            QueryReply::Stream(mut s) => {
                s.next_batch().unwrap().expect("streaming");
            }
            _ => panic!("expected stream"),
        }
        drop(client); // stream drop-aborts, then the socket dies
    }
    // Wave 2: connections that never even finish a handshake.
    for _ in 0..40 {
        drop(TcpStream::connect(addr).unwrap());
    }
    // Wave 3: handshake then immediate disappearance mid-request.
    for _ in 0..20 {
        let client = Client::connect(addr).unwrap();
        drop(client);
    }

    wait_for(&server, "all cursors reaped", |s| s.cursors_open == 0);
    // The server is fully healthy: a fresh client gets exact rows.
    let mut client = Client::connect(addr).unwrap();
    let t = expect_rows(&mut client, METADATA_QUERY);
    assert!(t.num_rows() > 0);

    let report = server.stop().unwrap();
    assert_eq!(
        report.stats.cursors_open, 0,
        "no leaked cursors after the storm"
    );
    assert!(report.stats.connections >= 100);
    assert_eq!(
        report.stats.proto_errors, 0,
        "disconnects are not protocol errors"
    );
}

#[test]
fn cost_budget_rejects_wide_scans_with_estimate_in_busy_frame() {
    let repo = figure1_repo("srv_cost", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    wh.query(METADATA_QUERY).unwrap(); // catalog walked → statistics live

    let budget = 1_000;
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            workers: 1,
            cost_budget_rows: Some(budget),
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Occupy the worker so admitted cost is nonzero when the scan lands
    // (an idle server always admits — cost control must never starve).
    std::thread::scope(|s| {
        let bg = s.spawn(|| {
            let mut c = Client::connect(addr).unwrap();
            c.query_all_with_delay(METADATA_QUERY, 800).unwrap()
        });
        std::thread::sleep(Duration::from_millis(250)); // worker busy now
        let mut c = Client::connect(addr).unwrap();
        match c.query_all(WIDE_SCAN).unwrap() {
            ServerReply::Busy {
                estimated_rows,
                cost_budget,
                ..
            } => {
                assert_eq!(cost_budget, budget, "budget echoed in the busy frame");
                assert!(
                    estimated_rows > budget,
                    "estimate {estimated_rows} should exceed the {budget}-row budget"
                );
            }
            other => panic!("expected cost-based busy, got {other:?}"),
        }
        assert!(matches!(bg.join().unwrap(), ServerReply::Result(_)));
    });

    // With the worker idle again the very same scan is admitted: the
    // budget sheds load under pressure, it does not blacklist queries.
    let mut c = Client::connect(addr).unwrap();
    let t = expect_rows(&mut c, WIDE_SCAN);
    assert!(t.num_rows() >= 20_000);

    let report = server.stop().unwrap();
    assert_eq!(report.stats.cost_rejections, 1);
    assert!(report.stats.busy_rejections >= 1);
}

/// Open a live-tail subscription or die trying.
fn expect_subscription<'a>(client: &'a mut Client, sql: &str) -> lazyetl::server::Subscription<'a> {
    match client.subscribe(sql).expect("transport ok") {
        SubscribeReply::Subscription(sub) => sub,
        SubscribeReply::Busy { queued, .. } => panic!("busy ({queued} queued) for {sql:?}"),
        SubscribeReply::Error { code, message } => panic!("{code}: {message} for {sql:?}"),
    }
}

#[test]
fn subscription_pushes_updated_result_after_refresh() {
    let repo = figure1_repo("srv_subscribe", 512);
    let cfg = WarehouseConfig {
        auto_refresh: false,
        recycle_query_results: true,
        ..Default::default()
    };
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, cfg).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            refresh_interval: Some(Duration::from_millis(20)),
            ..Default::default()
        },
    );
    let addr = server.addr();

    let sql = "SELECT COUNT(*) FROM mseed.records";
    let mut client = Client::connect(addr).unwrap();
    let mut sub = expect_subscription(&mut client, sql);
    let snapshot = sub.next_update().unwrap().expect("initial snapshot");
    assert_eq!(snapshot.num_rows(), 1);

    // Change the repository behind the server's back: the poller's
    // refresh timer folds it in and pushes the new revision — the K
    // pollers of the paper's workflow become one O(delta) push.
    let mut raw = Repository::open(repo.root.clone()).unwrap();
    let src = SourceId::new("NL", "HGN", "", "BHZ").unwrap();
    updates::add_file(
        &mut raw,
        &src,
        Timestamp::from_ymd_hms(2010, 1, 12, 23, 30, 0, 0),
        10,
        0xF01,
    )
    .unwrap();

    let revision = sub.next_update().unwrap().expect("pushed revision");
    assert_eq!(revision.num_rows(), 1);
    assert_ne!(
        revision.to_ascii(10),
        snapshot.to_ascii(10),
        "the push reflects the inserted records"
    );
    drop(sub);

    // Pushed revision ≡ what a fresh query against the same server sees.
    let mut verify = Client::connect(addr).unwrap();
    let requeried = expect_rows(&mut verify, sql);
    assert_eq!(revision.to_ascii(10), requeried.to_ascii(10));

    // The subscription re-run was served from the patched resident
    // result, not a recompute — the tentpole's O(delta) claim.
    let recycler = wh.stats_snapshot().recycler;
    assert!(
        recycler.results_patched >= 1,
        "refresh patched the subscribed result: {recycler:?}"
    );

    let report = server.stop().unwrap();
    assert!(report.stats.subscriptions_opened >= 1);
    assert!(
        report.stats.sub_updates_pushed >= 2,
        "initial snapshot + refresh push: {:?}",
        report.stats
    );
    assert!(report.stats.refreshes_applied >= 1);
    assert_eq!(report.stats.cursors_open, 0, "drain freed the cursor");
}

#[test]
fn subscription_cancel_mid_push_frees_cursor() {
    let repo = figure1_repo("srv_sub_cancel", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    // Tiny batches + credit 1: the wide scan cannot finish its initial
    // revision before the cancel lands mid-stream.
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            batch_rows: 64,
            initial_credit: 1,
            ..Default::default()
        },
    );
    let addr = server.addr();

    let mut client = Client::connect(addr).unwrap();
    let mut sub = expect_subscription(&mut client, WIDE_SCAN);
    sub.cancel().expect("cancel drains to the server's ack");
    drop(sub);
    wait_for(&server, "cursor freed", |s| s.cursors_open == 0);

    // The connection is clean: a normal query works right after.
    let t = expect_rows(&mut client, FIGURE1_Q1);
    assert!(t.num_rows() > 0);

    let report = server.stop().unwrap();
    assert_eq!(report.stats.cursors_open, 0);
    assert!(report.stats.subscriptions_opened >= 1);
}

#[test]
fn subscription_ends_cleanly_on_server_drain() {
    let repo = figure1_repo("srv_sub_drain", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(Arc::clone(&wh), ServerConfig::default());

    let mut client = Client::connect(server.addr()).unwrap();
    let mut sub = expect_subscription(&mut client, FIGURE1_Q2);
    let initial = sub.next_update().unwrap().expect("initial snapshot");
    assert!(initial.num_rows() > 0);

    // Drain while the subscription idles: the server ends the tail with
    // a cancelled ResultEnd instead of hanging shutdown on it.
    server.request_shutdown();
    assert!(
        sub.next_update().unwrap().is_none(),
        "drain ends the subscription"
    );
    let report = server.stop().unwrap();
    assert_eq!(report.stats.cursors_open, 0);
}

#[test]
fn subscribe_rejected_below_v2_1() {
    let repo = figure1_repo("srv_sub_v1", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(Arc::clone(&wh), ServerConfig::default());

    // The v1 client refuses locally — it never negotiated subscriptions.
    let mut old = Client::connect_v1(server.addr()).unwrap();
    assert!(old.subscribe(FIGURE1_Q1).is_err());
    // The connection is still perfectly usable for v1 queries.
    assert!(expect_rows(&mut old, FIGURE1_Q1).num_rows() > 0);

    // A raw Subscribe frame without any handshake gets the stable
    // protocol error from the server side.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let bytes = protocol::frame_bytes(&Frame::Subscribe {
        cursor: 1,
        sql: FIGURE1_Q1.to_string(),
    })
    .unwrap();
    stream.write_all(&bytes).unwrap();
    match protocol::read_frame(&mut stream, protocol::DEFAULT_MAX_RESPONSE).unwrap() {
        Frame::Error { code, .. } => assert_eq!(code, "proto.unexpected"),
        other => panic!("expected proto.unexpected, got {other:?}"),
    }

    server.stop().unwrap();
}
