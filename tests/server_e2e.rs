//! End-to-end tests of the serving layer: real TCP connections against a
//! real warehouse, covering the wire protocol's failure modes, admission
//! control, and served-vs-serial result identity.

mod common;

use common::{figure1_repo, FIGURE1_Q1, FIGURE1_Q2};
use lazyetl::core::{Warehouse, WarehouseConfig, METADATA_QUERY};
use lazyetl::server::protocol::{self, Frame};
use lazyetl::server::{Client, Server, ServerConfig, ServerReply};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn quiet_config() -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        ..Default::default()
    }
}

fn start_server(wh: Arc<Warehouse>, cfg: ServerConfig) -> Server {
    Server::start(wh, "127.0.0.1:0", cfg).expect("bind loopback")
}

fn expect_rows(client: &mut Client, sql: &str) -> lazyetl::store::Table {
    match client.query(sql).expect("transport ok") {
        ServerReply::Result(r) => r.table,
        other => panic!("expected rows for {sql:?}, got {other:?}"),
    }
}

#[test]
fn served_results_match_serial_eager_baseline() {
    let repo = figure1_repo("srv_baseline", 512);
    // Serial eager baseline: the ground truth the lazy served path must
    // reproduce bit for bit.
    let eager = Warehouse::open_eager(&repo.root, quiet_config()).unwrap();
    let mix = [FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY];
    let baseline: Vec<_> = mix
        .iter()
        .map(|sql| (*eager.query(sql).unwrap().table).clone())
        .collect();

    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(Arc::clone(&wh), ServerConfig::default());
    let addr = server.addr();
    std::thread::scope(|s| {
        for t in 0..4 {
            let baseline = &baseline;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..3 {
                    for (i, sql) in mix.iter().enumerate() {
                        let got = expect_rows(&mut client, sql);
                        assert_eq!(
                            got, baseline[i],
                            "client {t} round {round} query {i}: served lazy result \
                             diverged from the serial eager baseline"
                        );
                    }
                }
            });
        }
    });
    let report = server.stop().unwrap();
    assert_eq!(report.stats.queries_ok, 4 * 3 * 3);
    assert_eq!(report.stats.queries_err, 0);
    assert_eq!(report.stats.proto_errors, 0);
}

#[test]
fn malformed_frames_are_rejected_with_stable_codes() {
    let repo = figure1_repo("srv_malformed", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            max_request_bytes: 4096,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Each malformed prelude gets an error frame with the right code,
    // then the connection closes.
    let cases: Vec<(Vec<u8>, &str)> = vec![
        // Wrong magic.
        (vec![0xFF, 0xFF, 1, 0x07, 0, 0, 0, 0], "proto.magic"),
        // Wrong version.
        (vec![0x4C, 0x5A, 9, 0x07, 0, 0, 0, 0], "proto.version"),
        // Unknown frame type.
        (vec![0x4C, 0x5A, 1, 0x6E, 0, 0, 0, 0], "proto.type"),
        // Payload larger than the server's request cap.
        (
            vec![0x4C, 0x5A, 1, 0x01, 0xFF, 0xFF, 0xFF, 0xFF],
            "proto.oversize",
        ),
        // Query frame whose payload is shorter than its fixed prefix.
        (
            vec![0x4C, 0x5A, 1, 0x01, 0, 0, 0, 2, 0, 0],
            "proto.malformed",
        ),
    ];
    for (bytes, want_code) in cases {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&bytes).unwrap();
        raw.flush().unwrap();
        let reply =
            protocol::read_frame(&mut raw, protocol::DEFAULT_MAX_RESPONSE).expect("error frame");
        match reply {
            Frame::Error { code, .. } => assert_eq!(code, want_code, "prelude {bytes:?}"),
            other => panic!("expected error frame for {bytes:?}, got {other:?}"),
        }
        // The connection is closed after a protocol violation.
        let mut buf = [0u8; 1];
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(raw.read(&mut buf).unwrap_or(0), 0, "connection stays open");
    }

    // A truncated frame (header promises more than ever arrives) must not
    // wedge the server: the writer disappears, the server just drops it.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&[0x4C, 0x5A, 1, 0x01, 0, 0, 0, 50, 1, 2, 3])
            .unwrap();
        drop(raw);
    }

    // After all that abuse the pool still answers queries.
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    let t = expect_rows(&mut client, METADATA_QUERY);
    assert!(t.num_rows() > 0);
    let report = server.stop().unwrap();
    assert_eq!(report.stats.proto_errors, 5);
}

#[test]
fn client_disconnect_mid_query_leaves_pool_healthy() {
    let repo = figure1_repo("srv_disconnect", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Send a slow query, then vanish before the reply can be written.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let frame = protocol::frame_bytes(&Frame::Query {
            delay_ms: 200,
            sql: METADATA_QUERY.to_string(),
        })
        .unwrap();
        raw.write_all(&frame).unwrap();
        raw.flush().unwrap();
        drop(raw);
    }

    // The single worker digests the orphaned query and then serves this.
    let mut client = Client::connect(addr).unwrap();
    let t = expect_rows(&mut client, FIGURE1_Q2);
    assert!(t.num_rows() > 0);

    // Give the worker time to finish the orphan so the drop is counted.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.dropped_replies >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned reply never recorded: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = server.stop().unwrap();
    assert_eq!(report.stats.dropped_replies, 1);
    assert_eq!(report.stats.queries_ok, 2, "orphan + served query both ran");
}

#[test]
fn busy_frame_fires_at_configured_queue_depth() {
    let repo = figure1_repo("srv_busy", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    wh.query(METADATA_QUERY).unwrap(); // warm so exec time ≈ delay
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Client A occupies the single worker (600ms think time); client B
    // fills the depth-1 queue; client C must get a BUSY frame.
    let (a, b) = std::thread::scope(|s| {
        let a = s.spawn(|| {
            let mut c = Client::connect(addr).unwrap();
            c.query_with_delay(METADATA_QUERY, 600).unwrap()
        });
        std::thread::sleep(Duration::from_millis(200)); // A popped by the worker
        let b = s.spawn(|| {
            let mut c = Client::connect(addr).unwrap();
            c.query_with_delay(METADATA_QUERY, 0).unwrap()
        });
        std::thread::sleep(Duration::from_millis(200)); // B sits in the queue
        let mut c = Client::connect(addr).unwrap();
        match c.query(METADATA_QUERY).unwrap() {
            ServerReply::Busy {
                queue_depth,
                queued,
            } => {
                assert_eq!(queue_depth, 1);
                assert_eq!(queued, 1);
            }
            other => panic!("expected busy, got {other:?}"),
        }
        (a.join().unwrap(), b.join().unwrap())
    });
    for (name, reply) in [("A", a), ("B", b)] {
        assert!(
            matches!(reply, ServerReply::Result(_)),
            "client {name} should have gotten rows, got {reply:?}"
        );
    }
    let report = server.stop().unwrap();
    assert_eq!(report.stats.busy_rejections, 1);
    assert_eq!(report.stats.queries_ok, 2);
}

#[test]
fn oversized_query_rejected_without_serving_interruption() {
    let repo = figure1_repo("srv_oversize", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            max_request_bytes: 1024,
            ..Default::default()
        },
    );
    let addr = server.addr();

    // A legitimate query frame that is simply too big for the cap.
    let huge_sql = format!(
        "SELECT network FROM mseed.files WHERE station = '{}'",
        "x".repeat(4096)
    );
    let mut raw = TcpStream::connect(addr).unwrap();
    let frame = protocol::frame_bytes(&Frame::Query {
        delay_ms: 0,
        sql: huge_sql,
    })
    .unwrap();
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();
    match protocol::read_frame(&mut raw, protocol::DEFAULT_MAX_RESPONSE).unwrap() {
        Frame::Error { code, message } => {
            assert_eq!(code, "proto.oversize");
            assert!(message.contains("1024"), "limit named in {message:?}");
        }
        other => panic!("expected oversize error, got {other:?}"),
    }

    // Under the cap still works on a fresh connection.
    let mut client = Client::connect(addr).unwrap();
    let t = expect_rows(&mut client, METADATA_QUERY);
    assert!(t.num_rows() > 0);
    server.stop().unwrap();
}

#[test]
fn query_errors_travel_with_codes_and_connection_survives() {
    let repo = figure1_repo("srv_errors", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(Arc::clone(&wh), ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    match client.query("SELEKT broken").unwrap() {
        ServerReply::Error { code, .. } => assert_eq!(code, "query.parse"),
        other => panic!("expected parse error, got {other:?}"),
    }
    match client.query("SELECT nope FROM mseed.files").unwrap() {
        ServerReply::Error { code, .. } => assert_eq!(code, "query.plan"),
        other => panic!("expected plan error, got {other:?}"),
    }
    // The same connection keeps serving after in-band errors.
    let t = expect_rows(&mut client, METADATA_QUERY);
    assert!(t.num_rows() > 0);
    let report = server.stop().unwrap();
    assert_eq!(report.stats.queries_err, 2);
    assert_eq!(report.stats.queries_ok, 1);
}

#[test]
fn graceful_shutdown_drains_saves_and_next_boot_is_warm() {
    let repo = figure1_repo("srv_shutdown", 512);
    let save_dir = repo.root.join("_snapshot");
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(
        Arc::clone(&wh),
        ServerConfig {
            save_dir: Some(save_dir.clone()),
            ..Default::default()
        },
    );
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    let hot = expect_rows(&mut client, FIGURE1_Q2); // populates the cache

    // Wire-initiated shutdown: ack arrives, drain runs, snapshot lands.
    client.shutdown().unwrap();
    let report = server.stop().unwrap();
    let save = report.save.expect("snapshot configured");
    assert!(!save.segments.is_empty(), "hot cache persisted");
    assert!(save_dir.join(lazyetl::core::MANIFEST_NAME).exists());

    // New queries after the shutdown request are refused.
    let mut late = Client::connect(addr);
    if let Ok(c) = late.as_mut() {
        match c.query(METADATA_QUERY) {
            Ok(ServerReply::Error { code, .. }) => assert_eq!(code, "server.shutdown"),
            Ok(other) => panic!("late query should be refused, got {other:?}"),
            Err(_) => {} // listener already gone — equally acceptable
        }
    }

    // Second boot from the snapshot: warm cache, zero re-extraction.
    let wh2 = Arc::new(Warehouse::open_saved(&repo.root, &save_dir, quiet_config()).unwrap());
    let server2 = start_server(Arc::clone(&wh2), ServerConfig::default());
    let mut client2 = Client::connect(server2.addr()).unwrap();
    match client2.query(FIGURE1_Q2).unwrap() {
        ServerReply::Result(r) => {
            assert_eq!(r.table, hot, "warm boot answers identically");
            assert_eq!(
                r.metrics.records_extracted, 0,
                "warm boot re-extracts nothing"
            );
            assert!(r.metrics.cache_hits > 0, "served from the rehydrated cache");
        }
        other => panic!("warm query failed: {other:?}"),
    }
    let stats = client2.stats().unwrap();
    assert_eq!(
        stats.get("server.records_extracted").map(String::as_str),
        Some("0")
    );
    server2.stop().unwrap();
}

#[test]
fn stats_frame_reports_serving_counters() {
    let repo = figure1_repo("srv_stats", 512);
    let wh = Arc::new(Warehouse::open_lazy(&repo.root, quiet_config()).unwrap());
    let server = start_server(Arc::clone(&wh), ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    expect_rows(&mut client, FIGURE1_Q1);
    expect_rows(&mut client, FIGURE1_Q1);
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("server.queries_ok").map(String::as_str),
        Some("2")
    );
    assert_eq!(
        stats.get("warehouse.mode").map(String::as_str),
        Some("lazy")
    );
    let files: u64 = stats.get("warehouse.files").unwrap().parse().unwrap();
    assert_eq!(files as usize, repo.generated.files.len());
    let hit_rate: f64 = stats.get("server.cache_hit_rate").unwrap().parse().unwrap();
    assert!((0.0..=1.0).contains(&hit_rate));
    server.stop().unwrap();
}
