//! Property: **incremental result maintenance ≡ recompute** — for any
//! stream of insert-only repository changes across mounts, a warehouse
//! that patches its resident recycled results answers every query
//! identically to a fresh warehouse recomputing from scratch, at any
//! extraction parallelism.

mod common;

use lazyetl::mseed::gen::GeneratorConfig;
use lazyetl::mseed::inventory::default_inventory;
use lazyetl::mseed::record::SourceId;
use lazyetl::mseed::Timestamp;
use lazyetl::repo::{updates, Repository};
use lazyetl::store::Value;
use lazyetl::{Warehouse, WarehouseBuilder, WarehouseConfig};
use proptest::prelude::*;

/// The query pool: every maintainable shape (append core, COUNT-only,
/// mixed COUNT/SUM/MIN/MAX/AVG group aggregate, time-windowed aggregate).
const QUERIES: &[&str] = &[
    "SELECT R.file_id, R.seq_no FROM mseed.records WHERE R.seq_no >= 0",
    "SELECT COUNT(*) FROM mseed.records",
    "SELECT F.station, COUNT(*), MIN(D.sample_value), MAX(D.sample_value), \
     AVG(D.sample_value) FROM mseed.dataview GROUP BY F.station",
    "SELECT SUM(D.sample_value), COUNT(D.sample_value) FROM mseed.dataview \
     WHERE D.sample_time < '2010-01-12T22:11:00.000'",
];

/// One insert-only repository change.
#[derive(Debug, Clone)]
struct Insert {
    mount: usize,
    source: usize,
    minute: u32,
}

fn insert_strategy() -> impl Strategy<Value = Insert> {
    (0usize..2, 0usize..3, 0u32..50).prop_map(|(mount, source, minute)| Insert {
        mount,
        source,
        minute,
    })
}

/// Sources the generator did *not* use plus one it did: inserts create
/// both brand-new groups and extensions of existing ones.
fn source_pool() -> Vec<SourceId> {
    let inv = default_inventory();
    vec![
        SourceId::new(&inv[0].network, &inv[0].station, "", "BHZ").unwrap(),
        SourceId::new("XX", "NEWST", "", "BHZ").unwrap(),
        SourceId::new("YY", "OTHER", "", "BHZ").unwrap(),
    ]
}

fn tiny_slice(tag: &str, station_idx: usize, seed: u64) -> common::TestRepo {
    let inv = default_inventory();
    common::build(
        tag,
        GeneratorConfig {
            stations: vec![inv[station_idx].clone()],
            channels: vec!["BHZ".into()],
            start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 10, 0, 0),
            file_duration_secs: 30,
            files_per_stream: 2,
            record_length: 512,
            events_per_file: 0.5,
            seed,
            ..Default::default()
        },
    )
}

fn open_maint(roots: &[std::path::PathBuf], threads: usize, recycle: bool) -> Warehouse {
    let cfg = WarehouseConfig {
        auto_refresh: false,
        recycle_query_results: recycle,
        extraction_threads: threads,
        parallelism: threads,
        ..Default::default()
    };
    let mut b = WarehouseBuilder::new().config(cfg);
    for (i, root) in roots.iter().enumerate() {
        b = b.source(
            format!("mount{i}"),
            Box::new(Repository::open(root).unwrap()),
        );
    }
    b.open().unwrap()
}

/// Rows rendered for order-insensitive comparison: floats are excluded
/// from the sort key (their last bits may differ by merge order) but
/// compared cell-wise with a relative epsilon after alignment.
fn sorted_rows(t: &lazyetl::store::Table) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = (0..t.num_rows()).map(|i| t.row(i).unwrap()).collect();
    let key = |row: &Vec<Value>| -> String {
        row.iter()
            .map(|v| match v {
                Value::Float64(_) => "f".to_string(),
                other => format!("{other:?}"),
            })
            .collect::<Vec<_>>()
            .join("|")
    };
    rows.sort_by_key(key);
    rows
}

fn assert_tables_equivalent(
    sql: &str,
    incr: &lazyetl::store::Table,
    full: &lazyetl::store::Table,
) -> Result<(), proptest::TestCaseError> {
    prop_assert_eq!(incr.num_rows(), full.num_rows(), "row count for {}", sql);
    let (a, b) = (sorted_rows(incr), sorted_rows(full));
    for (ra, rb) in a.iter().zip(&b) {
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::Float64(x), Value::Float64(y)) => {
                    let tol = (x.abs().max(y.abs()) * 1e-9).max(1e-9);
                    prop_assert!((x - y).abs() <= tol, "{}: {} vs {}", sql, x, y);
                }
                _ => prop_assert_eq!(va, vb, "{}", sql),
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 8,
    })]

    #[test]
    fn incremental_equals_recompute(
        inserts in prop::collection::vec(insert_strategy(), 1..4),
        threads in prop::sample::select(vec![1usize, 4]),
    ) {
        let slices = [
            tiny_slice("prop_maint_a", 0, 0xA11CE),
            tiny_slice("prop_maint_b", 4, 0xB0B),
        ];
        let roots: Vec<_> = slices.iter().map(|s| s.root.clone()).collect();
        let wh = open_maint(&roots, threads, true);

        // Populate the recycler before any change lands.
        for sql in QUERIES {
            wh.query(sql).unwrap();
        }

        let pool = source_pool();
        for (step, ins) in inserts.iter().enumerate() {
            let mut raw = Repository::open(&roots[ins.mount]).unwrap();
            // Distinct (source, start) per step so every change is a pure
            // insert (same path twice would be a modification instead).
            let minute = ins.minute + step as u32 * 60;
            updates::add_file(
                &mut raw,
                &pool[ins.source],
                Timestamp::from_ymd_hms(2010, 1, 13, minute / 60, minute % 60, 0, 0),
                5,
                0x5EED + step as u64,
            ).unwrap();
            wh.refresh().unwrap();

            // Oracle: a fresh warehouse recomputes everything from disk.
            let oracle = open_maint(&roots, threads, false);
            for sql in QUERIES {
                let incr = wh.query(sql).unwrap();
                let full = oracle.query(sql).unwrap();
                assert_tables_equivalent(sql, &incr.table, &full.table)?;
            }
        }

        let stats = wh.stats_snapshot();
        prop_assert!(
            stats.recycler.results_patched >= 1,
            "insert-only streams exercise the patch path: {:?}",
            stats.recycler
        );
        prop_assert_eq!(
            stats.recycler.recompute_fallbacks, 0,
            "no maintainable entry fell back: {:?}", stats.recycler
        );
    }
}
